"""repro.resilience — bound, verify, and degrade; never answer wrongly.

The robustness counterpart to :mod:`repro.obs`: where observability lets
you *see* the system, this subsystem lets you *bound* it (query budgets
with graceful degradation), *verify* it (index integrity checks, v2
checksummed persistence), and *prove* it (a deterministic fault-injection
harness whose tests demonstrate that every injected fault is detected or
survived — never a silent wrong answer).

Public surface
--------------
* :class:`QueryBudget`, :data:`UNKNOWN`, :class:`SearchGuard` — per-query
  step/deadline limits, accepted by ``ReachabilityIndex.query`` /
  ``Reachability.reachable`` and honoured inside every ``_search`` loop.
* :func:`verify_index`, :class:`VerificationReport` — Theorem 1 soundness
  invariants, exhaustive or seeded-sampled; CLI: ``repro verify-index``.
* :mod:`repro.resilience.chaos` — seeded injectors (coordinate
  corruption, file truncation/bit-flips, named hook points, flaky/slow
  workers) plus the process-level faults (SIGKILL/SIGSTOP helpers,
  drop/duplicate response control exceptions) that drive the
  :mod:`repro.shard` kill-based chaos suite.
* :class:`RetryPolicy` — jittered-exponential-backoff retry used by the
  distributed worker dispatch.
"""

from repro.exceptions import (
    ChecksumError,
    IndexIntegrityError,
    InvalidVertexError,
    PersistenceError,
    QueryBudgetExceeded,
    WorkerError,
)
from repro.resilience import chaos
from repro.resilience.budget import (
    POLICIES,
    UNKNOWN,
    QueryBudget,
    SearchGuard,
    Ternary,
)
from repro.resilience.chaos import InjectedFault
from repro.resilience.retry import RetryPolicy
from repro.resilience.verify import VerificationReport, verify_index

__all__ = [
    "QueryBudget",
    "SearchGuard",
    "UNKNOWN",
    "Ternary",
    "POLICIES",
    "verify_index",
    "VerificationReport",
    "RetryPolicy",
    "chaos",
    "InjectedFault",
    "QueryBudgetExceeded",
    "InvalidVertexError",
    "PersistenceError",
    "ChecksumError",
    "IndexIntegrityError",
    "WorkerError",
]
