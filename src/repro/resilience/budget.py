"""Query budgets and graceful degradation.

FELINE's pitch is bounded, predictable query latency — but a pathological
query whose pruned DFS degenerates toward full online search can still
take O(|V| + |E|).  A :class:`QueryBudget` caps that: it limits the number
of DFS expansion steps and/or imposes a wall-clock deadline, and chooses
what happens on exhaustion:

* ``policy="raise"`` — surface :class:`~repro.exceptions.QueryBudgetExceeded`;
* ``policy="unknown"`` — return the three-valued :data:`UNKNOWN` sentinel
  (the query is *unanswered*, never answered wrongly);
* ``policy="fallback"`` — run a node-bounded bidirectional BFS (the
  O'Reach-style cheap online fallback); if that bound is also hit the
  answer degrades to :data:`UNKNOWN`.

The soundness contract, relied on by the property tests: **a budgeted
query never returns a wrong ``True`` or ``False`` — only** :data:`UNKNOWN`
**may replace an answer.**  Exhaustion and degradation are counted both on
:class:`~repro.baselines.base.QueryStats` and, when metrics are enabled,
on the ``repro_budget_exhausted_total`` / ``repro_degraded_total``
observability counters.

The per-search accounting lives in :class:`SearchGuard`, a tiny object the
index's ``query`` installs before delegating to ``_query``; every
``_search`` loop calls ``guard.step()`` once per expanded vertex (a single
``is not None`` check when no budget is active).
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter

from repro.exceptions import QueryBudgetExceeded, ReproError

__all__ = [
    "UNKNOWN",
    "Ternary",
    "QueryBudget",
    "SearchGuard",
    "POLICIES",
]

POLICIES = ("raise", "unknown", "fallback")

#: How many guard steps pass between wall-clock reads — ``perf_counter``
#: costs far more than the step counter, so the deadline is enforced with
#: this granularity.
_CLOCK_STRIDE = 256


class Ternary:
    """The third truth value: *the query was not answered*.

    There is exactly one instance, :data:`UNKNOWN`.  It refuses boolean
    coercion — ``if answer:`` on an unanswered query is precisely the
    silent-wrong-answer bug this subsystem exists to prevent — so callers
    must compare explicitly (``answer is UNKNOWN`` / ``answer is True``).
    """

    __slots__ = ()
    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __bool__(self) -> bool:
        raise TypeError(
            "UNKNOWN is not a boolean: a budgeted query was not answered. "
            "Test `answer is UNKNOWN` (or `answer is True/False`) instead."
        )

    def __repr__(self) -> str:
        return "UNKNOWN"

    def __reduce__(self):
        return (Ternary, ())


UNKNOWN = Ternary()


@dataclass(frozen=True)
class QueryBudget:
    """Resource limits for a single reachability query.

    Parameters
    ----------
    max_steps:
        Maximum vertices the online search may expand (``None`` = no step
        cap).  This bounds the dominant cost of a degenerate query.
    deadline_s:
        Wall-clock allowance in seconds (``None`` = no deadline), checked
        every :data:`_CLOCK_STRIDE` steps.
    policy:
        ``"raise"``, ``"unknown"`` or ``"fallback"`` — what exhaustion
        degrades to (see the module docstring).
    fallback_nodes:
        Node cap for the ``"fallback"`` bidirectional BFS; defaults to
        ``4 * max_steps`` (or 4096 when only a deadline is set).

    Examples
    --------
    >>> QueryBudget(max_steps=1000).policy
    'raise'
    >>> QueryBudget(max_steps=100, policy="fallback").resolved_fallback_nodes
    400
    """

    max_steps: int | None = None
    deadline_s: float | None = None
    policy: str = "raise"
    fallback_nodes: int | None = None

    def __post_init__(self) -> None:
        if self.max_steps is None and self.deadline_s is None:
            raise ReproError(
                "QueryBudget needs max_steps and/or deadline_s; an "
                "unlimited budget is spelled budget=None"
            )
        if self.max_steps is not None and self.max_steps < 1:
            raise ReproError(f"max_steps must be >= 1, got {self.max_steps}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ReproError(f"deadline_s must be > 0, got {self.deadline_s}")
        if self.policy not in POLICIES:
            raise ReproError(
                f"unknown budget policy {self.policy!r}; "
                f"use one of {', '.join(POLICIES)}"
            )

    @property
    def resolved_fallback_nodes(self) -> int:
        """The effective node cap of the fallback bidirectional BFS."""
        if self.fallback_nodes is not None:
            return self.fallback_nodes
        if self.max_steps is not None:
            return 4 * self.max_steps
        return 4096

    def new_guard(self) -> "SearchGuard":
        """A fresh :class:`SearchGuard` enforcing this budget."""
        return SearchGuard(self.max_steps, self.deadline_s)


class SearchGuard:
    """Per-query step/deadline accountant threaded through ``_search``.

    ``step()`` is called once per expanded vertex; it raises
    :class:`~repro.exceptions.QueryBudgetExceeded` the moment the budget
    is exhausted.  The wall clock is only read every
    :data:`_CLOCK_STRIDE` steps to keep the per-step cost to an integer
    increment and compare.
    """

    __slots__ = ("steps", "max_steps", "deadline_at", "start", "_next_clock")

    def __init__(
        self, max_steps: int | None, deadline_s: float | None
    ) -> None:
        self.steps = 0
        self.max_steps = max_steps
        self.start = perf_counter()
        self.deadline_at = (
            self.start + deadline_s if deadline_s is not None else None
        )
        self._next_clock = _CLOCK_STRIDE

    def step(self) -> None:
        """Account one expanded vertex; raise on budget exhaustion."""
        self.steps += 1
        if self.max_steps is not None and self.steps > self.max_steps:
            raise QueryBudgetExceeded(
                f"query exceeded its step budget of {self.max_steps}",
                resource="steps",
                steps=self.steps,
                elapsed_s=perf_counter() - self.start,
            )
        if self.deadline_at is not None and self.steps >= self._next_clock:
            self._next_clock += _CLOCK_STRIDE
            now = perf_counter()
            if now > self.deadline_at:
                raise QueryBudgetExceeded(
                    "query exceeded its wall-clock deadline of "
                    f"{self.deadline_at - self.start:.6f}s",
                    resource="deadline",
                    steps=self.steps,
                    elapsed_s=now - self.start,
                )


def bounded_fallback(graph, u: int, v: int, max_nodes: int):
    """The degradation path: node-bounded bidirectional BFS.

    Returns ``True`` / ``False`` when the search concludes within
    ``max_nodes`` visited vertices, :data:`UNKNOWN` when the bound is hit
    first.  A ``False`` is definitive — both frontiers were exhausted —
    so the soundness contract holds.

    Runs through :func:`repro.perf.kernels.bounded_search`, so the
    degradation path uses the same native tiers as the main searches;
    every backend returns bit-identical ``True``/``False``/``None``.
    """
    from repro.perf.kernels import bounded_search

    answer = bounded_search(graph, u, v, max_nodes)
    return UNKNOWN if answer is None else answer
