"""Deterministic fault injection — prove faults are detected, not silent.

The harness has three parts:

* **Hook points.**  Production code calls :func:`fire` at named points
  (``"index.build.start"``, ``"feline.search"``,
  ``"persistence.load.section"``, ``"distributed.expand"``, ...).  With no
  hooks installed this is one empty-dict truthiness check; tests install
  callables with :func:`install` / the :func:`injected` context manager to
  raise :class:`InjectedFault` (or anything else) mid-build or mid-query.
* **Data corruptors.**  Seeded, pure functions that damage a
  :class:`~repro.core.index.FelineCoordinates` in memory
  (:func:`corrupt_coordinates`) or an index file on disk
  (:func:`flip_bytes`, :func:`truncate_file`) so the integrity layers —
  checksums, :func:`repro.resilience.verify.verify_index` — can be shown
  to catch every mutation.
* **Worker faults.**  :class:`FlakyWorker` and :class:`SlowWorker` wrap a
  :class:`~repro.core.distributed.ShardWorker` to fail or delay the first
  N dispatches, exercising the cluster's retry-with-backoff path.
* **Process faults.**  :func:`kill_process` (SIGKILL), the
  :func:`freeze_process` / :func:`thaw_process` pair (SIGSTOP/SIGCONT)
  and the :class:`DropResponse` / :class:`DuplicateResponse` control
  exceptions give the *real* multi-process shard service
  (:mod:`repro.shard`) its murder weapons: a worker can be killed or
  wedged mid-query, and a shard worker's response hook can drop or
  duplicate a wire message.  The service must still answer every
  admitted query within its deadline, correctly or honestly-UNKNOWN.

Everything is seeded and deterministic: the same seed injects the same
fault, so a failing chaos test reproduces exactly.
"""

from __future__ import annotations

import os
import signal
from array import array
from contextlib import contextmanager
from pathlib import Path
from random import Random

from repro.exceptions import ReproError, WorkerError

__all__ = [
    "InjectedFault",
    "install",
    "uninstall",
    "clear",
    "injected",
    "fire",
    "active_hooks",
    "corrupt_coordinates",
    "flip_bytes",
    "truncate_file",
    "FlakyWorker",
    "SlowWorker",
    "DropResponse",
    "DuplicateResponse",
    "kill_process",
    "freeze_process",
    "thaw_process",
]


class InjectedFault(ReproError):
    """The canonical exception raised by chaos hooks.

    Distinct from every production error type so a test can assert that a
    surfaced failure is *the injected one* and not collateral damage.
    ``point`` names the hook that fired.
    """

    def __init__(self, message: str, point: str = "") -> None:
        super().__init__(message)
        self.point = point


# ---------------------------------------------------------------------------
# Hook points
# ---------------------------------------------------------------------------
_HOOKS: dict[str, object] = {}


def install(point: str, hook) -> None:
    """Install ``hook`` (a callable taking ``**context``) at ``point``."""
    _HOOKS[point] = hook


def uninstall(point: str) -> None:
    """Remove the hook at ``point`` (no-op when absent)."""
    _HOOKS.pop(point, None)


def clear() -> None:
    """Remove every installed hook."""
    _HOOKS.clear()


def active_hooks() -> list[str]:
    """Names of the points that currently have a hook installed."""
    return sorted(_HOOKS)


@contextmanager
def injected(point: str, hook=None):
    """Scoped :func:`install`; restores the previous state on exit.

    With ``hook=None`` a default injector is installed that raises
    :class:`InjectedFault` naming the point.
    """
    if hook is None:
        def hook(**context):
            raise InjectedFault(
                f"chaos: injected fault at {point!r}", point=point
            )
    previous = _HOOKS.get(point)
    _HOOKS[point] = hook
    try:
        yield
    finally:
        if previous is None:
            _HOOKS.pop(point, None)
        else:
            _HOOKS[point] = previous


def fire(point: str, **context) -> None:
    """Trigger ``point``; called by production code at its hook points.

    Fast path: when no hooks are installed anywhere this is a single
    truthiness check on an empty dict.
    """
    if not _HOOKS:
        return
    hook = _HOOKS.get(point)
    if hook is not None:
        hook(**context)


# ---------------------------------------------------------------------------
# Data corruptors
# ---------------------------------------------------------------------------
def corrupt_coordinates(coords, seed: int = 0, mutations: int = 1):
    """A damaged copy of ``coords``: seeded random coordinate mutations.

    Each mutation picks one of the present arrays (x, y, levels, interval
    starts/posts) and either swaps two entries or overwrites one with a
    random in-range value — exactly the silent corruption a bad memory
    module or a buggy writer would produce.  The input is not modified.
    """
    from repro.core.index import FelineCoordinates
    from repro.graph.spanning import IntervalLabels

    rng = Random(seed)
    x = array("l", coords.x)
    y = array("l", coords.y)
    levels = array("l", coords.levels) if coords.levels is not None else None
    if coords.tree_intervals is not None:
        start = array("l", coords.tree_intervals.start)
        post = array("l", coords.tree_intervals.post)
    else:
        start = post = None

    arrays = [a for a in (x, y, levels, start, post) if a is not None]
    n = len(x)
    if n == 0:
        raise ReproError("cannot corrupt an empty coordinate set")
    for _ in range(mutations):
        target = rng.choice(arrays)
        if n > 1 and rng.random() < 0.5:
            i, j = rng.sample(range(n), 2)
            target[i], target[j] = target[j], target[i]
        else:
            target[rng.randrange(n)] = rng.randrange(n)

    intervals = (
        IntervalLabels(start=start, post=post) if start is not None else None
    )
    return FelineCoordinates(
        x=x, y=y, levels=levels, tree_intervals=intervals
    )


def flip_bytes(
    path: str | Path, seed: int = 0, flips: int = 1
) -> list[int]:
    """Flip one random bit in each of ``flips`` seeded byte offsets.

    Returns the damaged offsets so tests can report which bytes were hit.
    """
    path = Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        raise ReproError(f"{path}: cannot bit-flip an empty file")
    rng = Random(seed)
    offsets = []
    for _ in range(flips):
        offset = rng.randrange(len(data))
        data[offset] ^= 1 << rng.randrange(8)
        offsets.append(offset)
    path.write_bytes(bytes(data))
    return offsets


def truncate_file(path: str | Path, size: int) -> None:
    """Truncate ``path`` to ``size`` bytes (simulating a torn write)."""
    path = Path(path)
    if size < 0:
        raise ReproError(f"truncate size must be >= 0, got {size}")
    data = path.read_bytes()
    path.write_bytes(data[:size])


# ---------------------------------------------------------------------------
# Worker faults
# ---------------------------------------------------------------------------
class FlakyWorker:
    """Wraps a shard worker to fail its first ``fail_times`` dispatches.

    Failures raise a *transient* :class:`~repro.exceptions.WorkerError`
    **before** touching the inner worker, matching the dispatch layer's
    retry assumption (no partial side effects on failure).  After the
    budgeted failures it delegates transparently.
    """

    def __init__(self, worker, fail_times: int = 1) -> None:
        self.worker = worker
        self.fail_times = fail_times
        self.failures = 0

    @property
    def shard_id(self) -> int:
        return self.worker.shard_id

    @property
    def owned(self):
        return self.worker.owned

    @property
    def expanded(self) -> int:
        return self.worker.expanded

    def expand(self, *args, **kwargs):
        if self.failures < self.fail_times:
            self.failures += 1
            raise WorkerError(
                f"chaos: shard {self.worker.shard_id} dispatch failed "
                f"({self.failures}/{self.fail_times})",
                shard_id=self.worker.shard_id,
                transient=True,
            )
        return self.worker.expand(*args, **kwargs)


class SlowWorker:
    """Wraps a shard worker to record a simulated delay per dispatch.

    No real sleeping happens; ``simulated_delay_s`` accumulates so tests
    and benchmarks can reason about straggler cost deterministically.
    """

    def __init__(self, worker, delay_s: float = 0.05) -> None:
        self.worker = worker
        self.delay_s = delay_s
        self.simulated_delay_s = 0.0

    @property
    def shard_id(self) -> int:
        return self.worker.shard_id

    @property
    def owned(self):
        return self.worker.owned

    @property
    def expanded(self) -> int:
        return self.worker.expanded

    def expand(self, *args, **kwargs):
        self.simulated_delay_s += self.delay_s
        return self.worker.expand(*args, **kwargs)


# ---------------------------------------------------------------------------
# Process faults
# ---------------------------------------------------------------------------
class DropResponse(ReproError):
    """Control exception for shard-worker response hooks: eat the reply.

    Raised by a hook installed at ``shard.worker.respond``; the worker
    swallows it and simply never sends the response, simulating a lost
    wire message.  The coordinator must recover by timeout + retry.
    """


class DuplicateResponse(ReproError):
    """Control exception for shard-worker response hooks: send it twice.

    Simulates a duplicated wire message; the coordinator's sequence
    matching must discard the second copy instead of mistaking it for
    the answer to a later request.
    """


def kill_process(pid: int) -> bool:
    """SIGKILL ``pid`` (no cleanup, no goodbye — the hard murder).

    Returns ``False`` when the process is already gone, ``True`` when
    the signal was delivered.  Refuses to kill the calling process.
    """
    if pid == os.getpid():
        raise ReproError("chaos: refusing to SIGKILL the current process")
    try:
        os.kill(pid, signal.SIGKILL)
    except ProcessLookupError:
        return False
    return True


def freeze_process(pid: int) -> bool:
    """SIGSTOP ``pid`` — the process wedges without dying.

    A frozen worker keeps its pipes open, so the only symptom is
    silence: RPCs time out rather than erroring.  Pair with
    :func:`thaw_process` (or a supervisor's kill-and-restart fencing).
    """
    if pid == os.getpid():
        raise ReproError("chaos: refusing to SIGSTOP the current process")
    try:
        os.kill(pid, signal.SIGSTOP)
    except ProcessLookupError:
        return False
    return True


def thaw_process(pid: int) -> bool:
    """SIGCONT a process frozen by :func:`freeze_process`."""
    try:
        os.kill(pid, signal.SIGCONT)
    except ProcessLookupError:
        return False
    return True
