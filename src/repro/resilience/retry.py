"""Retry with jittered exponential backoff for worker dispatch.

A real FELINE cluster loses workers; the simulated one
(:class:`repro.core.distributed.SimulatedCluster`) models that with
transient :class:`~repro.exceptions.WorkerError`.  :class:`RetryPolicy`
centralises how those are retried: exponential backoff with *full
jitter* (delay drawn uniformly from ``[0, base * multiplier**attempt]``,
the AWS-recommended variant that decorrelates thundering herds), capped
at ``max_delay``.

The policy is deterministic (seeded) and, by default, does not actually
sleep — ``sleep=None`` records the would-be delays in
:attr:`RetryPolicy.total_delay_s` so the simulation stays instant while
tests can still assert on backoff arithmetic.  Pass ``sleep=time.sleep``
for real pacing.
"""

from __future__ import annotations

from random import Random

from repro.exceptions import ReproError, WorkerError

__all__ = ["RetryPolicy"]


class RetryPolicy:
    """Jittered-exponential-backoff retry for transient failures.

    Parameters
    ----------
    max_attempts:
        Total tries including the first (``1`` = no retries).
    base_delay_s, multiplier, max_delay_s:
        Backoff curve: attempt ``k`` (0-based retry count) draws its
        delay uniformly from ``[0, min(max_delay_s, base_delay_s *
        multiplier**k)]``.
    seed:
        Seeds the jitter; same seed, same delays.
    sleep:
        Callable taking seconds; ``None`` records without sleeping.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay_s: float = 0.01,
        multiplier: float = 2.0,
        max_delay_s: float = 1.0,
        seed: int = 0,
        sleep=None,
    ) -> None:
        if max_attempts < 1:
            raise ReproError(f"max_attempts must be >= 1, got {max_attempts}")
        self.max_attempts = max_attempts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self._rng = Random(seed)
        self._sleep = sleep
        self.total_delay_s = 0.0
        self.retries = 0

    def backoff(self, retry_number: int) -> float:
        """Pause (or record) the jittered delay before retry ``retry_number``.

        ``retry_number`` is 0 for the first retry.  Returns the delay.
        """
        ceiling = min(
            self.max_delay_s, self.base_delay_s * self.multiplier ** retry_number
        )
        delay = self._rng.uniform(0.0, ceiling)
        self.total_delay_s += delay
        self.retries += 1
        if self._sleep is not None:
            self._sleep(delay)
        return delay

    def call(self, fn, *args, **kwargs):
        """Run ``fn`` with retries on transient :class:`WorkerError`.

        Non-transient worker errors and other exception types propagate
        immediately; a transient error on the final attempt propagates
        too, so failures are *survived when possible, surfaced when not*
        — never swallowed.
        """
        for attempt in range(self.max_attempts):
            try:
                return fn(*args, **kwargs)
            except WorkerError as exc:
                if not exc.transient or attempt + 1 >= self.max_attempts:
                    raise
                self.backoff(attempt)

    def __repr__(self) -> str:
        return (
            f"<RetryPolicy attempts={self.max_attempts} "
            f"base={self.base_delay_s}s x{self.multiplier} "
            f"retries={self.retries}>"
        )
