"""Index integrity verification — check the Theorem 1 soundness invariants.

A FELINE index is *sound* iff its two orderings are topological (every
edge strictly increases both coordinates), its levels are monotone along
edges, and its positive-cut tree intervals form a properly nested (laminar)
family whose containments only claim true reachability.  DAGGER's lesson
is that an index is mutable state whose invariants must be checkable;
:func:`verify_index` makes that one call:

* **exhaustively** on small graphs — every edge, every structural
  property, and (below ``deep_limit`` vertices) the full positive-cut
  soundness sweep against a DFS oracle;
* **by seeded edge-sampling** on large ones — the permutation and
  laminarity checks stay O(n log n), and a deterministic sample of edges
  is checked for coordinate/level monotonicity.

A corrupted coordinate is overwhelmingly likely to break one of these
checks: a permutation violation is caught unconditionally, and any
swapped/overwritten rank that matters to correctness inverts some edge.
The ``repro verify-index`` CLI subcommand wires this to saved index files
(whose v2 checksums catch on-disk damage before this layer even runs).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from random import Random

from repro.exceptions import IndexIntegrityError

__all__ = ["VerificationReport", "verify_index"]

#: Below this edge count every edge is checked; above it, a seeded sample.
EXHAUSTIVE_EDGE_LIMIT = 200_000

#: Below this vertex count the positive-cut filter is checked against a
#: full DFS reachability oracle.
DEEP_LIMIT = 500


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_index`.

    ``violations`` is empty iff the index passed; ``mode`` records whether
    edges were checked exhaustively or sampled; ``edges_checked`` how many.
    """

    violations: list[str] = field(default_factory=list)
    checks: list[str] = field(default_factory=list)
    mode: str = "exhaustive"
    edges_checked: int = 0
    deep: bool = False

    @property
    def ok(self) -> bool:
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`~repro.exceptions.IndexIntegrityError` on failure."""
        if not self.ok:
            raise IndexIntegrityError(
                f"index failed integrity verification "
                f"({len(self.violations)} violation(s)); first: "
                f"{self.violations[0]}",
                violations=list(self.violations),
            )

    def summary(self) -> str:
        """Human-readable multi-line report (the CLI prints this)."""
        lines = [
            f"verify-index: {'OK' if self.ok else 'FAILED'} "
            f"({self.mode}, {self.edges_checked} edges checked"
            f"{', deep positive-cut sweep' if self.deep else ''})"
        ]
        for check in self.checks:
            lines.append(f"  [pass] {check}")
        for violation in self.violations:
            lines.append(f"  [FAIL] {violation}")
        return "\n".join(lines)


def _is_permutation(values, n: int) -> bool:
    if len(values) != n:
        return False
    seen = bytearray(n)
    for value in values:
        if value < 0 or value >= n or seen[value]:
            return False
        seen[value] = 1
    return True


def _check_laminar(start, post, report: VerificationReport) -> None:
    """Tree intervals must form a laminar family: nest or be disjoint."""
    n = len(start)
    order = sorted(range(n), key=lambda v: (start[v], -post[v]))
    stack: list[int] = []
    for v in order:
        if start[v] > post[v]:
            report.violations.append(
                f"tree interval of vertex {v} is inverted "
                f"([{start[v]}, {post[v]}])"
            )
            return
        while stack and post[stack[-1]] < start[v]:
            stack.pop()
        if stack and post[v] > post[stack[-1]]:
            report.violations.append(
                f"tree intervals of vertices {stack[-1]} and {v} cross "
                f"([{start[stack[-1]]}, {post[stack[-1]]}] vs "
                f"[{start[v]}, {post[v]}]) — not a laminar family"
            )
            return
        stack.append(v)
    report.checks.append("tree intervals form a laminar (nested) family")


def _sample_edges(graph, k: int, seed: int):
    """``k`` distinct seeded edges as ``(u, v)`` pairs, O(k log n)."""
    rng = Random(seed)
    indptr = list(graph.out_indptr)
    indices = graph.out_indices
    m = graph.num_edges
    picks = rng.sample(range(m), min(k, m))
    for position in picks:
        u = bisect_right(indptr, position) - 1
        yield u, indices[position]


def verify_index(
    graph,
    index,
    *,
    mode: str = "auto",
    sample: int = 10_000,
    seed: int = 0,
    deep: bool | None = None,
) -> VerificationReport:
    """Verify that a FELINE index is sound for ``graph``.

    Parameters
    ----------
    graph:
        The DAG the index claims to describe.
    index:
        A :class:`~repro.core.index.FelineCoordinates`, or anything with a
        ``coordinates`` attribute holding one (e.g. a built
        :class:`~repro.core.query.FelineIndex`).
    mode:
        ``"auto"`` (exhaustive below :data:`EXHAUSTIVE_EDGE_LIMIT` edges,
        sampled above), ``"exhaustive"``, or ``"sample"``.
    sample, seed:
        Sample size and RNG seed for the sampled mode.
    deep:
        Force (or suppress) the positive-cut-vs-DFS-oracle sweep; the
        default runs it below :data:`DEEP_LIMIT` vertices.

    Returns a :class:`VerificationReport`; call ``raise_if_failed()`` to
    turn violations into :class:`~repro.exceptions.IndexIntegrityError`.
    """
    coords = getattr(index, "coordinates", index)
    if coords is None:
        report = VerificationReport()
        report.violations.append("index has no coordinates (not built?)")
        return report
    report = VerificationReport()
    n = graph.num_vertices

    if coords.num_vertices != n:
        report.violations.append(
            f"index covers {coords.num_vertices} vertices but the graph "
            f"has {n}"
        )
        return report

    # -- permutation checks -------------------------------------------------
    for name, values in (("x", coords.x), ("y", coords.y)):
        if _is_permutation(values, n):
            report.checks.append(f"{name} ranks are a permutation of 0..n-1")
        else:
            report.violations.append(
                f"{name} ranks are not a permutation of 0..{n - 1}"
            )

    levels = coords.levels
    if levels is not None:
        bad = next(
            (v for v in range(n) if levels[v] < 0 or levels[v] >= max(1, n)),
            None,
        )
        if bad is None:
            report.checks.append("levels are within [0, n)")
        else:
            report.violations.append(
                f"level of vertex {bad} is {levels[bad]}, outside [0, {n})"
            )

    # -- edge monotonicity (topological orders + level filter) -------------
    exhaustive = mode == "exhaustive" or (
        mode == "auto" and graph.num_edges <= EXHAUSTIVE_EDGE_LIMIT
    )
    if mode not in ("auto", "exhaustive", "sample"):
        raise ValueError(f"unknown verify mode {mode!r}")
    edges = (
        graph.edges() if exhaustive else _sample_edges(graph, sample, seed)
    )
    report.mode = "exhaustive" if exhaustive else f"sampled(seed={seed})"
    x, y = coords.x, coords.y
    edge_ok = True
    for u, v in edges:
        report.edges_checked += 1
        if x[u] >= x[v]:
            report.violations.append(
                f"edge ({u}, {v}) violates the X topological order "
                f"(x[{u}]={x[u]} >= x[{v}]={x[v]})"
            )
            edge_ok = False
            break
        if y[u] >= y[v]:
            report.violations.append(
                f"edge ({u}, {v}) violates the Y topological order "
                f"(y[{u}]={y[u]} >= y[{v}]={y[v]})"
            )
            edge_ok = False
            break
        if levels is not None and levels[u] >= levels[v]:
            report.violations.append(
                f"edge ({u}, {v}) violates level monotonicity "
                f"(l[{u}]={levels[u]} >= l[{v}]={levels[v]})"
            )
            edge_ok = False
            break
    if edge_ok:
        report.checks.append(
            "edges increase X, Y"
            + (" and levels" if levels is not None else "")
        )

    # -- positive-cut structure --------------------------------------------
    intervals = coords.tree_intervals
    if intervals is not None:
        if _is_permutation(intervals.post, n):
            report.checks.append("interval posts are a permutation of 0..n-1")
            _check_laminar(intervals.start, intervals.post, report)
        else:
            report.violations.append(
                f"interval posts are not a permutation of 0..{n - 1}"
            )

        # -- deep sweep: containment must imply true reachability ----------
        run_deep = deep if deep is not None else n <= DEEP_LIMIT
        if run_deep and report.ok:
            from repro.graph.traversal import descendants

            report.deep = True
            for u in range(n):
                reachable = descendants(graph, u)
                for v in range(n):
                    if intervals.contains(u, v) and v not in reachable:
                        report.violations.append(
                            f"positive-cut filter claims r({u}, {v}) but "
                            f"{v} is not reachable from {u}"
                        )
                        return report
            report.checks.append(
                "positive-cut containments all imply true reachability"
            )

    return report
