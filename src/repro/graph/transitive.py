"""Full transitive closure — the left end of the paper's Figure 1 spectrum.

Pre-computing the closure gives O(1) queries at O(|V|²/8) bytes — exactly
the trade-off the paper says is infeasible for very large graphs.  We keep
it for three jobs:

* ground truth in the test suites of every index;
* the ``TransitiveClosureIndex`` baseline (``repro.baselines``);
* the substrate of Nuutila's INTERVAL (which compresses per-vertex
  successor sets into interval lists).

The closure is stored as one Python ``int`` bitset per vertex — arbitrary
precision integers give us fast bulk OR, which makes the reverse
topological sweep ``closure[u] = bit(u) | OR(closure[w] for u -> w)`` run
at C speed per word.
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.graph.digraph import DiGraph
from repro.graph.toposort import kahn_order

__all__ = ["transitive_closure_bitsets", "closure_pairs", "count_reachable_pairs"]


def transitive_closure_bitsets(graph: DiGraph) -> list[int]:
    """Per-vertex reachability bitsets; bit ``v`` of ``closure[u]`` ⇔ r(u, v).

    Processes vertices in reverse topological order so every successor's
    set is complete before it is merged, O(|V| · |V|/w + |E| · |V|/w) time
    with machine-word ``w``.  Raises on cyclic input (via the toposort).
    """
    order = kahn_order(graph)
    closure = [0] * graph.num_vertices
    indptr, indices = graph.out_indptr, graph.out_indices
    for u in reversed(order):
        bits = 1 << u
        for k in range(indptr[u], indptr[u + 1]):
            bits |= closure[indices[k]]
        closure[u] = bits
    return closure


def closure_pairs(graph: DiGraph) -> Iterator[tuple[int, int]]:
    """Yield every reachable pair ``(u, v)`` with ``u ≠ v``."""
    closure = transitive_closure_bitsets(graph)
    for u, bits in enumerate(closure):
        bits &= ~(1 << u)
        while bits:
            low = bits & -bits
            yield u, low.bit_length() - 1
            bits ^= low


def count_reachable_pairs(graph: DiGraph) -> int:
    """Number of ordered reachable pairs ``u ≠ v`` — the closure's size."""
    closure = transitive_closure_bitsets(graph)
    return sum(bits.bit_count() - 1 for bits in closure)
