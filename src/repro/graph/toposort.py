"""Topological orderings of DAGs.

FELINE's index is a *pair* of topological orderings, so this module is the
heart of the substrate:

* :func:`kahn_order` — classic Kahn peeling (FIFO), O(|V| + |E|).
* :func:`dfs_post_order_ranks` — ranks from an iterative DFS post-order
  (reversed post-order is a topological order); this is the ``X`` ordering
  used by FELINE's Algorithm 1 in the paper's running example.
* :func:`priority_kahn_order` — Kahn peeling where the next root is chosen
  by a caller-supplied priority via a heap; Algorithm 1's ``Y`` ordering is
  ``priority_kahn_order(g, key=lambda v: -X[v])`` (largest ``X`` rank
  first), the Kornaropoulos locally-optimal heuristic.

All functions raise :class:`~repro.exceptions.NotADAGError` when the graph
has a cycle, identifying one offending vertex.

Terminology: an *order* is a list ``order[rank] = vertex``; *ranks* is the
inverse array ``ranks[vertex] = rank``.  :func:`ranks_from_order` converts.
"""

from __future__ import annotations

import heapq
from array import array
from collections.abc import Callable, Sequence

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph

__all__ = [
    "kahn_order",
    "priority_kahn_order",
    "dfs_post_order_ranks",
    "dfs_topological_order",
    "ranks_from_order",
    "is_topological_order",
]


def ranks_from_order(order: Sequence[int]) -> array:
    """Invert an order list into a rank array (``ranks[v] = position``)."""
    ranks = array("l", [0] * len(order))
    for rank, v in enumerate(order):
        ranks[v] = rank
    return ranks


def is_topological_order(graph: DiGraph, order: Sequence[int]) -> bool:
    """Whether ``order`` is a valid topological order of ``graph``.

    Used pervasively by the test suite as the specification every ordering
    function must satisfy.
    """
    if sorted(order) != list(range(graph.num_vertices)):
        return False
    ranks = ranks_from_order(order)
    return all(ranks[u] < ranks[v] for u, v in graph.edges())


def _initial_indegrees(graph: DiGraph) -> array:
    n = graph.num_vertices
    indptr = graph.in_indptr
    return array("l", [indptr[v + 1] - indptr[v] for v in range(n)])


def kahn_order(graph: DiGraph) -> list[int]:
    """Kahn's algorithm with a LIFO worklist, O(|V| + |E|).

    Any peeling discipline yields a valid topological order; LIFO keeps
    memory locality and matches the paper's generic
    ``TopologicalOrdering(V, E)`` step.
    """
    n = graph.num_vertices
    indegree = _initial_indegrees(graph)
    worklist = [v for v in range(n) if indegree[v] == 0]
    indptr, indices = graph.out_indptr, graph.out_indices
    order: list[int] = []
    while worklist:
        u = worklist.pop()
        order.append(u)
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            indegree[w] -= 1
            if indegree[w] == 0:
                worklist.append(w)
    if len(order) != n:
        stuck = next(v for v in range(n) if indegree[v] > 0)
        raise NotADAGError(
            f"graph has a cycle (vertex {stuck} never became a root)",
            cycle_hint=stuck,
        )
    return order


def priority_kahn_order(
    graph: DiGraph, key: Callable[[int], int]
) -> list[int]:
    """Kahn peeling that always pops the current root minimising ``key``.

    This is the particular case of Kahn's algorithm FELINE's Algorithm 1
    uses for the ``Y`` coordinates: with ``key = lambda v: -x_rank[v]`` the
    root with the *highest* ``X`` rank is selected at every step, which
    Kornaropoulos proved locally optimal for minimising falsely implied
    paths.  Complexity O(|V| log |V| + |E|) — the heap term the paper cites.
    """
    n = graph.num_vertices
    indegree = _initial_indegrees(graph)
    heap = [(key(v), v) for v in range(n) if indegree[v] == 0]
    heapq.heapify(heap)
    indptr, indices = graph.out_indptr, graph.out_indices
    order: list[int] = []
    while heap:
        _, u = heapq.heappop(heap)
        order.append(u)
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            indegree[w] -= 1
            if indegree[w] == 0:
                heapq.heappush(heap, (key(w), w))
    if len(order) != n:
        stuck = next(v for v in range(n) if indegree[v] > 0)
        raise NotADAGError(
            f"graph has a cycle (vertex {stuck} never became a root)",
            cycle_hint=stuck,
        )
    return order


def dfs_post_order_ranks(
    graph: DiGraph, root_order: Sequence[int] | None = None
) -> array:
    """Post-order DFS finish ranks, iterative, O(|V| + |E|).

    ``ranks[v]`` is the position of ``v`` in DFS post-order.  The *reverse*
    of a post-order is a topological order, so
    ``n - 1 - ranks[v]`` gives topological ranks — see
    :func:`dfs_topological_order`.

    ``root_order`` optionally fixes the order in which DFS roots are tried
    (GRAIL's randomized labellings shuffle it; FELINE uses the default).
    """
    n = graph.num_vertices
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(n)
    ranks = array("l", [0] * n)
    counter = 0
    starts = root_order if root_order is not None else range(n)
    for root in starts:
        if visited[root]:
            continue
        visited[root] = 1
        stack: list[tuple[int, int]] = [(root, indptr[root])]
        while stack:
            v, edge_pos = stack[-1]
            if edge_pos < indptr[v + 1]:
                stack[-1] = (v, edge_pos + 1)
                w = indices[edge_pos]
                if not visited[w]:
                    visited[w] = 1
                    stack.append((w, indptr[w]))
            else:
                stack.pop()
                ranks[v] = counter
                counter += 1
    return ranks


def dfs_topological_order(
    graph: DiGraph, root_order: Sequence[int] | None = None
) -> list[int]:
    """A topological order from reversed DFS post-order.

    Raises :class:`NotADAGError` on cyclic input (detected by checking one
    witness edge per vertex against the candidate ranks would be costly, so
    we verify via the cheaper full-edge sweep — still O(|V| + |E|)).
    """
    n = graph.num_vertices
    post = dfs_post_order_ranks(graph, root_order=root_order)
    order: list[int] = [0] * n
    for v in range(n):
        order[n - 1 - post[v]] = v
    # A DFS post-order reversal is topological iff the graph is acyclic;
    # verify with one sweep so cyclic inputs fail loudly, like kahn_order.
    for u, v in graph.edges():
        if post[u] <= post[v]:
            raise NotADAGError(
                f"graph has a cycle (edge ({u}, {v}) violates post-order)",
                cycle_hint=u,
            )
    return order
