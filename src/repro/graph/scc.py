"""Strongly connected components and DAG condensation.

The paper (like every reachability index it compares against) assumes the
input has first been turned acyclic: every strongly connected component of
``G`` is folded into one vertex of the condensation ``G'``, and reachability
between ``u`` and ``v`` in ``G`` equals reachability between ``scc(u)`` and
``scc(v)`` in ``G'``.

:func:`strongly_connected_components` is Tarjan's algorithm, implemented
iteratively (an explicit stack of frames) so that deep graphs — e.g. long
paths in the Uniprot stand-ins — do not hit Python's recursion limit.
:func:`condense` builds the condensation DAG plus the ``scc`` mapping.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.graph.digraph import DiGraph

__all__ = ["strongly_connected_components", "condense", "Condensation", "is_dag"]


def strongly_connected_components(graph: DiGraph) -> list[list[int]]:
    """Tarjan's SCC algorithm, iterative, O(|V| + |E|).

    Returns the components as lists of vertex ids.  Components are emitted
    in *reverse topological order* of the condensation (a property of
    Tarjan's algorithm this library relies on in :func:`condense`).
    """
    n = graph.num_vertices
    indptr = graph.out_indptr
    indices = graph.out_indices

    UNVISITED = -1
    index_of = array("l", [UNVISITED] * n)
    lowlink = array("l", [0] * n)
    on_stack = bytearray(n)
    stack: list[int] = []
    components: list[list[int]] = []
    counter = 0

    # Explicit DFS: each frame is (vertex, next edge offset to scan).
    call_stack: list[tuple[int, int]] = []
    for root in range(n):
        if index_of[root] != UNVISITED:
            continue
        call_stack.append((root, indptr[root]))
        index_of[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack[root] = 1
        while call_stack:
            v, edge_pos = call_stack[-1]
            if edge_pos < indptr[v + 1]:
                call_stack[-1] = (v, edge_pos + 1)
                w = indices[edge_pos]
                if index_of[w] == UNVISITED:
                    index_of[w] = lowlink[w] = counter
                    counter += 1
                    stack.append(w)
                    on_stack[w] = 1
                    call_stack.append((w, indptr[w]))
                elif on_stack[w]:
                    if index_of[w] < lowlink[v]:
                        lowlink[v] = index_of[w]
            else:
                call_stack.pop()
                if call_stack:
                    parent = call_stack[-1][0]
                    if lowlink[v] < lowlink[parent]:
                        lowlink[parent] = lowlink[v]
                if lowlink[v] == index_of[v]:
                    component: list[int] = []
                    while True:
                        w = stack.pop()
                        on_stack[w] = 0
                        component.append(w)
                        if w == v:
                            break
                    components.append(component)
    return components


@dataclass(frozen=True)
class Condensation:
    """Result of folding every SCC of a graph into one vertex.

    Attributes
    ----------
    dag:
        The condensation graph (always a DAG, self loops removed,
        duplicate edges merged).
    scc_of:
        ``scc_of[v]`` is the condensation vertex holding original vertex
        ``v`` — the function ``scc : V -> V'`` from the paper.
    members:
        ``members[c]`` lists the original vertices folded into
        condensation vertex ``c``.
    """

    dag: DiGraph
    scc_of: array
    members: list[list[int]]

    @property
    def num_components(self) -> int:
        """Number of strongly connected components."""
        return len(self.members)

    def is_trivial(self) -> bool:
        """True when the input was already a DAG with no self loops."""
        return self.dag.num_vertices == len(self.scc_of)


def condense(graph: DiGraph) -> Condensation:
    """Fold every SCC of ``graph`` into a single vertex.

    The returned DAG numbers components in *topological order* (component 0
    has no predecessors among components), which several downstream
    algorithms exploit for cache-friendly sweeps.
    """
    components = strongly_connected_components(graph)
    # Tarjan emits components in reverse topological order; flip them.
    components.reverse()
    num_components = len(components)
    scc_of = array("l", [0] * graph.num_vertices)
    for cid, component in enumerate(components):
        for v in component:
            scc_of[v] = cid

    seen: set[tuple[int, int]] = set()
    edges: list[tuple[int, int]] = []
    for u, v in graph.edges():
        cu, cv = scc_of[u], scc_of[v]
        if cu == cv:
            continue
        key = (cu, cv)
        if key in seen:
            continue
        seen.add(key)
        edges.append(key)

    name = f"{graph.name}-condensed" if graph.name else "condensed"
    dag = DiGraph(num_components, edges, name=name)
    return Condensation(dag=dag, scc_of=scc_of, members=components)


def is_dag(graph: DiGraph) -> bool:
    """Whether ``graph`` is acyclic (no directed cycle, no self loop).

    Runs Kahn's peeling in O(|V| + |E|): a graph is a DAG iff repeatedly
    removing in-degree-0 vertices consumes every vertex.
    """
    n = graph.num_vertices
    indegree = array("l", [0] * n)
    for v in range(n):
        indegree[v] = graph.in_indptr[v + 1] - graph.in_indptr[v]
    queue = [v for v in range(n) if indegree[v] == 0]
    removed = 0
    indptr, indices = graph.out_indptr, graph.out_indices
    while queue:
        u = queue.pop()
        removed += 1
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            indegree[w] -= 1
            if indegree[w] == 0:
                queue.append(w)
    return removed == n
