"""Spanning forests and min-post interval labelling (positive-cut filter).

Several reachability indexes (GRAIL, FERRARI, FELINE) extract a spanning
forest of the DAG and label it with *min-post* intervals: each vertex ``u``
gets ``I_u = [s_u, e_u]`` where ``e_u = post(u)`` is its post-order rank in
the forest and ``s_u`` is the minimum ``s`` among its tree children (its own
post-order rank at a leaf).  On tree edges the containment ``I_v ⊆ I_u``
*proves* reachability ``r(u, v)`` — the *positive-cut filter* of the paper's
§3.4.1 — while nothing can be concluded for non-tree paths.

GRAIL generalises the same labelling to the whole DAG (children = all DAG
successors, visited in random order), where containment becomes a *negative*
cut instead; :func:`minpost_intervals_dag` provides that variant.
"""

from __future__ import annotations

from array import array
from collections.abc import Sequence
from dataclasses import dataclass
from random import Random

from repro.graph.digraph import DiGraph

__all__ = [
    "SpanningForest",
    "extract_spanning_forest",
    "minpost_intervals_tree",
    "minpost_intervals_dag",
    "IntervalLabels",
]


@dataclass(frozen=True)
class SpanningForest:
    """A spanning forest of a DAG.

    ``parent[v]`` is the tree parent of ``v`` (-1 at a forest root);
    ``children[v]`` lists tree children.  The forest covers every vertex.
    """

    parent: array
    children: list[list[int]]

    @property
    def num_vertices(self) -> int:
        return len(self.parent)

    def tree_roots(self) -> list[int]:
        """The forest's root vertices."""
        return [v for v in range(len(self.parent)) if self.parent[v] == -1]


@dataclass(frozen=True)
class IntervalLabels:
    """Min-post interval labels ``I_v = [start[v], post[v]]``.

    ``contains(u, v)`` tests ``I_v ⊆ I_u``:

    * on labels from :func:`minpost_intervals_tree` this is a *positive*
      cut (containment proves reachability along tree edges);
    * on labels from :func:`minpost_intervals_dag` this is a *negative*
      cut (non-containment disproves reachability) — GRAIL's usage.
    """

    start: array
    post: array

    def contains(self, u: int, v: int) -> bool:
        """Whether ``I_v ⊆ I_u``."""
        return self.start[u] <= self.start[v] and self.post[v] <= self.post[u]

    def memory_bytes(self) -> int:
        """Approximate footprint of the two label arrays."""
        return self.start.itemsize * len(self.start) + self.post.itemsize * len(
            self.post
        )


def extract_spanning_forest(
    graph: DiGraph, root_order: Sequence[int] | None = None
) -> SpanningForest:
    """DFS spanning forest: first DFS discovery edge to each vertex wins.

    The paper notes the forest "may be performed by the topological
    ordering in line 2" of Algorithm 1 — i.e. it falls out of the same DFS
    that produces the ``X`` coordinates, and that is exactly what FELINE's
    builder does by passing the DFS root order used for ``X``.
    """
    n = graph.num_vertices
    indptr, indices = graph.out_indptr, graph.out_indices
    parent = array("l", [-1] * n)
    visited = bytearray(n)
    children: list[list[int]] = [[] for _ in range(n)]
    starts = root_order if root_order is not None else range(n)
    for root in starts:
        if visited[root]:
            continue
        visited[root] = 1
        stack = [root]
        while stack:
            u = stack.pop()
            for k in range(indptr[u + 1] - 1, indptr[u] - 1, -1):
                w = indices[k]
                if not visited[w]:
                    visited[w] = 1
                    parent[w] = u
                    children[u].append(w)
                    stack.append(w)
    # Children were appended in reversed push order; restore edge order.
    for child_list in children:
        child_list.reverse()
    return SpanningForest(parent=parent, children=children)


def minpost_intervals_tree(forest: SpanningForest) -> IntervalLabels:
    """Min-post labels over a spanning forest (positive-cut filter).

    Iterative post-order over the forest; O(|V|).
    """
    n = forest.num_vertices
    post = array("l", [0] * n)
    start = array("l", [0] * n)
    counter = 0
    for root in forest.tree_roots():
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            v, child_pos = stack[-1]
            kids = forest.children[v]
            if child_pos < len(kids):
                stack[-1] = (v, child_pos + 1)
                stack.append((kids[child_pos], 0))
            else:
                stack.pop()
                post[v] = counter
                if kids:
                    start[v] = min(start[c] for c in kids)
                else:
                    start[v] = counter
                counter += 1
    return IntervalLabels(start=start, post=post)


def minpost_intervals_dag(
    graph: DiGraph, rng: Random | None = None
) -> IntervalLabels:
    """GRAIL-style min-post labels computed over the *whole DAG*.

    One randomized DFS traversal: successors are visited in random order
    (when ``rng`` is given), ``post[v]`` is the DFS finish rank and
    ``start[v] = min(start of any successor, own post rank)`` — so ``I_v``
    covers the interval of everything reachable from ``v`` in this
    traversal, making non-containment a sound negative cut.
    """
    n = graph.num_vertices
    indptr, indices = graph.out_indptr, graph.out_indices
    post = array("l", [0] * n)
    start = array("l", [0] * n)
    visited = bytearray(n)
    counter = 0

    roots = [v for v in range(n) if graph.in_indptr[v] == graph.in_indptr[v + 1]]
    if not roots:  # fully covered by cycles should not happen on DAGs,
        roots = list(range(n))  # but stay safe for arbitrary inputs
    if rng is not None:
        rng.shuffle(roots)

    for root in roots + list(range(n)):
        if visited[root]:
            continue
        visited[root] = 1
        succ_of_root = list(indices[indptr[root] : indptr[root + 1]])
        if rng is not None:
            rng.shuffle(succ_of_root)
        stack: list[tuple[int, list[int], int]] = [(root, succ_of_root, 0)]
        while stack:
            v, succ, pos = stack[-1]
            if pos < len(succ):
                stack[-1] = (v, succ, pos + 1)
                w = succ[pos]
                if not visited[w]:
                    visited[w] = 1
                    succ_w = list(indices[indptr[w] : indptr[w + 1]])
                    if rng is not None:
                        rng.shuffle(succ_w)
                    stack.append((w, succ_w, 0))
            else:
                stack.pop()
                low = counter
                for w in succ:
                    if start[w] < low:
                        low = start[w]
                start[v] = low
                post[v] = counter
                counter += 1
    return IntervalLabels(start=start, post=post)
