"""Graph traversals and the naive online-search reachability checks.

These functions are the right-hand end of the paper's Figure 1 spectrum:
no index at all, O(|V| + |E|) per query.  They double as the ground-truth
oracle for every index's test suite.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator

from repro.graph.digraph import DiGraph

__all__ = [
    "dfs_preorder",
    "bfs_order",
    "dfs_reachable",
    "bfs_reachable",
    "bidirectional_reachable",
    "descendants",
    "ancestors",
]


def dfs_preorder(graph: DiGraph, source: int) -> Iterator[int]:
    """Yield vertices in DFS preorder from ``source`` (iterative)."""
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    stack = [source]
    while stack:
        u = stack.pop()
        yield u
        # Push in reverse so the first successor is explored first.
        for k in range(indptr[u + 1] - 1, indptr[u] - 1, -1):
            w = indices[k]
            if not visited[w]:
                visited[w] = 1
                stack.append(w)


def bfs_order(graph: DiGraph, source: int) -> Iterator[int]:
    """Yield vertices in BFS order from ``source``."""
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        yield u
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if not visited[w]:
                visited[w] = 1
                queue.append(w)


def dfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Plain DFS reachability — the un-indexed online search."""
    if source == target:
        return True
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    stack = [source]
    while stack:
        u = stack.pop()
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if w == target:
                return True
            if not visited[w]:
                visited[w] = 1
                stack.append(w)
    return False


def bfs_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Plain BFS reachability."""
    if source == target:
        return True
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if w == target:
                return True
            if not visited[w]:
                visited[w] = 1
                queue.append(w)
    return False


def bidirectional_reachable(graph: DiGraph, source: int, target: int) -> bool:
    """Bidirectional BFS: forward from ``source``, backward from ``target``.

    Alternates expanding whichever frontier is smaller; meets in the middle
    on most positive queries, which makes it the strongest *un-indexed*
    baseline.
    """
    if source == target:
        return True
    n = graph.num_vertices
    fwd_seen = bytearray(n)
    bwd_seen = bytearray(n)
    fwd_seen[source] = 1
    bwd_seen[target] = 1
    fwd_frontier = [source]
    bwd_frontier = [target]
    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    while fwd_frontier and bwd_frontier:
        if len(fwd_frontier) <= len(bwd_frontier):
            frontier, seen, other = fwd_frontier, fwd_seen, bwd_seen
            indptr, indices = out_indptr, out_indices
            fwd_frontier = next_frontier = []
        else:
            frontier, seen, other = bwd_frontier, bwd_seen, fwd_seen
            indptr, indices = in_indptr, in_indices
            bwd_frontier = next_frontier = []
        for u in frontier:
            for k in range(indptr[u], indptr[u + 1]):
                w = indices[k]
                if other[w]:
                    return True
                if not seen[w]:
                    seen[w] = 1
                    next_frontier.append(w)
    return False


def descendants(graph: DiGraph, source: int) -> set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    return set(dfs_preorder(graph, source))


def ancestors(graph: DiGraph, source: int) -> set[int]:
    """All vertices that reach ``source`` (including itself)."""
    return set(dfs_preorder(graph.reversed(), source))
