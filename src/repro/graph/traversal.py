"""Graph traversals and the naive online-search reachability checks.

These functions are the right-hand end of the paper's Figure 1 spectrum:
no index at all, O(|V| + |E|) per query.  They double as the ground-truth
oracle for every index's test suite.
"""

from __future__ import annotations

import threading
from array import array
from collections import deque
from collections.abc import Iterator
from weakref import WeakKeyDictionary

from repro.graph.digraph import DiGraph

__all__ = [
    "dfs_preorder",
    "bfs_order",
    "dfs_reachable",
    "bfs_reachable",
    "bidirectional_reachable",
    "bounded_bidirectional_reachable",
    "find_cycle",
    "descendants",
    "ancestors",
]


def dfs_preorder(graph: DiGraph, source: int) -> Iterator[int]:
    """Yield vertices in DFS preorder from ``source`` (iterative)."""
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    stack = [source]
    while stack:
        u = stack.pop()
        yield u
        # Push in reverse so the first successor is explored first.
        for k in range(indptr[u + 1] - 1, indptr[u] - 1, -1):
            w = indices[k]
            if not visited[w]:
                visited[w] = 1
                stack.append(w)


def bfs_order(graph: DiGraph, source: int) -> Iterator[int]:
    """Yield vertices in BFS order from ``source``."""
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        yield u
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if not visited[w]:
                visited[w] = 1
                queue.append(w)


def dfs_reachable(
    graph: DiGraph, source: int, target: int, guard=None
) -> bool:
    """Plain DFS reachability — the un-indexed online search.

    ``guard`` is an optional :class:`repro.resilience.budget.SearchGuard`
    charged one step per expanded vertex (budgeted queries).
    """
    if source == target:
        return True
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    stack = [source]
    while stack:
        u = stack.pop()
        if guard is not None:
            guard.step()
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if w == target:
                return True
            if not visited[w]:
                visited[w] = 1
                stack.append(w)
    return False


def bfs_reachable(
    graph: DiGraph, source: int, target: int, guard=None
) -> bool:
    """Plain BFS reachability (optionally budget-guarded)."""
    if source == target:
        return True
    indptr, indices = graph.out_indptr, graph.out_indices
    visited = bytearray(graph.num_vertices)
    visited[source] = 1
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        if guard is not None:
            guard.step()
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if w == target:
                return True
            if not visited[w]:
                visited[w] = 1
                queue.append(w)
    return False


class _BiScratch:
    """Reusable bidirectional-search state for one graph.

    Timestamped seen marks (``seen[w] == stamp`` ⇔ seen in the current
    search) replace the two per-call ``bytearray(n)`` allocations the
    old implementation paid on *every* query — O(|V|) of zeroing that
    dominated small searches.  One scratch per (graph, thread), held
    weakly so dropped graphs free their buffers.
    """

    __slots__ = ("fwd", "bwd", "stamp")

    def __init__(self, num_vertices: int) -> None:
        itemsize = array("l").itemsize
        self.fwd = array("l", bytes(itemsize * num_vertices))
        self.bwd = array("l", bytes(itemsize * num_vertices))
        self.stamp = 0


_SCRATCH = threading.local()


def _bi_scratch(graph: DiGraph) -> _BiScratch:
    try:
        cache = _SCRATCH.cache
    except AttributeError:
        cache = _SCRATCH.cache = WeakKeyDictionary()
    scratch = cache.get(graph)
    if scratch is None:
        scratch = cache[graph] = _BiScratch(graph.num_vertices)
    return scratch


def bidirectional_reachable(
    graph: DiGraph, source: int, target: int, guard=None
) -> bool:
    """Bidirectional BFS: forward from ``source``, backward from ``target``.

    Alternates expanding whichever frontier is smaller; meets in the middle
    on most positive queries, which makes it the strongest *un-indexed*
    baseline.
    """
    if source == target:
        return True
    scratch = _bi_scratch(graph)
    scratch.stamp += 1
    stamp = scratch.stamp
    fwd_seen = scratch.fwd
    bwd_seen = scratch.bwd
    fwd_seen[source] = stamp
    bwd_seen[target] = stamp
    fwd_frontier = [source]
    bwd_frontier = [target]
    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    while fwd_frontier and bwd_frontier:
        if len(fwd_frontier) <= len(bwd_frontier):
            frontier, seen, other = fwd_frontier, fwd_seen, bwd_seen
            indptr, indices = out_indptr, out_indices
            fwd_frontier = next_frontier = []
        else:
            frontier, seen, other = bwd_frontier, bwd_seen, fwd_seen
            indptr, indices = in_indptr, in_indices
            bwd_frontier = next_frontier = []
        for u in frontier:
            if guard is not None:
                guard.step()
            for k in range(indptr[u], indptr[u + 1]):
                w = indices[k]
                if other[w] == stamp:
                    return True
                if seen[w] != stamp:
                    seen[w] = stamp
                    next_frontier.append(w)
    return False


def bounded_bidirectional_reachable(
    graph: DiGraph, source: int, target: int, max_nodes: int
) -> bool | None:
    """Bidirectional BFS capped at ``max_nodes`` *expanded* vertices.

    The graceful-degradation fallback of ``repro.resilience``: returns
    ``True``/``False`` when the search concludes within budget, ``None``
    when the cap is hit first.  A ``False`` is definitive — a frontier
    drained — so callers may trust boolean answers unconditionally.
    """
    if source == target:
        return True
    scratch = _bi_scratch(graph)
    scratch.stamp += 1
    stamp = scratch.stamp
    fwd_seen = scratch.fwd
    bwd_seen = scratch.bwd
    fwd_seen[source] = stamp
    bwd_seen[target] = stamp
    fwd_frontier = [source]
    bwd_frontier = [target]
    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    expanded = 0
    while fwd_frontier and bwd_frontier:
        if len(fwd_frontier) <= len(bwd_frontier):
            frontier, seen, other = fwd_frontier, fwd_seen, bwd_seen
            indptr, indices = out_indptr, out_indices
            fwd_frontier = next_frontier = []
        else:
            frontier, seen, other = bwd_frontier, bwd_seen, fwd_seen
            indptr, indices = in_indptr, in_indices
            bwd_frontier = next_frontier = []
        for u in frontier:
            expanded += 1
            if expanded > max_nodes:
                return None
            for k in range(indptr[u], indptr[u + 1]):
                w = indices[k]
                if other[w] == stamp:
                    return True
                if seen[w] != stamp:
                    seen[w] = stamp
                    next_frontier.append(w)
    return False


def find_cycle(graph: DiGraph) -> list[int] | None:
    """A witness directed cycle, or ``None`` when the graph is a DAG.

    Iterative white/grey/black DFS, O(|V| + |E|).  The returned list
    ``[v0, ..., vk]`` has an edge between each consecutive pair and an
    edge ``(vk, v0)`` closing the loop — ready for an actionable
    :class:`~repro.exceptions.CycleError` message.
    """
    n = graph.num_vertices
    indptr, indices = graph.out_indptr, graph.out_indices
    color = bytearray(n)  # 0 white, 1 grey (on stack), 2 black
    parent = [-1] * n
    for root in range(n):
        if color[root]:
            continue
        stack: list[tuple[int, int]] = [(root, indptr[root])]
        color[root] = 1
        while stack:
            v, edge_pos = stack[-1]
            if edge_pos < indptr[v + 1]:
                stack[-1] = (v, edge_pos + 1)
                w = indices[edge_pos]
                if color[w] == 1:
                    # Grey-to-grey edge closes a cycle: walk parents back.
                    cycle = [v]
                    node = v
                    while node != w:
                        node = parent[node]
                        cycle.append(node)
                    cycle.reverse()
                    return cycle
                if color[w] == 0:
                    color[w] = 1
                    parent[w] = v
                    stack.append((w, indptr[w]))
            else:
                color[v] = 2
                stack.pop()
    return None


def descendants(graph: DiGraph, source: int) -> set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    return set(dfs_preorder(graph, source))


def ancestors(graph: DiGraph, source: int) -> set[int]:
    """All vertices that reach ``source`` (including itself)."""
    return set(dfs_preorder(graph.reversed(), source))
