"""Graph serialisation: edge lists, the GRAIL ``.gra`` format, and DOT.

The datasets the paper uses ship in the GRAIL adjacency format (``.gra``):

.. code-block:: text

    graph_for_greach
    <num_vertices>
    <vertex_id>: <succ_1> <succ_2> ... #
    ...

We read and write that format so our stand-in graphs interoperate with the
original C++ tools, plus plain whitespace edge lists (one ``u v`` pair per
line, ``#`` comments) and Graphviz DOT export for small-figure rendering.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

from repro.exceptions import CycleError, GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_gra",
    "write_gra",
    "to_dot",
]


def _open_text(path: str | Path, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently handling ``.gz`` suffixes."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def _check_dag(graph: DiGraph, path: str | Path) -> DiGraph:
    """Raise :class:`CycleError` with a witness cycle if ``graph`` is cyclic."""
    from repro.graph.traversal import find_cycle

    cycle = find_cycle(graph)
    if cycle is not None:
        raise CycleError(
            f"{path}: graph contains a directed cycle "
            f"({' -> '.join(map(str, cycle))} -> {cycle[0]})",
            cycle=cycle,
        )
    return graph


def read_edge_list(
    path: str | Path,
    dedup: bool = False,
    name: str = "",
    strict: bool = False,
    on_duplicate: str | None = None,
    on_self_loop: str | None = None,
    max_vertices: int | None = None,
    require_dag: bool = False,
) -> DiGraph:
    """Load a whitespace edge list: one ``u v`` pair per line.

    Blank lines and lines starting with ``#`` are skipped.  Vertex count is
    inferred from the largest id mentioned.

    ``strict=True`` turns tolerated irregularities into line-numbered
    :class:`GraphError`\\ s: trailing tokens after ``u v``, duplicate edges
    and self loops all fail (the latter two overridable via the explicit
    ``on_duplicate`` / ``on_self_loop`` policies).  ``max_vertices`` caps
    the inferred vertex count so one corrupt id cannot balloon the CSR
    arrays.  ``require_dag=True`` additionally rejects cyclic inputs with
    a :class:`~repro.exceptions.CycleError` carrying a witness cycle.
    """
    if on_duplicate is None and strict:
        on_duplicate = "error"
    if on_self_loop is None and strict:
        on_self_loop = "error"
    builder = GraphBuilder(
        dedup=dedup,
        auto_grow=True,
        on_duplicate=on_duplicate,
        on_self_loop=on_self_loop,
        max_vertices=max_vertices,
    )
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2 or (strict and len(parts) != 2):
                raise GraphError(
                    f"{path}:{line_no}: expected 'u v', got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_no}: non-integer vertex id in {stripped!r}"
                ) from exc
            try:
                builder.add_edge(u, v)
            except GraphError as exc:
                raise GraphError(f"{path}:{line_no}: {exc}") from exc
    graph = builder.build(name=name or Path(path).stem)
    if require_dag:
        _check_dag(graph, path)
    return graph


def write_edge_list(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` as a whitespace edge list (with a header comment)."""
    with _open_text(path, "w") as handle:
        handle.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_gra(
    path: str | Path,
    name: str = "",
    strict: bool = False,
    on_duplicate: str | None = None,
    on_self_loop: str | None = None,
    require_dag: bool = False,
) -> DiGraph:
    """Load a graph in GRAIL's ``.gra`` adjacency format.

    Every malformed token raises a line-numbered :class:`GraphError` (never
    a bare :class:`ValueError`).  ``strict=True`` additionally requires the
    ``#`` terminator on each adjacency line and makes duplicate edges and
    self loops errors; ``require_dag=True`` rejects cyclic inputs with a
    :class:`~repro.exceptions.CycleError` carrying a witness cycle.
    """
    if on_duplicate is None and strict:
        on_duplicate = "error"
    if on_self_loop is None and strict:
        on_self_loop = "error"
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header:
            raise GraphError(f"{path}: empty file")
        count_line = handle.readline().strip()
        try:
            num_vertices = int(count_line)
        except ValueError as exc:
            raise GraphError(
                f"{path}: expected vertex count on line 2, got {count_line!r}"
            ) from exc
        if num_vertices < 0:
            raise GraphError(
                f"{path}: negative vertex count {num_vertices} on line 2"
            )
        builder = GraphBuilder(
            num_vertices=num_vertices,
            on_duplicate=on_duplicate,
            on_self_loop=on_self_loop,
        )
        for line_no, line in enumerate(handle, start=3):
            stripped = line.strip()
            if not stripped:
                continue
            head, _, tail = stripped.partition(":")
            try:
                u = int(head)
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_no}: bad vertex id {head!r}"
                ) from exc
            tokens = tail.split()
            terminated = False
            for token in tokens:
                if token == "#":
                    terminated = True
                    break
                try:
                    v = int(token)
                except ValueError as exc:
                    raise GraphError(
                        f"{path}:{line_no}: non-integer successor {token!r}"
                    ) from exc
                try:
                    builder.add_edge(u, v)
                except GraphError as exc:
                    raise GraphError(f"{path}:{line_no}: {exc}") from exc
            if strict and not terminated:
                raise GraphError(
                    f"{path}:{line_no}: adjacency line missing the '#' "
                    f"terminator"
                )
    graph = builder.build(name=name or Path(path).stem)
    if require_dag:
        _check_dag(graph, path)
    return graph


def write_gra(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` in GRAIL's ``.gra`` adjacency format."""
    with _open_text(path, "w") as handle:
        handle.write("graph_for_greach\n")
        handle.write(f"{graph.num_vertices}\n")
        for u in range(graph.num_vertices):
            succ = " ".join(str(v) for v in graph.successors(u))
            handle.write(f"{u}: {succ}{' ' if succ else ''}#\n")


def to_dot(graph: DiGraph, labels: dict[int, str] | None = None) -> str:
    """Render ``graph`` as Graphviz DOT text (small graphs only)."""
    lines = ["digraph G {"]
    if labels:
        for v, label in sorted(labels.items()):
            lines.append(f'  {v} [label="{label}"];')
    for u, v in graph.edges():
        lines.append(f"  {u} -> {v};")
    lines.append("}")
    return "\n".join(lines)
