"""Graph serialisation: edge lists, the GRAIL ``.gra`` format, and DOT.

The datasets the paper uses ship in the GRAIL adjacency format (``.gra``):

.. code-block:: text

    graph_for_greach
    <num_vertices>
    <vertex_id>: <succ_1> <succ_2> ... #
    ...

We read and write that format so our stand-in graphs interoperate with the
original C++ tools, plus plain whitespace edge lists (one ``u v`` pair per
line, ``#`` comments) and Graphviz DOT export for small-figure rendering.
"""

from __future__ import annotations

import gzip
from pathlib import Path
from typing import IO

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "read_edge_list",
    "write_edge_list",
    "read_gra",
    "write_gra",
    "to_dot",
]


def _open_text(path: str | Path, mode: str) -> IO[str]:
    """Open ``path`` as text, transparently handling ``.gz`` suffixes."""
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def read_edge_list(
    path: str | Path,
    dedup: bool = False,
    name: str = "",
) -> DiGraph:
    """Load a whitespace edge list: one ``u v`` pair per line.

    Blank lines and lines starting with ``#`` are skipped.  Vertex count is
    inferred from the largest id mentioned.
    """
    builder = GraphBuilder(dedup=dedup, auto_grow=True)
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) < 2:
                raise GraphError(
                    f"{path}:{line_no}: expected 'u v', got {stripped!r}"
                )
            try:
                u, v = int(parts[0]), int(parts[1])
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_no}: non-integer vertex id in {stripped!r}"
                ) from exc
            builder.add_edge(u, v)
    return builder.build(name=name or Path(path).stem)


def write_edge_list(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` as a whitespace edge list (with a header comment)."""
    with _open_text(path, "w") as handle:
        handle.write(f"# |V|={graph.num_vertices} |E|={graph.num_edges}\n")
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def read_gra(path: str | Path, name: str = "") -> DiGraph:
    """Load a graph in GRAIL's ``.gra`` adjacency format."""
    with _open_text(path, "r") as handle:
        header = handle.readline()
        if not header:
            raise GraphError(f"{path}: empty file")
        count_line = handle.readline().strip()
        try:
            num_vertices = int(count_line)
        except ValueError as exc:
            raise GraphError(
                f"{path}: expected vertex count on line 2, got {count_line!r}"
            ) from exc
        builder = GraphBuilder(num_vertices=num_vertices)
        for line_no, line in enumerate(handle, start=3):
            stripped = line.strip()
            if not stripped:
                continue
            head, _, tail = stripped.partition(":")
            try:
                u = int(head)
            except ValueError as exc:
                raise GraphError(
                    f"{path}:{line_no}: bad vertex id {head!r}"
                ) from exc
            for token in tail.split():
                if token == "#":
                    break
                builder.add_edge(u, int(token))
    return builder.build(name=name or Path(path).stem)


def write_gra(graph: DiGraph, path: str | Path) -> None:
    """Write ``graph`` in GRAIL's ``.gra`` adjacency format."""
    with _open_text(path, "w") as handle:
        handle.write("graph_for_greach\n")
        handle.write(f"{graph.num_vertices}\n")
        for u in range(graph.num_vertices):
            succ = " ".join(str(v) for v in graph.successors(u))
            handle.write(f"{u}: {succ}{' ' if succ else ''}#\n")


def to_dot(graph: DiGraph, labels: dict[int, str] | None = None) -> str:
    """Render ``graph`` as Graphviz DOT text (small graphs only)."""
    lines = ["digraph G {"]
    if labels:
        for v, label in sorted(labels.items()):
            lines.append(f'  {v} [label="{label}"];')
    for u, v in graph.edges():
        lines.append(f"  {u} -> {v};")
    lines.append("}")
    return "\n".join(lines)
