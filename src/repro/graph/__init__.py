"""Directed-graph substrate: representation, algorithms and generators.

Everything in :mod:`repro.core`, :mod:`repro.baselines` and
:mod:`repro.scarab` is built on this package.  The central type is
:class:`~repro.graph.digraph.DiGraph`, an immutable CSR graph over dense
integer vertices.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.graph.properties import graph_summary
from repro.graph.scc import condense, is_dag, strongly_connected_components
from repro.graph.toposort import (
    dfs_topological_order,
    kahn_order,
    priority_kahn_order,
)
from repro.graph.traversal import bfs_reachable, dfs_reachable

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "condense",
    "is_dag",
    "strongly_connected_components",
    "kahn_order",
    "priority_kahn_order",
    "dfs_topological_order",
    "compute_levels",
    "graph_summary",
    "dfs_reachable",
    "bfs_reachable",
]
