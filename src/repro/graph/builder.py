"""Mutable accumulator for constructing :class:`~repro.graph.digraph.DiGraph`.

:class:`GraphBuilder` collects edges incrementally — from generators, file
parsers or algorithmic constructions — and produces an immutable CSR graph
at the end.  Duplicate edges and self loops, the two clean-ups every
dataset loader in this library needs, are governed by per-kind policies:

* ``"keep"`` — record the edge as-is (the default; matches raw input);
* ``"drop"`` — silently discard it (what permissive loaders want);
* ``"error"`` — raise :class:`~repro.exceptions.GraphError` (what the
  strict ingestion paths of :mod:`repro.graph.io` want: a malformed
  dataset should fail loudly at the line that is wrong, not produce a
  subtly different graph).

The legacy boolean knobs ``dedup`` / ``drop_self_loops`` remain accepted
and map to the ``"drop"`` policies.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder", "EDGE_POLICIES"]

#: Valid values for ``on_duplicate`` / ``on_self_loop``.
EDGE_POLICIES = ("keep", "drop", "error")


class GraphBuilder:
    """Accumulates edges and vertices, then builds a :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        Initial vertex count.  May grow via :meth:`add_vertex` or
        automatically when ``auto_grow`` is true and an edge mentions a
        vertex id beyond the current count.
    dedup:
        Legacy alias for ``on_duplicate="drop"``.
    drop_self_loops:
        Legacy alias for ``on_self_loop="drop"``.
    on_duplicate, on_self_loop:
        One of :data:`EDGE_POLICIES`; override the legacy booleans when
        given.
    max_vertices:
        Upper bound on the vertex count; growing past it (explicitly or
        via ``auto_grow``) raises :class:`GraphError`.  Guards loaders
        against a corrupt id (e.g. ``999999999999``) silently allocating
        gigabytes of CSR arrays.

    Examples
    --------
    >>> b = GraphBuilder(auto_grow=True)
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    def __init__(
        self,
        num_vertices: int = 0,
        dedup: bool = False,
        drop_self_loops: bool = False,
        auto_grow: bool = False,
        on_duplicate: str | None = None,
        on_self_loop: str | None = None,
        max_vertices: int | None = None,
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        if on_duplicate is None:
            on_duplicate = "drop" if dedup else "keep"
        if on_self_loop is None:
            on_self_loop = "drop" if drop_self_loops else "keep"
        for name, policy in (
            ("on_duplicate", on_duplicate),
            ("on_self_loop", on_self_loop),
        ):
            if policy not in EDGE_POLICIES:
                raise GraphError(
                    f"{name} must be one of {EDGE_POLICIES}, got {policy!r}"
                )
        if max_vertices is not None and num_vertices > max_vertices:
            raise GraphError(
                f"num_vertices {num_vertices} exceeds max_vertices "
                f"{max_vertices}"
            )
        self._num_vertices = num_vertices
        self._edges: list[tuple[int, int]] = []
        self._on_duplicate = on_duplicate
        self._on_self_loop = on_self_loop
        self._seen: set[tuple[int, int]] | None = (
            set() if on_duplicate != "keep" else None
        )
        self._auto_grow = auto_grow
        self._max_vertices = max_vertices

    @property
    def num_vertices(self) -> int:
        """Current vertex count."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges accumulated so far (after dedup / loop drops)."""
        return len(self._edges)

    def _grow_to(self, count: int) -> None:
        if self._max_vertices is not None and count > self._max_vertices:
            raise GraphError(
                f"vertex count {count} exceeds max_vertices "
                f"{self._max_vertices}"
            )
        self._num_vertices = count

    def add_vertex(self) -> int:
        """Allocate one more vertex and return its id."""
        vid = self._num_vertices
        self._grow_to(vid + 1)
        return vid

    def ensure_vertices(self, count: int) -> None:
        """Grow the vertex count to at least ``count``."""
        if count > self._num_vertices:
            self._grow_to(count)

    def add_edge(self, u: int, v: int) -> None:
        """Record the directed edge ``(u, v)``.

        Raises :class:`GraphError` if an endpoint is out of range and
        ``auto_grow`` is off, if growth would pass ``max_vertices``, or
        if the edge trips an ``"error"`` duplicate/self-loop policy.
        """
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        top = max(u, v)
        if top >= self._num_vertices:
            if not self._auto_grow:
                raise GraphError(
                    f"edge ({u}, {v}) exceeds vertex count "
                    f"{self._num_vertices} (auto_grow is off)"
                )
            self._grow_to(top + 1)
        if u == v and self._on_self_loop != "keep":
            if self._on_self_loop == "error":
                raise GraphError(f"self-loop ({u}, {v}) not allowed")
            return
        if self._seen is not None:
            key = (u, v)
            if key in self._seen:
                if self._on_duplicate == "error":
                    raise GraphError(f"duplicate edge ({u}, {v})")
                return
            self._seen.add(key)
        self._edges.append((u, v))

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Record many edges; equivalent to repeated :meth:`add_edge`."""
        for u, v in edges:
            self.add_edge(u, v)

    def build(self, name: str = "") -> DiGraph:
        """Produce the immutable CSR graph from the accumulated edges."""
        return DiGraph(self._num_vertices, self._edges, name=name)
