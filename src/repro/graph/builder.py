"""Mutable accumulator for constructing :class:`~repro.graph.digraph.DiGraph`.

:class:`GraphBuilder` collects edges incrementally — from generators, file
parsers or algorithmic constructions — and produces an immutable CSR graph
at the end.  It optionally deduplicates edges and drops self loops, the two
clean-ups every dataset loader in this library needs.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Accumulates edges and vertices, then builds a :class:`DiGraph`.

    Parameters
    ----------
    num_vertices:
        Initial vertex count.  May grow via :meth:`add_vertex` or
        automatically when ``auto_grow`` is true and an edge mentions a
        vertex id beyond the current count.
    dedup:
        Drop duplicate edges (keeps the first occurrence's position).
    drop_self_loops:
        Silently discard edges ``(u, u)``.

    Examples
    --------
    >>> b = GraphBuilder(auto_grow=True)
    >>> b.add_edge(0, 1)
    >>> b.add_edge(1, 2)
    >>> g = b.build()
    >>> g.num_vertices, g.num_edges
    (3, 2)
    """

    def __init__(
        self,
        num_vertices: int = 0,
        dedup: bool = False,
        drop_self_loops: bool = False,
        auto_grow: bool = False,
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._num_vertices = num_vertices
        self._edges: list[tuple[int, int]] = []
        self._seen: set[tuple[int, int]] | None = set() if dedup else None
        self._drop_self_loops = drop_self_loops
        self._auto_grow = auto_grow

    @property
    def num_vertices(self) -> int:
        """Current vertex count."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of edges accumulated so far (after dedup / loop drops)."""
        return len(self._edges)

    def add_vertex(self) -> int:
        """Allocate one more vertex and return its id."""
        vid = self._num_vertices
        self._num_vertices += 1
        return vid

    def ensure_vertices(self, count: int) -> None:
        """Grow the vertex count to at least ``count``."""
        if count > self._num_vertices:
            self._num_vertices = count

    def add_edge(self, u: int, v: int) -> None:
        """Record the directed edge ``(u, v)``.

        Raises :class:`GraphError` if an endpoint is out of range and
        ``auto_grow`` is off.
        """
        if u < 0 or v < 0:
            raise GraphError(f"negative vertex id in edge ({u}, {v})")
        top = max(u, v)
        if top >= self._num_vertices:
            if not self._auto_grow:
                raise GraphError(
                    f"edge ({u}, {v}) exceeds vertex count "
                    f"{self._num_vertices} (auto_grow is off)"
                )
            self._num_vertices = top + 1
        if self._drop_self_loops and u == v:
            return
        if self._seen is not None:
            key = (u, v)
            if key in self._seen:
                return
            self._seen.add(key)
        self._edges.append((u, v))

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Record many edges; equivalent to repeated :meth:`add_edge`."""
        for u, v in edges:
            self.add_edge(u, v)

    def build(self, name: str = "") -> DiGraph:
        """Produce the immutable CSR graph from the accumulated edges."""
        return DiGraph(self._num_vertices, self._edges, name=name)
