"""Compact directed-graph representation.

:class:`DiGraph` stores a directed graph in *compressed sparse row* (CSR)
form, once for the out-direction and once for the in-direction.  This is the
substrate every index in this library is built on:

* vertices are the dense integers ``0 .. n-1`` (the paper numbers them
  ``1 .. |V|``; we follow the Python convention);
* ``successors(u)`` / ``predecessors(u)`` are O(1) slices into flat arrays;
* the raw CSR arrays are exposed (``out_indptr``, ``out_indices``,
  ``in_indptr``, ``in_indices``) so that hot loops — index construction and
  DFS-based query answering — can avoid per-call overhead.

Instances are immutable once constructed.  Use
:class:`repro.graph.builder.GraphBuilder` to accumulate edges, or the
convenience classmethods :meth:`DiGraph.from_edges` and
:meth:`DiGraph.from_adjacency`.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Iterator, Sequence
from typing import TYPE_CHECKING, NamedTuple

from repro.exceptions import GraphError

if TYPE_CHECKING:  # numpy is only needed by csr(); keep the core lazy
    import numpy as np

__all__ = ["DiGraph", "CsrViews"]

# C `long` is 8 bytes on LP64 but 4 on Windows/32-bit platforms; zeroed
# buffers below must match it, not assume 8.
_L_ITEMSIZE = array("l").itemsize


class CsrViews(NamedTuple):
    """Int64 numpy views of a graph's four CSR arrays.

    Produced once per graph by :meth:`DiGraph.csr` and consumed by every
    numpy/numba consumer (search kernels, shared-memory pages) so hot
    paths never pay a per-call ``array`` → ``ndarray`` conversion.
    """

    out_indptr: "np.ndarray"
    out_indices: "np.ndarray"
    in_indptr: "np.ndarray"
    in_indices: "np.ndarray"


def _csr_from_edges(
    num_vertices: int, sources: Sequence[int], targets: Sequence[int]
) -> tuple[array, array]:
    """Build (indptr, indices) CSR arrays grouping ``targets`` by source.

    Runs in O(|V| + |E|) using a counting pass followed by a placement pass,
    which keeps construction linear even for tens of millions of edges.
    Within each source bucket the targets keep their input order.
    """
    counts = array("l", bytes(_L_ITEMSIZE * (num_vertices + 1)))
    for s in sources:
        counts[s + 1] += 1
    indptr = counts  # reused in place: prefix-sum turns counts into offsets
    for v in range(1, num_vertices + 1):
        indptr[v] += indptr[v - 1]
    indices = array("l", bytes(_L_ITEMSIZE * len(targets)))
    cursor = array("l", indptr[:num_vertices])
    for s, t in zip(sources, targets):
        pos = cursor[s]
        indices[pos] = t
        cursor[s] = pos + 1
    return indptr, indices


class DiGraph:
    """An immutable directed graph over vertices ``0 .. n-1`` in CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``n``; vertex ids are ``0 .. n-1``.
    edges:
        Iterable of ``(source, target)`` pairs.  Duplicate edges are kept
        as given (deduplicate in :class:`GraphBuilder` if needed); self
        loops are allowed here and removed by SCC condensation.

    Notes
    -----
    The class checks vertex ids once at construction, so traversal code can
    skip bounds checks.
    """

    __slots__ = (
        "_num_vertices",
        "_num_edges",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        "_csr_views",
        "name",
        # Weak referenceability: per-graph caches (traversal scratch
        # buffers, kernel registries) key on the graph without pinning it.
        "__weakref__",
    )

    def __init__(
        self,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        name: str = "",
    ) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        sources = array("l")
        targets = array("l")
        for u, v in edges:
            sources.append(u)
            targets.append(v)
        n = num_vertices
        for endpoint in (sources, targets):
            for v in endpoint:
                if not 0 <= v < n:
                    raise GraphError(
                        f"edge endpoint {v} out of range [0, {n})"
                    )
        self._num_vertices = n
        self._num_edges = len(sources)
        self.out_indptr, self.out_indices = _csr_from_edges(n, sources, targets)
        self.in_indptr, self.in_indices = _csr_from_edges(n, targets, sources)
        self._csr_views = None
        self.name = name

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls,
        edges: Iterable[tuple[int, int]],
        num_vertices: int | None = None,
        name: str = "",
    ) -> "DiGraph":
        """Build a graph from an edge list, inferring ``n`` when omitted.

        When ``num_vertices`` is ``None``, ``n`` is one more than the largest
        endpoint mentioned (0 for an empty edge list).
        """
        edge_list = list(edges)
        if num_vertices is None:
            num_vertices = (
                1 + max(max(u, v) for u, v in edge_list) if edge_list else 0
            )
        return cls(num_vertices, edge_list, name=name)

    @classmethod
    def from_adjacency(
        cls,
        adjacency: Sequence[Iterable[int]],
        name: str = "",
    ) -> "DiGraph":
        """Build a graph from per-vertex successor lists."""
        edges = [
            (u, v) for u, succ in enumerate(adjacency) for v in succ
        ]
        return cls(len(adjacency), edges, name=name)

    # ------------------------------------------------------------------
    # basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        """Number of vertices ``n``."""
        return self._num_vertices

    @property
    def num_edges(self) -> int:
        """Number of directed edges (duplicates counted)."""
        return self._num_edges

    def vertices(self) -> range:
        """The vertex ids, as a :class:`range`."""
        return range(self._num_vertices)

    def successors(self, u: int) -> array:
        """The out-neighbours of ``u`` (a fresh array slice)."""
        return self.out_indices[self.out_indptr[u] : self.out_indptr[u + 1]]

    def predecessors(self, u: int) -> array:
        """The in-neighbours of ``u`` (a fresh array slice)."""
        return self.in_indices[self.in_indptr[u] : self.in_indptr[u + 1]]

    def out_degree(self, u: int) -> int:
        """Number of out-edges of ``u``."""
        return self.out_indptr[u + 1] - self.out_indptr[u]

    def in_degree(self, u: int) -> int:
        """Number of in-edges of ``u``."""
        return self.in_indptr[u + 1] - self.in_indptr[u]

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges as ``(source, target)`` pairs."""
        indptr, indices = self.out_indptr, self.out_indices
        for u in range(self._num_vertices):
            for k in range(indptr[u], indptr[u + 1]):
                yield u, indices[k]

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists (linear in deg(u))."""
        indptr = self.out_indptr
        indices = self.out_indices
        for k in range(indptr[u], indptr[u + 1]):
            if indices[k] == v:
                return True
        return False

    def roots(self) -> list[int]:
        """Vertices with no incoming edges."""
        indptr = self.in_indptr
        return [v for v in range(self._num_vertices) if indptr[v] == indptr[v + 1]]

    def leaves(self) -> list[int]:
        """Vertices with no outgoing edges."""
        indptr = self.out_indptr
        return [v for v in range(self._num_vertices) if indptr[v] == indptr[v + 1]]

    # ------------------------------------------------------------------
    # derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "DiGraph":
        """The graph with every edge direction flipped.

        Used by FELINE-I / FELINE-B: the reversed index answers ``r(u, v)``
        on this graph as ``r(v, u)`` on the reversal.
        """
        rev = DiGraph.__new__(DiGraph)
        rev._num_vertices = self._num_vertices
        rev._num_edges = self._num_edges
        rev.out_indptr = self.in_indptr
        rev.out_indices = self.in_indices
        rev.in_indptr = self.out_indptr
        rev.in_indices = self.out_indices
        views = self._csr_views
        rev._csr_views = (
            CsrViews(
                out_indptr=views.in_indptr,
                out_indices=views.in_indices,
                in_indptr=views.out_indptr,
                in_indices=views.out_indices,
            )
            if views is not None
            else None
        )
        rev.name = f"{self.name}-reversed" if self.name else "reversed"
        return rev

    # ------------------------------------------------------------------
    # flat numpy export (search kernels, shared-memory pages)
    # ------------------------------------------------------------------
    def csr(self) -> CsrViews:
        """Cached ``int64`` numpy views of the four CSR arrays.

        Created on first use (zero-copy where the platform ``long`` is
        already 8 bytes) and reused by every kernel invocation;
        :meth:`adopt_csr` swaps them for shared-memory-backed copies.
        """
        views = self._csr_views
        if views is None:
            from repro.perf.cut_table import view_i64

            views = CsrViews(
                out_indptr=view_i64(self.out_indptr),
                out_indices=view_i64(self.out_indices),
                in_indptr=view_i64(self.in_indptr),
                in_indices=view_i64(self.in_indices),
            )
            self._csr_views = views
        return views

    def adopt_csr(self, views: CsrViews) -> CsrViews:
        """Replace the cached numpy CSR views (shared-memory adoption).

        Returns the previous views so callers can restore them when the
        shared arena is torn down.  The ``array`` storage is untouched —
        scalar traversals keep reading it — only numpy consumers move to
        the adopted arrays.
        """
        previous = self.csr()
        self._csr_views = views
        return previous

    def memory_bytes(self) -> int:
        """Approximate memory footprint of the CSR arrays, in bytes."""
        return sum(
            arr.itemsize * len(arr)
            for arr in (
                self.out_indptr,
                self.out_indices,
                self.in_indptr,
                self.in_indices,
            )
        )

    # ------------------------------------------------------------------
    # dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._num_vertices

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return (
            f"<DiGraph{label} |V|={self._num_vertices} |E|={self._num_edges}>"
        )
