"""Witness paths: not just *whether* ``v`` is reachable, but *how*.

Reachability indexes answer yes/no; debugging and auditing usually want
the path itself ("through which intermediaries does A influence B?").
:func:`find_path` returns a shortest witness path via BFS parent
pointers, O(|V| + |E|) — the online-search cost, paid only when a
witness is explicitly requested.
"""

from __future__ import annotations

from collections import deque

from repro.graph.digraph import DiGraph

__all__ = ["find_path"]


def find_path(graph: DiGraph, source: int, target: int) -> list[int] | None:
    """A shortest directed path from ``source`` to ``target``.

    Returns the vertex list (``[source, ..., target]``; ``[source]``
    when they coincide) or ``None`` when unreachable.
    """
    if source == target:
        return [source]
    indptr, indices = graph.out_indptr, graph.out_indices
    parent = {source: -1}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if w in parent:
                continue
            parent[w] = u
            if w == target:
                path = [w]
                while parent[path[-1]] != -1:
                    path.append(parent[path[-1]])
                path.reverse()
                return path
            queue.append(w)
    return None
