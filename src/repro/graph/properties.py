"""Structural graph statistics — the columns of the paper's Table 1.

The paper reports, per dataset: |V|, |E|, clustering coefficient, effective
diameter, number of roots and number of leaves (computed by the GRAIL
authors with the SNAP toolkit).  This module recomputes the same statistics
on our stand-in graphs:

* :func:`clustering_coefficient` — SNAP's average local clustering
  coefficient of the *undirected* version of the graph;
* :func:`effective_diameter` — the 90th-percentile pairwise hop distance,
  estimated by exact BFS from a vertex sample (the cited ANF work also
  approximates; sampling keeps us O(sample · (|V| + |E|)));
* :func:`degree_statistics` — min/max/mean degrees, roots and leaves.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from random import Random

from repro.graph.digraph import DiGraph

__all__ = [
    "clustering_coefficient",
    "effective_diameter",
    "degree_statistics",
    "DegreeStatistics",
    "graph_summary",
    "GraphSummary",
]


def _undirected_adjacency(graph: DiGraph) -> list[set[int]]:
    """Per-vertex neighbour sets ignoring edge direction and self loops."""
    adjacency: list[set[int]] = [set() for _ in range(graph.num_vertices)]
    for u, v in graph.edges():
        if u != v:
            adjacency[u].add(v)
            adjacency[v].add(u)
    return adjacency


def clustering_coefficient(graph: DiGraph) -> float:
    """Average local clustering coefficient, undirected interpretation.

    For each vertex with degree ≥ 2, the fraction of its neighbour pairs
    that are themselves connected; vertices of degree < 2 contribute 0,
    matching SNAP's convention used for Table 1.
    """
    adjacency = _undirected_adjacency(graph)
    n = graph.num_vertices
    if n == 0:
        return 0.0
    total = 0.0
    for neighbours in adjacency:
        k = len(neighbours)
        if k < 2:
            continue
        links = 0
        for w in neighbours:
            # Count each triangle edge once by comparing set sizes smartly:
            # iterate the smaller set.
            others = adjacency[w]
            if len(others) < k:
                links += sum(1 for x in others if x in neighbours)
            else:
                links += sum(1 for x in neighbours if x in others)
        total += links / (k * (k - 1))
    return total / n


def _bfs_distances_undirected(
    adjacency: list[set[int]], source: int
) -> dict[int, int]:
    """Hop distances from ``source`` over the undirected adjacency."""
    distances = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = distances[u]
        for w in adjacency[u]:
            if w not in distances:
                distances[w] = du + 1
                queue.append(w)
    return distances


def effective_diameter(
    graph: DiGraph,
    percentile: float = 0.9,
    sample_size: int = 64,
    seed: int = 0,
) -> float:
    """Estimated effective diameter: the ``percentile`` hop distance.

    BFS from ``sample_size`` random sources over the undirected graph
    collects a sample of pairwise distances; the effective diameter is the
    interpolated ``percentile`` of that sample — the "estimated size of the
    path in which 90% of all connected pairs are reachable from each
    other" the paper quotes from the ANF literature.
    """
    n = graph.num_vertices
    if n == 0:
        return 0.0
    adjacency = _undirected_adjacency(graph)
    rng = Random(seed)
    sources = (
        list(range(n))
        if n <= sample_size
        else rng.sample(range(n), sample_size)
    )
    distances: list[int] = []
    for source in sources:
        found = _bfs_distances_undirected(adjacency, source)
        distances.extend(d for d in found.values() if d > 0)
    if not distances:
        return 0.0
    distances.sort()
    # Linear interpolation between the two order statistics around the
    # requested percentile, as SNAP does.
    position = percentile * (len(distances) - 1)
    low = math.floor(position)
    high = math.ceil(position)
    if low == high:
        return float(distances[low])
    fraction = position - low
    return distances[low] * (1 - fraction) + distances[high] * fraction


@dataclass(frozen=True)
class DegreeStatistics:
    """Degree-derived statistics of a directed graph."""

    num_roots: int
    num_leaves: int
    max_out_degree: int
    max_in_degree: int
    mean_degree: float


def degree_statistics(graph: DiGraph) -> DegreeStatistics:
    """Roots, leaves and degree extremes in one sweep."""
    n = graph.num_vertices
    num_roots = 0
    num_leaves = 0
    max_out = 0
    max_in = 0
    for v in range(n):
        out_deg = graph.out_indptr[v + 1] - graph.out_indptr[v]
        in_deg = graph.in_indptr[v + 1] - graph.in_indptr[v]
        if in_deg == 0:
            num_roots += 1
        if out_deg == 0:
            num_leaves += 1
        if out_deg > max_out:
            max_out = out_deg
        if in_deg > max_in:
            max_in = in_deg
    mean = graph.num_edges / n if n else 0.0
    return DegreeStatistics(
        num_roots=num_roots,
        num_leaves=num_leaves,
        max_out_degree=max_out,
        max_in_degree=max_in,
        mean_degree=mean,
    )


@dataclass(frozen=True)
class GraphSummary:
    """One row of the paper's Table 1."""

    name: str
    num_vertices: int
    num_edges: int
    clustering: float
    eff_diameter: float
    num_roots: int
    num_leaves: int


def graph_summary(
    graph: DiGraph,
    diameter_sample_size: int = 64,
    seed: int = 0,
) -> GraphSummary:
    """Compute every Table 1 column for one graph."""
    degrees = degree_statistics(graph)
    return GraphSummary(
        name=graph.name or "unnamed",
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        clustering=clustering_coefficient(graph),
        eff_diameter=effective_diameter(
            graph, sample_size=diameter_sample_size, seed=seed
        ),
        num_roots=degrees.num_roots,
        num_leaves=degrees.num_leaves,
    )
