"""Subgraph extraction utilities.

:func:`induced_subgraph` renumbers a vertex subset densely and keeps the
edges among its members — the operation behind SCARAB's backbone graph
and any divide-and-conquer over DAGs.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable
from dataclasses import dataclass

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = ["SubgraphMapping", "induced_subgraph"]


@dataclass(frozen=True)
class SubgraphMapping:
    """An induced subgraph plus the id translation both ways.

    ``local_of[v]`` maps an original vertex to its subgraph id (-1 when
    not included); ``original_of[s]`` is the inverse.
    """

    graph: DiGraph
    local_of: array
    original_of: array

    def to_local(self, original: int) -> int:
        """Subgraph id of ``original`` (-1 if it was not selected)."""
        return self.local_of[original]

    def to_original(self, local: int) -> int:
        """Original id of subgraph vertex ``local``."""
        return self.original_of[local]


def induced_subgraph(
    graph: DiGraph, vertices: Iterable[int], name: str = ""
) -> SubgraphMapping:
    """The subgraph induced on ``vertices`` (order defines the new ids).

    Duplicate selections are rejected — a silent dedup would desynchronise
    the caller's idea of the local numbering from ours.
    """
    selected = list(vertices)
    local_of = array("l", [-1] * graph.num_vertices)
    for local, original in enumerate(selected):
        if not 0 <= original < graph.num_vertices:
            raise GraphError(
                f"vertex {original} out of range [0, {graph.num_vertices})"
            )
        if local_of[original] != -1:
            raise GraphError(f"vertex {original} selected twice")
        local_of[original] = local
    edges = [
        (local_of[u], local_of[v])
        for u, v in graph.edges()
        if local_of[u] != -1 and local_of[v] != -1
    ]
    sub = DiGraph(
        len(selected),
        edges,
        name=name or (f"{graph.name}-sub" if graph.name else "subgraph"),
    )
    return SubgraphMapping(
        graph=sub,
        local_of=local_of,
        original_of=array("l", selected),
    )
