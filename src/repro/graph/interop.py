"""NetworkX interoperability.

Downstream users often already hold a :class:`networkx.DiGraph`; these
adapters move graphs across without ceremony.  The test suite also uses
them for *independent validation*: our Tarjan/condensation/toposort and
every reachability index are cross-checked against NetworkX's own
implementations on the same graphs.

Vertices need not be integers on the NetworkX side —
:func:`from_networkx` densifies arbitrary hashable node labels and
returns the mapping.
"""

from __future__ import annotations

from typing import Hashable

import networkx as nx

from repro.graph.digraph import DiGraph

__all__ = ["from_networkx", "to_networkx"]


def from_networkx(
    nx_graph: "nx.DiGraph", name: str = ""
) -> tuple[DiGraph, dict[Hashable, int]]:
    """Convert a NetworkX DiGraph; returns ``(graph, id_of_node)``.

    Node labels are densified in NetworkX's node-insertion order, so
    round-tripping integer-labelled graphs is the identity mapping.
    Parallel-edge multigraphs are rejected (use ``nx.DiGraph``).
    """
    if nx_graph.is_multigraph():
        raise TypeError("multigraphs are not supported; collapse edges first")
    id_of: dict[Hashable, int] = {
        node: i for i, node in enumerate(nx_graph.nodes())
    }
    edges = [(id_of[u], id_of[v]) for u, v in nx_graph.edges()]
    graph = DiGraph(
        len(id_of), edges, name=name or str(nx_graph.name or "")
    )
    return graph, id_of


def to_networkx(graph: DiGraph) -> "nx.DiGraph":
    """Convert to a NetworkX DiGraph with integer nodes ``0..n-1``."""
    nx_graph = nx.DiGraph(name=graph.name)
    nx_graph.add_nodes_from(range(graph.num_vertices))
    nx_graph.add_edges_from(graph.edges())
    return nx_graph
