"""Graph generators: synthetic DAG families and adversarial cases.

These generators produce every graph class the evaluation needs:

* :func:`random_dag` — uniform random DAG with a target edge count; the
  paper's synthetic suite (Table 2) is exactly this family, with average
  degree 1 (``nM`` graphs), 5 and 10 (``nM-5``, ``nM-10``).
* :func:`tree_like_dag` — |E| ≈ |V| forest-with-shortcuts, the shape of
  the Uniprot RDF graphs (huge root counts, 4 leaves in the paper).
* :func:`citation_dag` — preferential-attachment citations, dense and
  shallow like Arxiv / Citeseer / Cit-Patents.
* :func:`ontology_dag` — few roots, many leaves, sparse and deep like GO.
* :func:`layered_dag` — explicit depth control.
* :func:`crown_graph` — the S⁰ₖ crown of the paper's Figure 4, the classic
  adversarial case whose 2-D dominance drawing *must* contain falsely
  implied paths.
* :func:`random_digraph` — cyclic digraph for SCC/condensation tests.

Every generator takes an explicit ``seed`` and is deterministic given it.
"""

from __future__ import annotations

from random import Random

from repro.exceptions import GraphError
from repro.graph.digraph import DiGraph

__all__ = [
    "random_dag",
    "tree_like_dag",
    "citation_dag",
    "fan_in_dag",
    "ontology_dag",
    "layered_dag",
    "crown_graph",
    "random_digraph",
    "path_graph",
    "diamond_graph",
    "complete_dag",
]


def _unique_dag_edges(
    n: int, m: int, rng: Random, max_span: int | None = None
) -> list[tuple[int, int]]:
    """``m`` distinct edges ``(u, v)`` with ``u < v`` under a hidden order.

    ``max_span`` caps ``v - u``, which controls depth/locality.  Rejection
    sampling stays O(m) in expectation while m is far below n², which all
    callers guarantee.
    """
    if n < 2 and m > 0:
        raise GraphError(f"cannot place {m} edges on {n} vertices")
    possible = n * (n - 1) // 2
    if m > possible:
        raise GraphError(f"{m} edges exceed the {possible} possible DAG edges")
    edges: set[tuple[int, int]] = set()
    while len(edges) < m:
        u = rng.randrange(n - 1)
        if max_span is None:
            v = rng.randrange(u + 1, n)
        else:
            v = rng.randrange(u + 1, min(n, u + 1 + max_span))
        edges.add((u, v))
    return list(edges)


def random_dag(
    num_vertices: int,
    num_edges: int | None = None,
    avg_degree: float = 1.0,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Uniform random DAG: each edge respects a hidden total vertex order.

    This matches the paper's synthetic generator: ``num_vertices`` vertices
    and ``avg_degree × num_vertices`` edges drawn uniformly among pairs
    ordered by vertex id (every labelled DAG on a fixed topological order
    is equally likely).  Pass ``num_edges`` to fix the count exactly.
    """
    rng = Random(seed)
    m = num_edges if num_edges is not None else round(avg_degree * num_vertices)
    edges = _unique_dag_edges(num_vertices, m, rng)
    return DiGraph(num_vertices, edges, name=name or f"random-dag-{num_vertices}")


def tree_like_dag(
    num_vertices: int,
    extra_edge_fraction: float = 0.0,
    max_children: int = 256,
    hub_bias: float = 0.0,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """A shallow random recursive tree plus shortcut edges (|E| ≈ |V|).

    Models the Uniprot RDF graphs: an enormous number of roots feeding a
    tiny set of sinks is obtained downstream by *reversing*; here we build
    the natural orientation — every non-root vertex has exactly one tree
    parent, so |E| = |V| - 1, plus ``extra_edge_fraction × |V|``
    shortcuts.  Uniform parent choice keeps the expected depth O(log n),
    matching the paper's single-digit effective diameters at scale.

    ``hub_bias`` is the probability of attaching to an *already internal*
    vertex instead of a uniform one; since only uniform attachments mint
    new internal vertices, the leaf fraction converges to ``hub_bias`` —
    the knob behind the Uniprot rows' 85-90% root fractions (after
    reversal, the tree's leaves are the roots).
    """
    rng = Random(seed)
    n = num_vertices
    edges: list[tuple[int, int]] = []
    child_count = [0] * n
    internals: list[int] = []
    for v in range(1, n):
        parent = 0
        for _ in range(8):
            if internals and rng.random() < hub_bias:
                parent = internals[rng.randrange(len(internals))]
            else:
                parent = rng.randrange(v)
            if child_count[parent] < max_children:
                break
        if child_count[parent] == 0:
            internals.append(parent)
        child_count[parent] += 1
        edges.append((parent, v))
    extra = round(extra_edge_fraction * n)
    existing = set(edges)
    while extra > 0:
        u = rng.randrange(n - 1)
        v = rng.randrange(u + 1, n)
        if (u, v) not in existing:
            existing.add((u, v))
            edges.append((u, v))
            extra -= 1
    return DiGraph(n, edges, name=name or f"tree-like-{n}")


def citation_dag(
    num_vertices: int,
    avg_out_degree: float = 6.0,
    leaf_fraction: float = 0.1,
    triadic_probability: float = 0.35,
    preferential_probability: float = 0.7,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Preferential-attachment citation network (dense, shallow, clustered).

    Vertices arrive in id order; each new paper cites earlier papers,
    preferring already-cited ones (degree-proportional sampling via the
    repeated-endpoint trick), which produces the heavy-tailed in-degrees
    of Arxiv / Citeseer / Cit-Patents.  Two knobs match the Table 1 shape
    columns:

    * ``leaf_fraction`` — probability a paper cites nothing inside the
      dataset (a *leaf* of the DAG; real citation snapshots have many);
    * ``triadic_probability`` — probability each citation is followed by
      a reference-copying citation to one of the target's own references,
      the mechanism behind citation networks' high clustering;
    * ``preferential_probability`` — probability a citation target is
      drawn from the degree-weighted pool rather than uniformly; lower
      values spread citations out, raising the never-cited (root)
      fraction toward the uniform-Poisson limit.
    """
    rng = Random(seed)
    n = num_vertices
    edges: list[tuple[int, int]] = []
    cited_by: list[list[int]] = [[] for _ in range(n)]  # v -> its targets
    # Pool of endpoints; sampling from it approximates preferential
    # attachment (each citation adds the cited id once more).
    pool: list[int] = [0]
    for v in range(1, n):
        pool.append(v)
        if rng.random() < leaf_fraction:
            continue  # cites nothing in-set: a leaf
        cites = min(v, max(1, round(rng.expovariate(1.0 / avg_out_degree))))
        targets: set[int] = set()
        for _ in range(cites * 3):
            if len(targets) >= cites:
                break
            candidate = (
                pool[rng.randrange(len(pool))]
                if rng.random() < preferential_probability
                else rng.randrange(v)
            )
            if candidate != v:
                targets.add(candidate)
            # Reference copying: also cite a reference of the reference.
            if (
                candidate != v
                and cited_by[candidate]
                and rng.random() < triadic_probability
            ):
                copied = cited_by[candidate][
                    rng.randrange(len(cited_by[candidate]))
                ]
                targets.add(copied)
        for t in targets:
            edges.append((v, t))  # newer cites older: v -> t with t < v
            pool.append(t)
        cited_by[v] = list(targets)
    return DiGraph(n, edges, name=name or f"citation-{n}")


def fan_in_dag(
    num_vertices: int,
    root_fraction: float = 0.75,
    avg_degree: float = 6.0,
    core_avg_degree: float = 2.0,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """A mostly-roots DAG: a thin core fed by a large fringe of sources.

    Models knowledge-base graphs like Yago (Table 1: 78% of the vertices
    are roots): the first ``(1 - root_fraction) · n`` vertices form a
    random DAG *core*; every remaining vertex is a root pointing
    ``avg_degree``-ish edges into the core.
    """
    rng = Random(seed)
    n = num_vertices
    core_size = max(2, round((1.0 - root_fraction) * n))
    core_edges = min(
        round(core_avg_degree * core_size),
        core_size * (core_size - 1) // 2,  # tiny cores: all pairs
    )
    edges = _unique_dag_edges(core_size, core_edges, rng)
    for v in range(core_size, n):
        fanout = max(1, round(rng.expovariate(1.0 / avg_degree)))
        targets = {rng.randrange(core_size) for _ in range(fanout)}
        edges.extend((v, t) for t in targets)
    # Root ids above the core point "backwards" in id space, which is
    # still acyclic: core edges go forward within the core, fringe edges
    # go fringe -> core and nothing points at the fringe.
    return DiGraph(n, edges, name=name or f"fan-in-{n}")


def ontology_dag(
    num_vertices: int,
    num_roots: int = 1,
    avg_parents: float = 1.5,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """GO-style ontology: few roots, is-a multi-parents, many leaves.

    Edges run root→leaf: each non-root term attaches to ~``avg_parents``
    earlier terms drawn near the front of the id range, giving the sparse,
    deep, few-roots/many-leaves shape of the Gene Ontology row in Table 1.
    """
    rng = Random(seed)
    n = num_vertices
    num_roots = max(1, min(num_roots, n))
    edges: list[tuple[int, int]] = []
    for v in range(num_roots, n):
        parents = max(1, round(rng.expovariate(1.0 / avg_parents)))
        chosen: set[int] = set()
        for _ in range(parents):
            # Bias toward smaller ids (upper ontology) with a square law.
            parent = int((rng.random() ** 2) * v)
            chosen.add(min(parent, v - 1))
        edges.extend((p, v) for p in chosen)
    return DiGraph(n, edges, name=name or f"ontology-{n}")


def layered_dag(
    num_layers: int,
    layer_width: int,
    edge_probability: float = 0.3,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """DAG of ``num_layers`` layers; edges go only to the next layer.

    Gives precise control over depth (= ``num_layers - 1``), which the
    level-filter tests and the depth-sweep ablation rely on.
    """
    rng = Random(seed)
    n = num_layers * layer_width
    edges: list[tuple[int, int]] = []
    for layer in range(num_layers - 1):
        base = layer * layer_width
        next_base = base + layer_width
        for i in range(layer_width):
            for j in range(layer_width):
                if rng.random() < edge_probability:
                    edges.append((base + i, next_base + j))
    return DiGraph(n, edges, name=name or f"layered-{num_layers}x{layer_width}")


def crown_graph(k: int, name: str = "") -> DiGraph:
    """The crown S⁰ₖ: bipartite ``a_i -> b_j`` for all ``i ≠ j``.

    The paper's Figure 4 example: for k ≥ 3 *no* 2-dimensional dominance
    drawing is free of falsely implied paths, so FELINE's negative cut
    cannot be complete on it — the canonical worst case for the index.
    Vertices ``0..k-1`` are the sources, ``k..2k-1`` the sinks.
    """
    if k < 1:
        raise GraphError(f"crown graph needs k >= 1, got {k}")
    edges = [
        (i, k + j) for i in range(k) for j in range(k) if i != j
    ]
    return DiGraph(2 * k, edges, name=name or f"crown-{k}")


def random_digraph(
    num_vertices: int,
    num_edges: int,
    seed: int = 0,
    name: str = "",
) -> DiGraph:
    """Uniform random *cyclic* digraph (distinct directed pairs, no loops).

    The input for SCC/condensation tests — everything downstream of
    :func:`repro.graph.scc.condense` only ever sees DAGs.
    """
    rng = Random(seed)
    n = num_vertices
    possible = n * (n - 1)
    if num_edges > possible:
        raise GraphError(f"{num_edges} edges exceed the {possible} possible")
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v:
            edges.add((u, v))
    return DiGraph(n, list(edges), name=name or f"random-digraph-{n}")


def path_graph(num_vertices: int, name: str = "") -> DiGraph:
    """The directed path 0 -> 1 -> ... -> n-1."""
    edges = [(v, v + 1) for v in range(num_vertices - 1)]
    return DiGraph(num_vertices, edges, name=name or f"path-{num_vertices}")


def diamond_graph(name: str = "") -> DiGraph:
    """The 4-vertex diamond 0 -> {1, 2} -> 3 (smallest non-tree DAG)."""
    return DiGraph(4, [(0, 1), (0, 2), (1, 3), (2, 3)], name=name or "diamond")


def complete_dag(num_vertices: int, name: str = "") -> DiGraph:
    """All edges ``(u, v)`` with ``u < v`` — maximal density, worst TC."""
    edges = [
        (u, v) for u in range(num_vertices) for v in range(u + 1, num_vertices)
    ]
    return DiGraph(num_vertices, edges, name=name or f"complete-dag-{num_vertices}")
