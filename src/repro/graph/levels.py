"""Vertex levels (depths) — the *level filter* substrate.

The level of a vertex (paper §3.4.2, after Bender et al.) is its longest
distance from any root: ``l_v = 0`` if ``v`` has no predecessors, otherwise
``l_v = 1 + max(l_u for u -> v)``.  Levels induce the topological order, so
``r(u, v) ∧ u ≠ v ⇒ l_u < l_v`` — a second constant-time negative cut used
by FELINE, GRAIL and FERRARI.
"""

from __future__ import annotations

from array import array

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph

__all__ = ["compute_levels", "level_histogram"]


def compute_levels(graph: DiGraph) -> array:
    """Longest-path-from-root depth of every vertex, O(|V| + |E|).

    One Kahn sweep: a vertex's level is final when its last predecessor has
    been peeled.  Raises :class:`NotADAGError` on cyclic input.
    """
    n = graph.num_vertices
    in_indptr = graph.in_indptr
    indegree = array("l", [in_indptr[v + 1] - in_indptr[v] for v in range(n)])
    levels = array("l", [0] * n)
    worklist = [v for v in range(n) if indegree[v] == 0]
    indptr, indices = graph.out_indptr, graph.out_indices
    processed = 0
    while worklist:
        u = worklist.pop()
        processed += 1
        next_level = levels[u] + 1
        for k in range(indptr[u], indptr[u + 1]):
            w = indices[k]
            if next_level > levels[w]:
                levels[w] = next_level
            indegree[w] -= 1
            if indegree[w] == 0:
                worklist.append(w)
    if processed != n:
        stuck = next(v for v in range(n) if indegree[v] > 0)
        raise NotADAGError(
            f"graph has a cycle (vertex {stuck} never became a root)",
            cycle_hint=stuck,
        )
    return levels


def level_histogram(levels: array) -> list[int]:
    """Count of vertices per level; ``histogram[l]`` vertices at level l."""
    if not levels:
        return []
    histogram = [0] * (max(levels) + 1)
    for level in levels:
        histogram[level] += 1
    return histogram
