"""Dynamic graphs: edge insertion with online topological-order repair.

The paper's conclusion announces work on an *incremental* FELINE.  The
missing substrate is a topological ordering that survives edge insertions
without a full recomputation; this module provides it.

:class:`DynamicDiGraph` is an adjacency-list digraph supporting
``add_edge``.  :class:`DynamicTopologicalOrder` maintains a total order
under insertions using the Pearce–Kelly algorithm (*A Dynamic Topological
Sort Algorithm for Directed Acyclic Graphs*, JEA 2007): inserting ``(u,
v)`` with ``rank(v) < rank(u)`` discovers the *affected region* — the
vertices between ``v`` and ``u`` in the current order that lie on paths
from ``v`` or into ``u`` — and permutes only those, O(affected region)
per insertion instead of O(|V| + |E|).
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable

from repro.exceptions import GraphError, NotADAGError

__all__ = ["DynamicDiGraph", "DynamicTopologicalOrder"]


class DynamicDiGraph:
    """A mutable digraph: adjacency lists plus O(1) edge appends.

    The static CSR :class:`~repro.graph.digraph.DiGraph` is the right
    structure for read-mostly indexing; this class serves the incremental
    index, whose graph grows while it serves queries.
    """

    def __init__(self, num_vertices: int = 0) -> None:
        if num_vertices < 0:
            raise GraphError(f"num_vertices must be >= 0, got {num_vertices}")
        self._succ: list[list[int]] = [[] for _ in range(num_vertices)]
        self._pred: list[list[int]] = [[] for _ in range(num_vertices)]
        self._num_edges = 0

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int]]
    ) -> "DynamicDiGraph":
        graph = cls(num_vertices)
        for u, v in edges:
            graph.add_edge_unchecked(u, v)
        return graph

    @property
    def num_vertices(self) -> int:
        return len(self._succ)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def add_vertex(self) -> int:
        """Append a fresh vertex and return its id."""
        self._succ.append([])
        self._pred.append([])
        return len(self._succ) - 1

    def add_edge_unchecked(self, u: int, v: int) -> None:
        """Record edge ``(u, v)``; the caller guarantees acyclicity."""
        n = len(self._succ)
        if not (0 <= u < n and 0 <= v < n):
            raise GraphError(f"edge ({u}, {v}) out of range [0, {n})")
        self._succ[u].append(v)
        self._pred[v].append(u)
        self._num_edges += 1

    def remove_edge(self, u: int, v: int) -> None:
        """Remove one occurrence of edge ``(u, v)``."""
        try:
            self._succ[u].remove(v)
            self._pred[v].remove(u)
        except ValueError:
            raise GraphError(f"edge ({u}, {v}) not present") from None
        self._num_edges -= 1

    def successors(self, u: int) -> list[int]:
        return self._succ[u]

    def predecessors(self, u: int) -> list[int]:
        return self._pred[u]

    def edges(self) -> Iterable[tuple[int, int]]:
        for u, succ in enumerate(self._succ):
            for v in succ:
                yield u, v


class DynamicTopologicalOrder:
    """Pearce–Kelly online topological order over a :class:`DynamicDiGraph`.

    ``ranks[v]`` is ``v``'s current position; :meth:`insert_edge` adds
    the edge to the graph and repairs the order.  Inserting an edge that
    would close a cycle raises :class:`NotADAGError` and leaves both the
    graph and the order untouched.

    ``priority`` optionally biases the repair permutation: within the
    affected region, ties are resolved to keep vertices with a smaller
    priority value earlier.  The incremental FELINE uses the X ranks as
    the Y order's priority, preserving the max-X-rank flavour of the
    Kornaropoulos heuristic as edges arrive.
    """

    def __init__(
        self,
        graph: DynamicDiGraph,
        initial_order: Iterable[int] | None = None,
        priority: Iterable[int] | None = None,
    ) -> None:
        self.graph = graph
        n = graph.num_vertices
        order = list(initial_order) if initial_order is not None else list(range(n))
        if sorted(order) != list(range(n)):
            raise GraphError("initial_order must be a permutation of 0..n-1")
        self.ranks = array("l", [0] * n)
        for rank, v in enumerate(order):
            self.ranks[v] = rank
        self._vertex_at = array("l", order)
        self._priority = (
            array("l", priority) if priority is not None else None
        )
        for u, v in graph.edges():
            if self.ranks[u] >= self.ranks[v]:
                raise GraphError(
                    f"initial_order violates existing edge ({u}, {v})"
                )

    def append_vertex(self) -> int:
        """Track a vertex newly appended to the graph (gets the last rank)."""
        v = self.graph.num_vertices - 1
        if v != len(self.ranks):
            raise GraphError(
                "append_vertex must follow graph.add_vertex exactly once"
            )
        self.ranks.append(v)
        self._vertex_at.append(v)
        if self._priority is not None:
            self._priority.append(v)
        return v

    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> bool:
        """Insert ``(u, v)``, repairing the order; returns whether the
        order actually changed.

        Raises :class:`NotADAGError` if the edge closes a cycle (the
        graph is left unmodified).
        """
        if u == v:
            raise NotADAGError(f"self loop ({u}, {u}) would create a cycle",
                               cycle_hint=u)
        lower, upper = self.ranks[v], self.ranks[u]
        if lower > upper:
            self.graph.add_edge_unchecked(u, v)
            return False  # order already consistent

        # Affected region: forward from v and backward from u, bounded by
        # the [lower, upper] rank window.
        delta_forward = self._discover_forward(v, upper)
        if u in delta_forward:
            raise NotADAGError(
                f"edge ({u}, {v}) would create a cycle", cycle_hint=u
            )
        delta_backward = self._discover_backward(u, lower)
        self._reorder(delta_forward, delta_backward)
        self.graph.add_edge_unchecked(u, v)
        return True

    def _discover_forward(self, start: int, upper: int) -> set[int]:
        """Vertices reachable from ``start`` with rank <= upper."""
        ranks = self.ranks
        seen = {start}
        stack = [start]
        while stack:
            w = stack.pop()
            for x in self.graph.successors(w):
                if x not in seen and ranks[x] <= upper:
                    seen.add(x)
                    stack.append(x)
        return seen

    def _discover_backward(self, start: int, lower: int) -> set[int]:
        """Vertices reaching ``start`` with rank >= lower."""
        ranks = self.ranks
        seen = {start}
        stack = [start]
        while stack:
            w = stack.pop()
            for x in self.graph.predecessors(w):
                if x not in seen and ranks[x] >= lower:
                    seen.add(x)
                    stack.append(x)
        return seen

    def _reorder(self, delta_forward: set[int], delta_backward: set[int]) -> None:
        """Permute the affected region: backward set first, forward after.

        Pearce–Kelly: pool the affected vertices' rank slots, then refill
        them with the backward set (sorted by current rank) followed by
        the forward set — every constraint among affected vertices and
        with the untouched remainder is preserved.
        """
        ranks = self.ranks
        priority = self._priority

        def sort_key(vertex: int) -> tuple[int, ...]:
            if priority is not None:
                return (ranks[vertex], priority[vertex])
            return (ranks[vertex],)

        backward = sorted(delta_backward, key=sort_key)
        forward = sorted(delta_forward, key=sort_key)
        affected = backward + forward
        slots = sorted(ranks[w] for w in affected)
        vertex_at = self._vertex_at
        for slot, w in zip(slots, affected):
            ranks[w] = slot
            vertex_at[slot] = w

    # ------------------------------------------------------------------
    def order(self) -> list[int]:
        """The current order as a list (``order[rank] = vertex``)."""
        return list(self._vertex_at)

    def is_consistent(self) -> bool:
        """Whether every edge goes rank-forward (test hook)."""
        ranks = self.ranks
        return all(ranks[u] < ranks[v] for u, v in self.graph.edges())
