"""Nuutila's INTERVAL — compressed transitive closure as interval lists.

The method (Nuutila 1995; engineered with PWAH compression by van Schaik &
de Moor, SIGMOD 2011) materialises every vertex's full successor set, but
numbers vertices so contiguous id segments compress into intervals: the set
``{1,2,3,4,6,7,8,9,11,12}`` becomes ``[1,4], [6,9], [11,12]`` — the paper's
own example.  Queries binary-search the target id in the source's interval
list, O(log I); the index is *self-sufficient* (the graph can be dropped).

The vertex numbering is a reverse DFS post-order, which makes each
vertex's own subtree a single contiguous run — the best case for interval
compression.  Sets are built in one reverse-topological sweep, unioning
successor interval lists.

Cost: the closure is still materialised, so construction is
O(|V| · |E|)-ish in time and can be **quadratic in space** — exactly why
the paper reports INTERVAL failing on the large synthetic graphs.  A
``memory_budget_bytes`` cap reproduces that failure mode deterministically:
construction raises :class:`IndexBuildError` (reason ``"memory-budget"``)
once the interval storage outgrows the budget.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right

import numpy as np

from repro.baselines import pwah
from repro.baselines.base import ReachabilityIndex, register_index
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.toposort import dfs_post_order_ranks, kahn_order
from repro.perf.cut_table import (
    CutTable,
    segment_keys,
    segmented_arrays,
    view_i64,
)

__all__ = ["NuutilaIntervalIndex", "IntervalCutTable", "union_intervals"]


class IntervalCutTable(CutTable):
    """INTERVAL probes, batched: one segmented bisect decides every pair.

    Built from the interval arrays regardless of ``query_mode`` — the
    PWAH stream encodes the very same sets, so answers (and the
    positive/negative counter split) are identical in both modes.  The
    closure is materialized, so no pair ever needs a search.
    """

    def __init__(self, index: "NuutilaIntervalIndex") -> None:
        n = index.graph.num_vertices
        self.n = n
        self.ids = view_i64(index.ids)
        los_flat, indptr = segmented_arrays(index.lists_lo)
        his_flat, _ = segmented_arrays(index.lists_hi)
        self.keys = segment_keys(los_flat, indptr, n)
        self.indptr = indptr
        self.his = his_flat

    def classify(self, sources, targets):
        target_ids = self.ids[targets]
        probe = np.searchsorted(
            self.keys, sources * np.int64(self.n) + target_ids, side="right"
        ) - 1
        valid = probe >= self.indptr[sources]
        positive = valid & (
            self.his[np.maximum(probe, 0)] >= target_ids
        )
        return positive, ~positive


def union_intervals(
    lists: list[list[tuple[int, int]]],
) -> list[tuple[int, int]]:
    """Union of sorted disjoint interval lists, coalescing adjacency."""
    items = sorted(interval for lst in lists for interval in lst)
    merged: list[tuple[int, int]] = []
    for lo, hi in items:
        if merged and lo <= merged[-1][1] + 1:
            if hi > merged[-1][1]:
                merged[-1] = (merged[-1][0], hi)
        else:
            merged.append((lo, hi))
    return merged


class NuutilaIntervalIndex(ReachabilityIndex):
    """INTERVAL: per-vertex interval lists over a closure-friendly numbering.

    Parameters
    ----------
    graph:
        The input DAG.
    memory_budget_bytes:
        Optional cap on interval storage; exceeding it aborts construction
        with reason ``"memory-budget"`` (the paper's large-graph failures).
    compress_with_pwah:
        Additionally encode each list with the PWAH scheme.  The PWAH
        stream is what :meth:`index_size_bytes` reports, matching the
        SIGMOD'11 system where PWAH is the storage format.
    query_mode:
        ``"intervals"`` (default) answers by O(log I) binary search on
        the interval ends; ``"pwah"`` probes the compressed stream
        directly (O(#words) scan with O(1) fill skips) — the trade
        the SIGMOD'11 system makes to keep only the compressed form
        resident.  Requires ``compress_with_pwah=True``.
    """

    method_name = "interval"

    def __init__(
        self,
        graph: DiGraph,
        memory_budget_bytes: int | None = None,
        compress_with_pwah: bool = True,
        query_mode: str = "intervals",
    ) -> None:
        super().__init__(graph)
        if query_mode not in ("intervals", "pwah"):
            raise ValueError(
                f"query_mode must be 'intervals' or 'pwah', got {query_mode!r}"
            )
        if query_mode == "pwah" and not compress_with_pwah:
            raise ValueError("query_mode='pwah' needs compress_with_pwah=True")
        self._memory_budget = memory_budget_bytes
        self._compress_with_pwah = compress_with_pwah
        self._query_mode = query_mode
        self.ids: array | None = None
        self.lists_lo: list[array] = []
        self.lists_hi: list[array] = []
        self.pwah_words: list[list[int]] | None = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        post = dfs_post_order_ranks(graph)
        self.ids = post
        order = kahn_order(graph)
        indptr, indices = graph.out_indptr, graph.out_indices

        budget = self._memory_budget
        interval_storage = 0
        lists: list[list[tuple[int, int]] | None] = [None] * n
        for u in reversed(order):
            child_lists = [
                lists[indices[k]] for k in range(indptr[u], indptr[u + 1])
            ]
            merged = union_intervals(child_lists + [[(post[u], post[u])]])
            lists[u] = merged
            interval_storage += 16 * len(merged)  # two 8-byte ends each
            if budget is not None and interval_storage > budget:
                raise IndexBuildError(
                    f"INTERVAL storage exceeded budget: {interval_storage} "
                    f"> {budget} bytes at vertex {u}",
                    reason="memory-budget",
                )
        self.lists_lo = [array("l", [lo for lo, _ in lst]) for lst in lists]
        self.lists_hi = [array("l", [hi for _, hi in lst]) for lst in lists]
        if self._compress_with_pwah:
            self.pwah_words = [
                pwah.compress_intervals(lst, universe=n) for lst in lists
            ]

    def index_size_bytes(self) -> int:
        if self.ids is None:
            return 0
        if self.pwah_words is not None:
            payload = sum(
                pwah.compressed_size_bytes(words) for words in self.pwah_words
            )
        else:
            payload = sum(
                los.itemsize * len(los) * 2 for los in self.lists_lo
            )
        return payload + self.ids.itemsize * len(self.ids)

    def num_intervals(self) -> int:
        """Total interval count ``I`` across all vertices."""
        return sum(len(los) for los in self.lists_lo)

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        target = self.ids[v]
        if self._query_mode == "pwah":
            reachable = pwah.contains(self.pwah_words[u], target)
        else:
            los = self.lists_lo[u]
            pos = bisect_right(los, target) - 1
            reachable = pos >= 0 and self.lists_hi[u][pos] >= target
        if reachable:
            stats.positive_cuts += 1
            return True
        stats.negative_cuts += 1
        return False

    def _make_cut_table(self) -> IntervalCutTable:
        return IntervalCutTable(self)


register_index(NuutilaIntervalIndex)
