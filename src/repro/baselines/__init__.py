"""Baseline reachability indexes the paper evaluates FELINE against.

* :class:`~repro.baselines.online_search.DFSIndex`,
  :class:`~repro.baselines.online_search.BFSIndex`,
  :class:`~repro.baselines.online_search.BidirectionalBFSIndex` — the
  un-indexed end of the spectrum;
* :class:`~repro.baselines.transitive_closure.TransitiveClosureIndex` —
  the fully materialised end;
* :class:`~repro.baselines.grail.GrailIndex` — GRAIL (Yildirim et al.);
* :class:`~repro.baselines.ferrari.FerrariIndex` — FERRARI (Seufert et al.);
* :class:`~repro.baselines.interval.NuutilaIntervalIndex` — Nuutila's
  INTERVAL with PWAH-compressed interval lists;
* :class:`~repro.baselines.tflabel.TFLabelIndex` — TF-Label (Cheng et al.).

All of them implement :class:`~repro.baselines.base.ReachabilityIndex` and
are registered in the method factory (:func:`~repro.baselines.base.create_index`).
"""

from repro.baselines.base import (
    ReachabilityIndex,
    available_methods,
    create_index,
    register_index,
)
from repro.baselines.chain_cover import ChainCoverIndex
from repro.baselines.dual_labeling import DualLabelingIndex
from repro.baselines.ferrari import FerrariIndex
from repro.baselines.grail import GrailIndex
from repro.baselines.interval import NuutilaIntervalIndex
from repro.baselines.online_search import (
    BFSIndex,
    BidirectionalBFSIndex,
    DFSIndex,
)
from repro.baselines.tflabel import TFLabelIndex
from repro.baselines.transitive_closure import TransitiveClosureIndex

__all__ = [
    "ReachabilityIndex",
    "available_methods",
    "create_index",
    "register_index",
    "DFSIndex",
    "BFSIndex",
    "BidirectionalBFSIndex",
    "TransitiveClosureIndex",
    "GrailIndex",
    "FerrariIndex",
    "ChainCoverIndex",
    "DualLabelingIndex",
    "NuutilaIntervalIndex",
    "TFLabelIndex",
]
