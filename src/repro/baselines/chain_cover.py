"""Chain-cover reachability index (Jagadish-style TC compression).

The paper's related-work taxonomy (§2) has a *Transitive Closure
Compression* class alongside INTERVAL: instead of interval lists, the
classic compression (Jagadish, TODS 1990 — the class's founding method)
decomposes the DAG into **chains** (vertex-disjoint paths) and stores,
per vertex and per chain, the *highest* chain position it can reach:

* a chain is totally ordered, so reaching position ``p`` of a chain
  means reaching every position ≥ ``p`` on it;
* the whole transitive closure compresses to a ``|V| × k`` matrix for
  ``k`` chains, and a query is one O(1) matrix probe:
  ``r(u, v) ⇔ reach[u][chain(v)] ≤ position(v)``.

Chain decomposition is by greedy path peeling over a topological order
(the optimal minimum chain cover needs a min-flow/bipartite matching;
greedy is the standard engineering choice and only affects ``k``, never
correctness).  Construction fills the matrix in one reverse-topological
sweep, O(|V|·k + |E|·k).

Like INTERVAL, the index is self-sufficient but can be large — ``k``
grows with graph width, so wide graphs reproduce the class's known
scaling wall; the optional ``memory_budget_bytes`` makes that failure
deterministic for the harness.
"""

from __future__ import annotations

from array import array

from repro.baselines.base import ReachabilityIndex, register_index
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.toposort import kahn_order
from repro.perf.cut_table import CutTable, view_i64

__all__ = ["ChainCoverIndex", "ChainCoverCutTable", "greedy_chain_decomposition"]


class ChainCoverCutTable(CutTable):
    """Batched chain-matrix probes: ``reach[u][chain(v)] ≤ position(v)``.

    The flat ``|V| × k`` matrix and the two per-vertex chain arrays are
    viewed once; a batch is a single fancy-indexed comparison.  The
    matrix is the compressed closure, so every pair is decided.
    """

    def __init__(self, index: "ChainCoverIndex") -> None:
        self.reach = view_i64(index._reach)
        self.chain_of = view_i64(index.chain_of)
        self.position_of = view_i64(index.position_of)
        self.num_chains = index.num_chains

    def classify(self, sources, targets):
        positive = (
            self.reach[sources * self.num_chains + self.chain_of[targets]]
            <= self.position_of[targets]
        )
        return positive, ~positive

_UNREACHABLE = 2**31 - 1  # sentinel: no position on this chain reachable


def greedy_chain_decomposition(graph: DiGraph) -> tuple[array, array, int]:
    """Peel vertex-disjoint chains off a DAG greedily.

    Walks the topological order; every still-unassigned vertex starts a
    new chain, which is extended along unassigned successors for as long
    as possible.  Returns ``(chain_of, position_of, num_chains)``.
    """
    order = kahn_order(graph)
    n = graph.num_vertices
    chain_of = array("l", [-1] * n)
    position_of = array("l", [0] * n)
    indptr, indices = graph.out_indptr, graph.out_indices
    num_chains = 0
    for start in order:
        if chain_of[start] != -1:
            continue
        chain = num_chains
        num_chains += 1
        vertex = start
        position = 0
        while True:
            chain_of[vertex] = chain
            position_of[vertex] = position
            position += 1
            extension = -1
            for k in range(indptr[vertex], indptr[vertex + 1]):
                child = indices[k]
                if chain_of[child] == -1:
                    extension = child
                    break
            if extension == -1:
                break
            vertex = extension
    return chain_of, position_of, num_chains


class ChainCoverIndex(ReachabilityIndex):
    """Compressed transitive closure over a greedy chain cover.

    Parameters
    ----------
    graph:
        The input DAG.
    memory_budget_bytes:
        Optional cap on the ``|V| × k`` matrix; exceeding it aborts
        construction with reason ``"memory-budget"``.
    """

    method_name = "chain-cover"

    def __init__(
        self,
        graph: DiGraph,
        memory_budget_bytes: int | None = None,
    ) -> None:
        super().__init__(graph)
        self._memory_budget = memory_budget_bytes
        self.chain_of: array | None = None
        self.position_of: array | None = None
        self.num_chains = 0
        # reach is a flat |V| x k matrix: reach[u*k + c] = min position
        # of chain c reachable from u (or the sentinel).
        self._reach: array | None = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        chain_of, position_of, k = greedy_chain_decomposition(graph)
        self.chain_of = chain_of
        self.position_of = position_of
        self.num_chains = k

        matrix_bytes = 4 * n * k
        if self._memory_budget is not None and matrix_bytes > self._memory_budget:
            raise IndexBuildError(
                f"chain-cover matrix needs {matrix_bytes} bytes "
                f"({n} vertices x {k} chains), budget is "
                f"{self._memory_budget}",
                reason="memory-budget",
            )

        reach = array("i", [_UNREACHABLE]) * (n * k)
        indptr, indices = graph.out_indptr, graph.out_indices
        order = kahn_order(graph)
        for u in reversed(order):
            base = u * k
            # Own position on the own chain.
            own = base + chain_of[u]
            if position_of[u] < reach[own]:
                reach[own] = position_of[u]
            # Merge successors' rows (component-wise minimum).
            for e in range(indptr[u], indptr[u + 1]):
                child_base = indices[e] * k
                for c in range(k):
                    value = reach[child_base + c]
                    if value < reach[base + c]:
                        reach[base + c] = value
        self._reach = reach

    def index_size_bytes(self) -> int:
        if self._reach is None:
            return 0
        return (
            self._reach.itemsize * len(self._reach)
            + self.chain_of.itemsize * len(self.chain_of)
            + self.position_of.itemsize * len(self.position_of)
        )

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        reachable = (
            self._reach[u * self.num_chains + self.chain_of[v]]
            <= self.position_of[v]
        )
        if reachable:
            stats.positive_cuts += 1
        else:
            stats.negative_cuts += 1
        return reachable

    def _make_cut_table(self) -> ChainCoverCutTable:
        return ChainCoverCutTable(self)


register_index(ChainCoverIndex)
