"""FERRARI — Flexible and Efficient Reachability Range Assignment.

Seufert, Anand, Bedathur & Weikum (ICDE 2013).  Like GRAIL, FERRARI labels
vertices with intervals over a post-order numbering, but instead of ``d``
independent single intervals it keeps, per vertex, a *set* of at most ``k``
intervals covering the ids of its reachable set:

* processing vertices in reverse topological order, a vertex's interval
  set is the coalesced union of its successors' sets plus its own id;
* when a set exceeds the size budget ``k``, adjacent intervals with the
  smallest gaps are merged into **approximate** intervals (a merge may
  cover ids that are *not* reachable), while untouched intervals stay
  **exact**;
* a query probes ``id(v)`` in ``S(u)`` by binary search: not covered ⇒
  *false* in O(log k); covered by an exact interval ⇒ *true* in O(log k);
  covered only approximately ⇒ DFS.

The DFS applies FERRARI's distinguishing prune, the **topological-rank
bound**: any vertex that can still reach ``v`` must finish after ``v`` in
the post-order DFS, so a branch whose post id is below ``id(v)`` is dead —
the one-dimensional version of FELINE's two-dimensional bound (Figure 7).
The shared level and positive-cut filters of §3.4 are applied as in the
paper's "fully optimized" configuration.
"""

from __future__ import annotations

from array import array
from bisect import bisect_right

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.graph.spanning import (
    IntervalLabels,
    extract_spanning_forest,
    minpost_intervals_tree,
)
from repro.graph.toposort import dfs_post_order_ranks, kahn_order
from repro.perf.cut_table import (
    CutTable,
    segment_keys,
    segmented_arrays,
    view_i64,
)

__all__ = [
    "FerrariIndex",
    "FerrariCutTable",
    "IntervalSet",
    "merge_interval_lists",
    "restrict_to_budget",
]


class FerrariCutTable(CutTable):
    """FERRARI cuts: batched interval-set probes via segmented bisect.

    All per-vertex interval sets concatenate into one flat array whose
    keys ``vertex * n + lo`` are globally sorted, so a whole batch of
    ``probe(id(v)) ∈ S(u)`` lookups is a single ``searchsorted``.
    Classification reproduces the scalar order: not covered ⇒ negative;
    exactly covered ⇒ positive (before the level filter, as in
    ``_query``); approximately covered ⇒ level filter then tree
    interval then search.
    """

    def __init__(self, index: "FerrariIndex") -> None:
        n = index.graph.num_vertices
        self.n = n
        self.ids = view_i64(index.ids)
        sets = index.interval_sets
        los_flat, indptr = segmented_arrays([s.los for s in sets])
        his_flat, _ = segmented_arrays([s.his for s in sets])
        self.keys = segment_keys(los_flat, indptr, n)
        self.indptr = indptr
        self.his = his_flat
        payload = b"".join(bytes(s.exact) for s in sets)
        self.exact = np.frombuffer(payload, dtype=np.uint8)
        self.levels = (
            view_i64(index.levels) if index.levels is not None else None
        )
        intervals = index.tree_intervals
        if intervals is not None:
            self.start = view_i64(intervals.start)
            self.post = view_i64(intervals.post)
        else:
            self.start = self.post = None

    def classify(self, sources, targets):
        target_ids = self.ids[targets]
        probe = np.searchsorted(
            self.keys, sources * np.int64(self.n) + target_ids, side="right"
        ) - 1
        valid = probe >= self.indptr[sources]
        safe = np.maximum(probe, 0)
        covered = valid & (self.his[safe] >= target_ids)
        exact = covered & (self.exact[safe] != 0)
        approximate = covered & ~exact
        if self.levels is not None:
            level_fail = self.levels[sources] >= self.levels[targets]
        else:
            level_fail = np.zeros(len(sources), dtype=bool)
        negative = ~covered | (approximate & level_fail)
        positive = exact
        if self.start is not None:
            positive = positive | (
                approximate
                & ~level_fail
                & (self.start[sources] <= self.start[targets])
                & (self.post[targets] <= self.post[sources])
            )
        return positive, negative


class IntervalSet:
    """A sorted set of disjoint id intervals with exact/approximate flags.

    Stored as three parallel arrays (``los``, ``his``, ``exact``) so a
    million-vertex index stays compact.  ``probe(id)`` returns:

    * ``0`` — id not covered (reachability disproved),
    * ``1`` — id covered by an approximate interval (search needed),
    * ``2`` — id covered by an exact interval (reachability proved).
    """

    __slots__ = ("los", "his", "exact")

    def __init__(self, los: array, his: array, exact: bytearray) -> None:
        self.los = los
        self.his = his
        self.exact = exact

    def __len__(self) -> int:
        return len(self.los)

    def probe(self, vertex_id: int) -> int:
        """Coverage of ``vertex_id``: 0 = no, 1 = approximate, 2 = exact."""
        pos = bisect_right(self.los, vertex_id) - 1
        if pos < 0 or self.his[pos] < vertex_id:
            return 0
        return 2 if self.exact[pos] else 1

    def intervals(self) -> list[tuple[int, int, bool]]:
        """The intervals as ``(lo, hi, exact)`` tuples (for tests/reports)."""
        return [
            (self.los[i], self.his[i], bool(self.exact[i]))
            for i in range(len(self.los))
        ]

    def memory_bytes(self) -> int:
        return (
            self.los.itemsize * len(self.los)
            + self.his.itemsize * len(self.his)
            + len(self.exact)
        )


def merge_interval_lists(
    lists: list[list[tuple[int, int, bool]]],
) -> list[tuple[int, int, bool]]:
    """Coalesce several sorted interval lists into one disjoint sorted list.

    Overlapping or adjacent (gap 0) intervals fuse; the fusion is exact
    only when *every* fused part is exact — merging an approximate
    interval can only widen over-approximation, never fix it.
    """
    items = sorted(interval for lst in lists for interval in lst)
    merged: list[tuple[int, int, bool]] = []
    for lo, hi, exact in items:
        if merged and lo <= merged[-1][1] + 1:
            prev_lo, prev_hi, prev_exact = merged[-1]
            if hi > prev_hi or exact != prev_exact:
                merged[-1] = (prev_lo, max(prev_hi, hi), prev_exact and exact)
        else:
            merged.append((lo, hi, exact))
    return merged


def restrict_to_budget(
    intervals: list[tuple[int, int, bool]], budget: int
) -> list[tuple[int, int, bool]]:
    """Shrink an interval list to at most ``budget`` entries.

    Repeatedly fuses the adjacent pair with the smallest id gap — the
    merge that over-approximates the least — marking the result
    approximate.  O(n²) in the worst case but n is only ever slightly
    above ``budget`` because callers merge then immediately restrict.
    """
    intervals = list(intervals)
    while len(intervals) > budget:
        best = min(
            range(len(intervals) - 1),
            key=lambda i: intervals[i + 1][0] - intervals[i][1],
        )
        lo = intervals[best][0]
        hi = intervals[best + 1][1]
        intervals[best : best + 2] = [(lo, hi, False)]
    return intervals


class FerrariIndex(ReachabilityIndex):
    """FERRARI with a per-vertex interval budget plus the §3.4 filters.

    Parameters
    ----------
    graph:
        The input DAG.
    max_intervals:
        The budget ``k`` (FERRARI's ``d``); the original paper evaluates
        k ∈ {2..5}-ish budgets — the cited complexity is O(|E|·k²)
        construction, O(log k) to O(|V|+|E|) query.
    use_level_filter, use_positive_cut:
        The shared filters, both on in the paper's configuration.
    """

    method_name = "ferrari"

    def __init__(
        self,
        graph: DiGraph,
        max_intervals: int = 3,
        use_level_filter: bool = True,
        use_positive_cut: bool = True,
    ) -> None:
        super().__init__(graph)
        if max_intervals < 1:
            raise ValueError(f"max_intervals must be >= 1, got {max_intervals}")
        self.max_intervals = max_intervals
        self._use_level_filter = use_level_filter
        self._use_positive_cut = use_positive_cut
        self.ids: array | None = None  # post-order id of each vertex
        self.interval_sets: list[IntervalSet] = []
        self.levels: array | None = None
        self.tree_intervals: IntervalLabels | None = None
        self._visited = array("l", [0] * graph.num_vertices)
        self._stamp = 0

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        ids = dfs_post_order_ranks(graph)
        self.ids = ids
        order = kahn_order(graph)
        indptr, indices = graph.out_indptr, graph.out_indices

        budget = self.max_intervals
        sets: list[IntervalSet | None] = [None] * n
        for u in reversed(order):
            own = (ids[u], ids[u], True)
            child_lists = [
                sets[indices[k]].intervals()
                for k in range(indptr[u], indptr[u + 1])
            ]
            merged = merge_interval_lists(child_lists + [[own]])
            if len(merged) > budget:
                merged = restrict_to_budget(merged, budget)
            los = array("l", [lo for lo, _, _ in merged])
            his = array("l", [hi for _, hi, _ in merged])
            exact = bytearray(1 if ex else 0 for _, _, ex in merged)
            sets[u] = IntervalSet(los, his, exact)
        self.interval_sets = sets

        if self._use_level_filter:
            self.levels = compute_levels(graph)
        if self._use_positive_cut:
            forest = extract_spanning_forest(graph)
            self.tree_intervals = minpost_intervals_tree(forest)

    def index_size_bytes(self) -> int:
        total = sum(s.memory_bytes() for s in self.interval_sets)
        if self.ids is not None:
            total += self.ids.itemsize * len(self.ids)
        if self.levels is not None:
            total += self.levels.itemsize * len(self.levels)
        if self.tree_intervals is not None:
            total += self.tree_intervals.memory_bytes()
        return total

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        target_id = self.ids[v]
        coverage = self.interval_sets[u].probe(target_id)
        if coverage == 0:
            stats.negative_cuts += 1
            return False
        if coverage == 2:
            stats.positive_cuts += 1
            return True
        levels = self.levels
        if levels is not None and levels[u] >= levels[v]:
            stats.negative_cuts += 1
            return False
        intervals = self.tree_intervals
        if intervals is not None and intervals.contains(u, v):
            stats.positive_cuts += 1
            return True
        stats.searches += 1
        return self._search(u, v, target_id)

    def _make_cut_table(self) -> FerrariCutTable:
        return FerrariCutTable(self)

    def _search_pair(self, u: int, v: int) -> bool:
        return self._search(u, v, self.ids[v])

    def _search(self, u: int, v: int, target_id: int) -> bool:
        """DFS pruned by interval probes and the topological-rank bound."""
        indptr = self.graph.out_indptr
        indices = self.graph.out_indices
        ids = self.ids
        interval_sets = self.interval_sets
        levels = self.levels
        level_v = levels[v] if levels is not None else 0
        stats = self.stats
        guard = self._guard

        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[u] = stamp
        stack = [u]
        while stack:
            w = stack.pop()
            stats.expanded += 1
            if guard is not None:
                guard.step()
            for k in range(indptr[w], indptr[w + 1]):
                child = indices[k]
                if child == v:
                    return True
                if visited[child] == stamp:
                    continue
                visited[child] = stamp
                # Topological-rank bound: anything that still reaches v
                # must finish after v in post-order.
                if ids[child] < target_id:
                    stats.pruned += 1
                    continue
                coverage = interval_sets[child].probe(target_id)
                if coverage == 0:
                    stats.pruned += 1
                    continue
                if coverage == 2:
                    return True
                if levels is not None and levels[child] >= level_v:
                    stats.pruned += 1
                    continue
                stack.append(child)
        return False


register_index(FerrariIndex)
