"""Fully materialised transitive closure — the left end of Figure 1.

O(1) queries, O(|V|²) bits of space: exactly the trade-off the paper calls
infeasible for very large graphs.  The benchmark harness includes it on
small graphs to exhibit that trade-off, and every test suite uses it as the
ground-truth oracle.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.exceptions import IndexBuildError
from repro.graph.transitive import transitive_closure_bitsets
from repro.perf.cut_table import CutTable, pack_bigints

__all__ = ["TransitiveClosureIndex", "ClosureCutTable"]


class ClosureCutTable(CutTable):
    """Batched closure bit tests over a packed byte matrix.

    The per-vertex Python-int bitsets pack into an ``(n, ceil(n/8))``
    ``uint8`` matrix, making a batch of queries one fancy-indexed shift.
    The scalar ``_query`` moves no cut counters for distinct pairs
    (the lookup *is* the answer), hence ``counts_cuts = False``.
    """

    counts_cuts = False

    def __init__(self, closure: list[int], num_vertices: int) -> None:
        self.matrix = pack_bigints(closure, num_vertices)

    def classify(self, sources, targets):
        positive = (
            (self.matrix[sources, targets >> 3] >> (targets & 7)) & 1
        ).astype(bool)
        return positive, ~positive


class TransitiveClosureIndex(ReachabilityIndex):
    """Per-vertex reachability bitsets; queries are one bit test.

    ``memory_budget_bytes`` emulates a machine memory cap: construction
    raises :class:`IndexBuildError` (reason ``"memory-budget"``) when the
    closure would exceed it — the harness uses this to reproduce, on small
    hardware, the paper's "INTERVAL failed on the largest graphs" rows.
    """

    method_name = "tc"

    def __init__(self, graph, memory_budget_bytes: int | None = None) -> None:
        super().__init__(graph)
        self._memory_budget = memory_budget_bytes
        self._closure: list[int] | None = None

    def _build(self) -> None:
        n = self.graph.num_vertices
        projected = n * n // 8  # one bit per ordered pair
        if self._memory_budget is not None and projected > self._memory_budget:
            raise IndexBuildError(
                f"transitive closure needs ~{projected} bytes, budget is "
                f"{self._memory_budget}",
                reason="memory-budget",
            )
        self._closure = transitive_closure_bitsets(self.graph)

    def index_size_bytes(self) -> int:
        if self._closure is None:
            return 0
        # sys.getsizeof of each int would count object headers; the paper
        # compares label payloads, so count the raw bit payload.
        return sum(max(1, bits.bit_length() + 7 >> 3) for bits in self._closure)

    def _query(self, u: int, v: int) -> bool:
        if u == v:
            self.stats.equal_cuts += 1
            return True
        return bool((self._closure[u] >> v) & 1)

    def _make_cut_table(self) -> ClosureCutTable:
        return ClosureCutTable(self._closure, self.graph.num_vertices)


register_index(TransitiveClosureIndex)
