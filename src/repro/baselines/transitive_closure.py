"""Fully materialised transitive closure — the left end of Figure 1.

O(1) queries, O(|V|²) bits of space: exactly the trade-off the paper calls
infeasible for very large graphs.  The benchmark harness includes it on
small graphs to exhibit that trade-off, and every test suite uses it as the
ground-truth oracle.
"""

from __future__ import annotations

from repro.baselines.base import ReachabilityIndex, register_index
from repro.exceptions import IndexBuildError
from repro.graph.transitive import transitive_closure_bitsets

__all__ = ["TransitiveClosureIndex"]


class TransitiveClosureIndex(ReachabilityIndex):
    """Per-vertex reachability bitsets; queries are one bit test.

    ``memory_budget_bytes`` emulates a machine memory cap: construction
    raises :class:`IndexBuildError` (reason ``"memory-budget"``) when the
    closure would exceed it — the harness uses this to reproduce, on small
    hardware, the paper's "INTERVAL failed on the largest graphs" rows.
    """

    method_name = "tc"

    def __init__(self, graph, memory_budget_bytes: int | None = None) -> None:
        super().__init__(graph)
        self._memory_budget = memory_budget_bytes
        self._closure: list[int] | None = None

    def _build(self) -> None:
        n = self.graph.num_vertices
        projected = n * n // 8  # one bit per ordered pair
        if self._memory_budget is not None and projected > self._memory_budget:
            raise IndexBuildError(
                f"transitive closure needs ~{projected} bytes, budget is "
                f"{self._memory_budget}",
                reason="memory-budget",
            )
        self._closure = transitive_closure_bitsets(self.graph)

    def index_size_bytes(self) -> int:
        if self._closure is None:
            return 0
        # sys.getsizeof of each int would count object headers; the paper
        # compares label payloads, so count the raw bit payload.
        return sum(max(1, bits.bit_length() + 7 >> 3) for bits in self._closure)

    def _query(self, u: int, v: int) -> bool:
        if u == v:
            self.stats.equal_cuts += 1
            return True
        return bool((self._closure[u] >> v) & 1)


register_index(TransitiveClosureIndex)
