"""Common interface and factory for every reachability index.

The benchmark harness sweeps methods uniformly: it instantiates each index
through :func:`create_index`, calls :meth:`ReachabilityIndex.build` once
(timed — the paper's "construction time"), then issues queries through
:meth:`ReachabilityIndex.query` (timed — "query time") and reads
:meth:`ReachabilityIndex.index_size_bytes` ("index size").

All indexes require a **DAG**; condensation of cyclic inputs is a
documented pre-processing step (:func:`repro.graph.scc.condense`), applied
automatically by the :class:`repro.Reachability` facade.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable
from dataclasses import dataclass

from repro.exceptions import DatasetError, IndexNotBuiltError
from repro.graph.digraph import DiGraph

__all__ = [
    "QueryStats",
    "ReachabilityIndex",
    "register_index",
    "create_index",
    "available_methods",
]


@dataclass
class QueryStats:
    """Counters describing how queries were answered.

    The paper's discussion section attributes the performance differences
    between online-search methods to *which* cut answers each query; these
    counters make that observable:

    * ``queries`` — total queries answered;
    * ``equal_cuts`` — answered by ``u == v``;
    * ``negative_cuts`` — answered negatively in O(1) (dominance, level or
      interval non-containment before any search);
    * ``positive_cuts`` — answered positively in O(1) by the positive-cut
      filter;
    * ``searches`` — queries that needed a graph search;
    * ``expanded`` — total vertices expanded across all searches;
    * ``pruned`` — search branches cut by the index during searches.
    """

    queries: int = 0
    equal_cuts: int = 0
    negative_cuts: int = 0
    positive_cuts: int = 0
    searches: int = 0
    expanded: int = 0
    pruned: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.equal_cuts = 0
        self.negative_cuts = 0
        self.positive_cuts = 0
        self.searches = 0
        self.expanded = 0
        self.pruned = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "queries": self.queries,
            "equal_cuts": self.equal_cuts,
            "negative_cuts": self.negative_cuts,
            "positive_cuts": self.positive_cuts,
            "searches": self.searches,
            "expanded": self.expanded,
            "pruned": self.pruned,
        }


class ReachabilityIndex(ABC):
    """Abstract reachability index over a DAG.

    Subclasses set the class attribute ``method_name`` (the factory key and
    report label) and implement :meth:`_build` and :meth:`_query`.

    The public :meth:`query` guards against use-before-build and maintains
    the ``stats.queries`` counter; subclasses update the finer-grained
    counters themselves.
    """

    method_name: str = "abstract"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self.stats = QueryStats()
        self._built = False

    # -- lifecycle ------------------------------------------------------
    def build(self) -> "ReachabilityIndex":
        """Construct the index; returns ``self`` for chaining."""
        self._build()
        self._built = True
        return self

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    # -- queries --------------------------------------------------------
    def query(self, u: int, v: int) -> bool:
        """Whether ``v`` is reachable from ``u`` (``r(u, v)``)."""
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before query()"
            )
        self.stats.queries += 1
        return self._query(u, v)

    def query_many(self, pairs: Iterable[tuple[int, int]]) -> list[bool]:
        """Answer a batch of queries (harness convenience)."""
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before query_many()"
            )
        query = self._query
        stats = self.stats
        answers = []
        for u, v in pairs:
            stats.queries += 1
            answers.append(query(u, v))
        return answers

    # -- introspection ----------------------------------------------------
    @abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate size of the *index structure itself*, in bytes.

        Excludes the input graph — the paper's "index size" figures
        compare only the generated labels, which is what makes GRAIL's
        d-interval index measurably larger than FELINE's two orderings.
        """

    # -- to be provided by subclasses -------------------------------------
    @abstractmethod
    def _build(self) -> None:
        """Construct the index structures."""

    @abstractmethod
    def _query(self, u: int, v: int) -> bool:
        """Answer one query; ``build`` is guaranteed to have run."""

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"<{type(self).__name__} {state} on {self.graph!r}>"


_REGISTRY: dict[str, Callable[..., ReachabilityIndex]] = {}


def register_index(
    factory: Callable[..., ReachabilityIndex], name: str | None = None
) -> Callable[..., ReachabilityIndex]:
    """Register an index class/factory under its ``method_name``.

    Usable as a plain call or a decorator:

    >>> @register_index
    ... class MyIndex(ReachabilityIndex):
    ...     method_name = "mine"
    ...     ...
    """
    key = name or getattr(factory, "method_name", None)
    if not key or key == "abstract":
        raise ValueError(f"{factory!r} has no usable method_name")
    _REGISTRY[key] = factory
    return factory


def create_index(method: str, graph: DiGraph, **params) -> ReachabilityIndex:
    """Instantiate a registered index by name (does not build it)."""
    try:
        factory = _REGISTRY[method]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise DatasetError(
            f"unknown reachability method {method!r}; known: {known}"
        ) from None
    return factory(graph, **params)


def available_methods() -> list[str]:
    """Names of all registered methods, sorted."""
    return sorted(_REGISTRY)
