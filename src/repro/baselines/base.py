"""Common interface and factory for every reachability index.

The benchmark harness sweeps methods uniformly: it instantiates each index
through :func:`create_index`, calls :meth:`ReachabilityIndex.build` once
(timed — the paper's "construction time"), then issues queries through
:meth:`ReachabilityIndex.query` (timed — "query time") and reads
:meth:`ReachabilityIndex.index_size_bytes` ("index size").

All indexes require a **DAG**; condensation of cyclic inputs is a
documented pre-processing step (:func:`repro.graph.scc.condense`), applied
automatically by the :class:`repro.Reachability` facade.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from time import perf_counter

from repro.exceptions import (
    IndexNotBuiltError,
    InvalidVertexError,
    QueryBudgetExceeded,
    ReproError,
    UnknownMethodError,
)
from repro.graph.digraph import DiGraph
from repro.obs.explain import BudgetReport, QueryExplanation
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, get_registry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import get_tracer
from repro.obs.timing import elapsed_ns, elapsed_s, now_ns
from repro.perf.engine import vectorized_query_many
from repro.perf.pool import SearchPool
from repro.resilience import chaos
from repro.resilience.budget import UNKNOWN, QueryBudget, bounded_fallback

# The ObserverLayer arrays eligible for shared-memory placement (see
# _shared_arrays / _adopt_shared_arrays).
_OBSERVER_ARRAYS = (
    "t1", "t2", "fmax", "bmin", "supports", "fwd_bits", "bwd_bits"
)

__all__ = [
    "QueryStats",
    "ReachabilityIndex",
    "register_index",
    "create_index",
    "available_methods",
]


@dataclass
class QueryStats:
    """Counters describing how queries were answered.

    The paper's discussion section attributes the performance differences
    between online-search methods to *which* cut answers each query; these
    counters make that observable:

    * ``queries`` — total queries answered;
    * ``equal_cuts`` — answered by ``u == v``;
    * ``observer_positive`` / ``observer_negative`` — answered by the
      attached :class:`~repro.perf.observers.ObserverLayer` before the
      family's own cuts ran (0 unless observers are attached);
    * ``negative_cuts`` — answered negatively in O(1) (dominance, level or
      interval non-containment before any search);
    * ``positive_cuts`` — answered positively in O(1) by the positive-cut
      filter;
    * ``searches`` — queries that needed a graph search;
    * ``expanded`` — total vertices expanded across all searches;
    * ``pruned`` — search branches cut by the index during searches.

    The resilience layer (``repro.resilience``) adds three degradation
    counters:

    * ``budget_exhausted`` — budgeted queries whose search hit its step
      or deadline limit;
    * ``fallbacks`` — exhausted queries answered by the bounded
      bidirectional-BFS fallback;
    * ``unknowns`` — queries that degraded all the way to ``UNKNOWN``.
    """

    queries: int = 0
    equal_cuts: int = 0
    observer_positive: int = 0
    observer_negative: int = 0
    negative_cuts: int = 0
    positive_cuts: int = 0
    searches: int = 0
    expanded: int = 0
    pruned: int = 0
    budget_exhausted: int = 0
    fallbacks: int = 0
    unknowns: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.equal_cuts = 0
        self.observer_positive = 0
        self.observer_negative = 0
        self.negative_cuts = 0
        self.positive_cuts = 0
        self.searches = 0
        self.expanded = 0
        self.pruned = 0
        self.budget_exhausted = 0
        self.fallbacks = 0
        self.unknowns = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "queries": self.queries,
            "equal_cuts": self.equal_cuts,
            "observer_positive": self.observer_positive,
            "observer_negative": self.observer_negative,
            "negative_cuts": self.negative_cuts,
            "positive_cuts": self.positive_cuts,
            "searches": self.searches,
            "expanded": self.expanded,
            "pruned": self.pruned,
            "budget_exhausted": self.budget_exhausted,
            "fallbacks": self.fallbacks,
            "unknowns": self.unknowns,
        }


class ReachabilityIndex(ABC):
    """Abstract reachability index over a DAG.

    Subclasses set the class attribute ``method_name`` (the factory key and
    report label) and implement :meth:`_build` and :meth:`_query`.

    The public :meth:`query` guards against use-before-build and maintains
    the ``stats.queries`` counter; subclasses update the finer-grained
    counters themselves.
    """

    method_name: str = "abstract"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self.stats = QueryStats()
        self._built = False
        # The active per-query budget guard (see repro.resilience.budget);
        # None on the unbudgeted hot path, so every _search loop pays a
        # single `is not None` check.
        self._guard = None
        # Observability handles, resolved at build() time.  They stay
        # None while the global registry is the no-op default, so the
        # query hot path pays a single `is None` check when metrics are
        # off (the zero-cost-when-disabled contract of repro.obs).
        self._latency_hist = None
        self._batch_hist = None
        self._batch_size_hist = None
        # The serving surfaces: a SlowQueryLog (attach_slow_log) and the
        # span tracer (resolved at build() when tracing is enabled).
        # _hot_obs folds all per-query observers into ONE handle so the
        # scalar hot path keeps its single `is None` guard check.
        self._slow_log = None
        self._query_tracer = None
        self._hot_obs = None
        # The batch query engine's handles: a CutTable materialized once
        # at build() time (None for indexes that declare no cuts — they
        # keep the scalar batch loop) and an optional SearchPool for
        # parallel survivor searches (see enable_search_pool()).
        self._cut_table = None
        self._search_pool = None
        # The optional ObserverLayer (attach_observers): O'Reach-style
        # supporting-vertex cuts consulted before this family's own
        # _query / cut table, on both the scalar and the batch path.
        self._observers = None
        # Native search-kernel state (repro.perf.kernels): _kernel is
        # the bound kernel object (None = the family's pure-Python
        # loops), _kernel_choice the requested backend (None = auto),
        # _kernel_backend the resolved name `kernel_backend` reports.
        self._kernel = None
        self._kernel_choice = None
        self._kernel_backend = "python"
        # Shared-memory index pages (repro.perf.shm): the owned arena
        # and the original arrays it displaced (restored on close).
        self._shared_pages = None
        self._shared_originals = None

    # -- lifecycle ------------------------------------------------------
    def build(self) -> "ReachabilityIndex":
        """Construct the index; returns ``self`` for chaining.

        With metrics enabled (:func:`repro.obs.enable_metrics` *before*
        this call) the build is timed into
        ``repro_index_build_seconds{method}``, a trace event records the
        graph dimensions, and per-query instruments are armed.  With
        tracing enabled (:func:`repro.obs.enable_tracing` *before* this
        call) the build runs inside an ``index.build`` span and per-query
        spans are armed.
        """
        chaos.fire("index.build.start", method=self.method_name)
        tracer = get_tracer()
        with tracer.span(
            "index.build",
            method=self.method_name,
            vertices=self.graph.num_vertices,
            edges=self.graph.num_edges,
        ):
            self._build_instrumented()
            self._materialize_cut_table()
            self._bind_kernel()
        if tracer.enabled:
            self._query_tracer = tracer
        self._refresh_hot_obs()
        self._built = True
        return self

    def _materialize_cut_table(self) -> None:
        """Build the batch engine's cut table (once, at build time).

        Timed into ``repro_cut_table_build_seconds{method}`` and traced
        as a ``cut_table.build`` child span of ``index.build``.  A
        ``None`` table (the default :meth:`_make_cut_table`) keeps the
        scalar batch loop and records nothing.
        """
        tracer = get_tracer()
        with tracer.span("cut_table.build", method=self.method_name):
            start = perf_counter()
            self._cut_table = self._make_cut_table()
            elapsed = perf_counter() - start
        if self._cut_table is None:
            return
        registry = get_registry()
        if registry.enabled:
            registry.histogram(
                "repro_cut_table_build_seconds",
                help="Wall time to materialize the batch-engine cut table.",
                method=self.method_name,
            ).observe(elapsed)

    def _build_instrumented(self) -> None:
        """Run :meth:`_build`, timed into the metrics registry when live."""
        registry = get_registry()
        if not registry.enabled:
            self._build()
            return

        method = self.method_name
        start = perf_counter()
        self._build()
        elapsed = perf_counter() - start
        registry.counter(
            "repro_index_builds_total",
            help="Number of index builds per method.",
            method=method,
        ).inc()
        registry.histogram(
            "repro_index_build_seconds",
            help="Index construction wall time.",
            method=method,
        ).observe(elapsed)
        registry.trace(
            "index.build",
            duration_s=elapsed,
            method=method,
            vertices=self.graph.num_vertices,
            edges=self.graph.num_edges,
        )
        self._latency_hist = registry.histogram(
            "repro_query_latency_seconds",
            help="Per-query latency of the scalar query path.",
            method=method,
        )
        self._batch_hist = registry.histogram(
            "repro_query_batch_seconds",
            help="Whole-batch latency of query_many.",
            method=method,
        )
        self._batch_size_hist = registry.histogram(
            "repro_query_batch_size",
            buckets=COUNT_BUCKETS,
            help="Number of pairs per query_many batch.",
            method=method,
        )
        self._install_observers(registry)

    def _refresh_hot_obs(self) -> None:
        """Fold the per-query observers into the single hot-path handle.

        ``_hot_obs`` is ``None`` when nothing per-query is armed — the
        scalar hot path then pays exactly one ``is None`` check — and a
        ``(latency_hist, slow_log, tracer)`` triple otherwise.
        """
        if (
            self._latency_hist is None
            and self._slow_log is None
            and self._query_tracer is None
        ):
            self._hot_obs = None
        else:
            self._hot_obs = (
                self._latency_hist, self._slow_log, self._query_tracer
            )

    def attach_slow_log(self, log: SlowQueryLog | None) -> SlowQueryLog | None:
        """Attach (or with ``None`` detach) a slow-query log; returns it.

        Once attached, every scalar query is timed and offered to the
        log, and :meth:`query_many` answers pair by pair through the
        scalar path so slow pairs inside batches are caught individually
        (trading the vectorized batch cut for per-pair visibility).
        """
        self._slow_log = log
        self._refresh_hot_obs()
        return log

    @property
    def slow_log(self) -> SlowQueryLog | None:
        """The attached slow-query log, if any."""
        return self._slow_log

    def _install_observers(self, registry: MetricsRegistry) -> None:
        """Hook: attach extra instruments when metrics are enabled.

        Called from :meth:`build` after :meth:`_build`, only when the
        active registry is live.  The default wraps the index's pruned
        DFS (any subclass defining ``_search``) with per-search timing
        and expansion-count histograms; subclasses can extend or replace
        this.
        """
        self._observe_searches(registry)

    def _observe_searches(self, registry: MetricsRegistry) -> None:
        """Wrap ``self._search`` with expansion and latency observers.

        The wrapper is installed as an *instance* attribute, so with
        metrics off the original method is untouched (true zero cost).
        Works for any search signature (``(u, v, *bounds)``); the
        vectorized batch fallback calls ``self._search`` too, so scalar
        and batch searches land in the same histograms.
        """
        inner = getattr(self, "_search", None)
        if inner is None:
            return
        expanded_hist = registry.histogram(
            "repro_search_expanded_vertices",
            buckets=COUNT_BUCKETS,
            help="Vertices expanded per online search.",
            method=self.method_name,
        )
        search_hist = registry.histogram(
            "repro_search_seconds",
            help="Wall time per online search.",
            method=self.method_name,
        )
        stats = self.stats

        def observed_search(u, v, *bounds):
            before = stats.expanded
            start = perf_counter()
            answer = inner(u, v, *bounds)
            search_hist.observe(perf_counter() - start)
            expanded_hist.observe(stats.expanded - before)
            return answer

        self._search = observed_search

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    # -- queries --------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        """Reject out-of-range ids with the uniform exception type."""
        if not 0 <= vertex < self.graph.num_vertices:
            raise InvalidVertexError(vertex, self.graph.num_vertices)

    def query(
        self, u: int, v: int, budget: QueryBudget | None = None
    ) -> bool:
        """Whether ``v`` is reachable from ``u`` (``r(u, v)``).

        Every index validates ``u``/``v`` identically
        (:class:`~repro.exceptions.InvalidVertexError` when out of range)
        and answers ``r(u, u)`` as ``True``.

        With a :class:`~repro.resilience.budget.QueryBudget`, the online
        search is step/deadline-guarded; on exhaustion the budget's
        policy decides between raising
        :class:`~repro.exceptions.QueryBudgetExceeded`, returning the
        three-valued :data:`~repro.resilience.budget.UNKNOWN`, or falling
        back to a bounded bidirectional BFS.  Boolean answers are always
        exact — only ``UNKNOWN`` may replace one.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before query()"
            )
        self._check_vertex(u)
        self._check_vertex(v)
        self.stats.queries += 1
        if u == v:
            self.stats.equal_cuts += 1
            return True
        observers = self._observers
        if observers is not None:
            verdict = observers.decide(u, v)
            if verdict is not None:
                if verdict:
                    self.stats.observer_positive += 1
                else:
                    self.stats.observer_negative += 1
                return verdict
        obs = self._hot_obs
        if obs is None:
            if budget is None:
                return self._query(u, v)
            return self._budgeted_query(u, v, budget)

        hist, slow, tracer = obs
        span = None
        if tracer is not None:
            span = tracer.span("query", method=self.method_name, u=u, v=v)
            span.__enter__()
        start = now_ns()
        try:
            if budget is None:
                answer = self._query(u, v)
            else:
                answer = self._budgeted_query(u, v, budget)
        except BaseException as exc:
            if span is not None:
                span.__exit__(type(exc), exc, None)
            raise
        duration = elapsed_ns(start)
        if span is not None:
            span.set_attribute(
                "verdict",
                answer if isinstance(answer, bool) else str(answer),
            )
            span.__exit__(None, None, None)
        if hist is not None:
            hist.observe(duration * 1e-9)
        if slow is not None:
            slow.record(
                u, v, answer, duration, self.method_name,
                trace_id=span.trace_id if span is not None else None,
            )
        return answer

    def _budgeted_query(self, u: int, v: int, budget: QueryBudget):
        """One guarded query: install the guard, degrade on exhaustion."""
        self._set_guard(budget.new_guard())
        try:
            return self._query(u, v)
        except QueryBudgetExceeded as exc:
            return self._degrade(u, v, budget, exc)
        finally:
            self._set_guard(None)

    def _set_guard(self, guard) -> None:
        """Install the active search guard (hook for delegating indexes)."""
        self._guard = guard

    def _degrade(self, u: int, v: int, budget: QueryBudget, exc):
        """Apply the budget's exhaustion policy; maintains all counters."""
        stats = self.stats
        stats.budget_exhausted += 1
        policy = budget.policy
        registry = get_registry()
        registry.counter(
            "repro_budget_exhausted_total",
            help="Budgeted queries that hit their step/deadline limit.",
            method=self.method_name,
            resource=exc.resource,
            policy=policy,
        ).inc()
        if policy == "raise":
            outcome = "raised"
        elif policy == "unknown":
            stats.unknowns += 1
            outcome = "unknown"
        else:  # fallback
            stats.fallbacks += 1
            answer = bounded_fallback(
                self.graph, u, v, budget.resolved_fallback_nodes
            )
            if answer is UNKNOWN:
                stats.unknowns += 1
                outcome = "fallback_unknown"
            else:
                outcome = "fallback_true" if answer else "fallback_false"
        registry.counter(
            "repro_degraded_total",
            help="Outcomes of budget-exhausted queries, per policy.",
            method=self.method_name,
            outcome=outcome,
            policy=policy,
        ).inc()
        if policy == "raise":
            raise exc
        if policy == "unknown":
            return UNKNOWN
        return answer

    def query_many(
        self,
        pairs: Iterable[tuple[int, int]],
        budget: QueryBudget | None = None,
    ) -> list[bool]:
        """Answer a batch of queries.

        Dispatches to the overridable :meth:`_query_many`, so indexes
        with a vectorized path (FELINE's numpy cuts) answer batches
        without per-pair Python dispatch while every subclass keeps this
        exact entry point.  Statistics counters update identically to
        the scalar path.

        All pairs are validated upfront (uniform
        :class:`~repro.exceptions.InvalidVertexError`).  With a
        ``budget``, each pair is answered through the guarded scalar
        path — the budget applies *per query*, and answers may contain
        :data:`~repro.resilience.budget.UNKNOWN` depending on policy.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before query_many()"
            )
        pairs = pairs if isinstance(pairs, Sequence) else list(pairs)
        n = self.graph.num_vertices
        for u, v in pairs:
            if not 0 <= u < n:
                raise InvalidVertexError(u, n)
            if not 0 <= v < n:
                raise InvalidVertexError(v, n)
        chaos.fire(
            "index.query_many", method=self.method_name, pairs=len(pairs)
        )
        if budget is not None:
            return [self.query(u, v, budget=budget) for u, v in pairs]
        slow = self._slow_log
        tracer = self._query_tracer
        hist = self._batch_hist
        if slow is None and tracer is None:
            if hist is None:
                return self._query_many(pairs)
            start = now_ns()
            answers = self._query_many(pairs)
            hist.observe(elapsed_s(start))
            self._batch_size_hist.observe(len(pairs))
            return answers

        # Per-pair visibility requested: a slow log needs each pair
        # timed individually (scalar path), and a tracer gets one batch
        # span that per-query spans parent under via the ambient span.
        span = None
        if tracer is not None:
            span = tracer.span(
                "query_many", method=self.method_name, size=len(pairs)
            )
            span.__enter__()
        start = now_ns()
        try:
            if slow is not None:
                answers = [self.query(u, v) for u, v in pairs]
            else:
                answers = self._query_many(pairs)
        except BaseException as exc:
            if span is not None:
                span.__exit__(type(exc), exc, None)
            raise
        if span is not None:
            span.set_attribute(
                "positives", sum(1 for answer in answers if answer is True)
            )
            span.__exit__(None, None, None)
        if hist is not None:
            hist.observe(elapsed_s(start))
            self._batch_size_hist.observe(len(pairs))
        return answers

    def _query_many(self, pairs: Iterable[tuple[int, int]]) -> list[bool]:
        """Batch implementation: the vectorized cut pass when the index
        declares a cut table, the scalar loop otherwise.

        Every registered family declares one (see
        :meth:`_make_cut_table`), so the scalar loop only serves
        out-of-tree subclasses.  Both paths own the ``stats.queries``
        accounting (the scalar loop counts per pair; the engine counts
        the batch), so the public wrapper adds no double counting, and
        both produce identical answers and statistics.
        """
        if self._cut_table is not None:
            return vectorized_query_many(self, pairs)
        query = self._query
        stats = self.stats
        answers = []
        for u, v in pairs:
            stats.queries += 1
            answers.append(query(u, v))
        return answers

    # -- batch engine hooks ------------------------------------------------
    def _make_cut_table(self):
        """Hook: the family's :class:`~repro.perf.cut_table.CutTable`.

        Called once per :meth:`build` (and by persistence loading).
        Return ``None`` (the default) to keep the scalar batch loop;
        every registered index family overrides this so ``query_many``
        runs the vectorized cut pass of :mod:`repro.perf.engine`.
        """
        return None

    def _search_pair(self, u: int, v: int) -> bool:
        """Hook: answer one engine survivor (a pair no O(1) cut decided).

        Implementations must reproduce exactly what the scalar
        ``_query`` does *after* it has counted the search — typically a
        call to the family's ``_search`` looked up via ``self`` so
        instance-attribute wrappers (metrics observers, test spies)
        stay in the loop.  Never called unless :meth:`_make_cut_table`
        returned a table whose classification leaves survivors.
        """
        raise NotImplementedError(
            f"{type(self).__name__} declares a cut table but no "
            "_search_pair for its survivors"
        )

    def _search_pairs_batch(self, us, vs):
        """Hook: answer many engine survivors in one native call.

        Returns per-pair ``(answers, expanded, pruned)`` arrays — stats
        and stamp bookkeeping aside, nothing else is touched, so the
        caller folds the deltas (with multiplicity weights) itself — or
        ``None`` to keep the scalar per-pair loop.  ``None`` whenever no
        batch-capable kernel is bound, a budget guard is active, or an
        instance-level ``_search`` wrapper (metrics observers, test
        spies) must stay in the loop.
        """
        kernel = self._kernel
        if (
            kernel is None
            or self._guard is not None
            or "_search" in self.__dict__
        ):
            return None
        batch = getattr(kernel, "search_batch", None)
        if batch is None:
            return None
        return batch(us, vs)

    # -- native search kernels ---------------------------------------------
    def set_kernel(self, kernel: str | None) -> str:
        """Select the search-kernel backend for this index.

        ``kernel`` is ``None``/``"auto"`` (strongest available tier,
        honouring the ``REPRO_KERNEL`` environment variable),
        ``"numba"``, ``"numpy"`` or ``"python"``; unknown or unavailable
        backends raise immediately.  When the index is already built the
        kernel is rebound at once, otherwise :meth:`build` binds it.
        Returns the resolved backend name (families without a native
        path resolve the request but always report ``"python"``).
        """
        from repro.perf import kernels

        self._kernel_choice = kernel
        if self._built:
            self._bind_kernel()
        else:
            self._kernel_backend = kernels.resolve_backend(kernel)
        return self._kernel_backend

    @property
    def kernel_backend(self) -> str:
        """The bound search-kernel backend (``"python"`` = original loops)."""
        return self._kernel_backend

    def _bind_kernel(self) -> None:
        """Hook: bind the family's native search kernel, if it has one.

        Called at the end of :meth:`build`, by persistence loading, by
        :meth:`set_kernel` on a built index, and after shared-memory
        adoption (so kernels read the adopted arrays).  The default
        validates the requested backend but binds nothing — families
        without a CSR-native path keep their loops and report
        ``"python"``.
        """
        from repro.perf import kernels

        kernels.resolve_backend(self._kernel_choice)
        self._kernel_backend = "python"
        self._arm_kernel(None)

    def _arm_kernel(self, kernel) -> None:
        """Install a bound kernel, arming its dispatch counter when live."""
        self._kernel = kernel
        if kernel is None:
            return
        registry = get_registry()
        if registry.enabled:
            kernel.dispatch_counter = registry.counter(
                "repro_kernel_dispatch_total",
                help="Native search-kernel dispatches.",
                backend=kernel.backend,
                method=self.method_name,
            )

    def attach_observers(self, layer):
        """Attach (or with ``None`` detach) an
        :class:`~repro.perf.observers.ObserverLayer`; returns it.

        Once attached, the layer's O(1) checks run before this family's
        own cuts on both the scalar :meth:`query` and the vectorized
        batch path; decided pairs count in
        ``stats.observer_positive`` / ``observer_negative`` and never
        touch the family's counters — the layer only shrinks the
        survivor set, answers are unchanged.
        """
        if layer is not None and layer.num_vertices != self.graph.num_vertices:
            raise ReproError(
                f"observer layer covers {layer.num_vertices} vertices but "
                f"the graph has {self.graph.num_vertices}"
            )
        self._observers = layer
        return layer

    @property
    def observers(self):
        """The attached observer layer, if any."""
        return self._observers

    def enable_search_pool(
        self, workers: int, min_batch: int = 32, shared_pages: bool = True
    ) -> "SearchPool | None":
        """Attach a :class:`~repro.perf.pool.SearchPool` for batch
        survivor searches; returns it (or ``None`` for ``workers <= 1``).

        Must run *after* :meth:`build` — the forked workers inherit the
        built structures.  With ``shared_pages`` (the default) the
        index's read-only numpy pages move into a
        :class:`~repro.perf.shm.SharedIndexPages` arena *before* the
        fork, so every worker maps one physical copy instead of
        COW-duplicating pages as refcounts are touched; where POSIX
        shared memory is unavailable this silently stays on fork-COW.
        ``workers <= 1`` detaches any existing pool and stays in
        process.  On platforms without ``fork`` the pool degrades to
        in-process execution.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before enable_search_pool()"
            )
        self.close_search_pool()
        if workers <= 1:
            return None
        if shared_pages:
            self.enable_shared_pages()
        self._search_pool = SearchPool(self, workers=workers, min_batch=min_batch)
        return self._search_pool

    def close_search_pool(self) -> None:
        """Terminate and detach the search pool, if any (idempotent)."""
        if self._search_pool is not None:
            self._search_pool.close()
            self._search_pool = None

    @property
    def search_pool(self) -> "SearchPool | None":
        """The attached survivor-search pool, if any."""
        return self._search_pool

    # -- shared-memory index pages ----------------------------------------
    def enable_shared_pages(self):
        """Move the index's read-only numpy pages into shared memory.

        Creates a :class:`~repro.perf.shm.SharedIndexPages` arena
        holding the CSR views, the family's label arrays (FELINE
        coordinates), and any attached observer arrays, then re-points
        every numpy consumer — cut table, native kernels, batch engine —
        at the arena, so processes forked afterwards (``SearchPool``,
        ``repro.shard`` workers) map **one** physical copy instead of
        COW-duplicating pages as Python touches refcounts.  (The
        ``array``-module scalars behind the pure-Python loops stay
        COW-shared — only the numpy pages, which carry the native hot
        path, move.)

        Returns the arena, or ``None`` where POSIX shared memory is
        unavailable (everything keeps working on fork-COW).  Idempotent.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before "
                "enable_shared_pages()"
            )
        if self._shared_pages is not None:
            return self._shared_pages
        from repro.perf.shm import SharedIndexPages

        arrays = self._shared_arrays()
        if not arrays:
            return None
        pages = SharedIndexPages.create(arrays, label=self.method_name)
        if pages is None:
            return None
        self._shared_pages = pages
        self._shared_originals = {}
        self._adopt_shared_arrays(pages)
        self._rematerialize_after_swap()
        self._publish_shared_bytes(pages.nbytes)
        return pages

    def close_shared_pages(self) -> None:
        """Restore the original arrays and unlink the arena (idempotent)."""
        pages = self._shared_pages
        if pages is None:
            return
        self._shared_pages = None
        self._restore_shared_arrays()
        self._shared_originals = None
        self._rematerialize_after_swap()
        pages.close()
        self._publish_shared_bytes(0)

    @property
    def shared_pages(self):
        """The owned shared-memory arena, if any."""
        return self._shared_pages

    def _publish_shared_bytes(self, nbytes: int) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_shared_pages_bytes",
                help="Bytes of index pages held in POSIX shared memory.",
                method=self.method_name,
            ).set(nbytes)

    def _shared_arrays(self) -> dict:
        """Hook: named numpy arrays to place into the shared arena.

        The base contributes the graph's CSR views and the attached
        observer layer's arrays; families extend this with their label
        structures.  Names are arbitrary but must round-trip through
        :meth:`_adopt_shared_arrays`.
        """
        csr = self.graph.csr()
        arrays = {
            "csr.out_indptr": csr.out_indptr,
            "csr.out_indices": csr.out_indices,
            "csr.in_indptr": csr.in_indptr,
            "csr.in_indices": csr.in_indices,
        }
        arrays.update(self._observer_shared_arrays())
        return arrays

    def _observer_shared_arrays(self) -> dict:
        observers = self._observers
        if observers is None:
            return {}
        return {
            f"obs.{attr}": getattr(observers, attr)
            for attr in _OBSERVER_ARRAYS
        }

    def _adopt_shared_arrays(self, pages) -> None:
        """Hook: re-point numpy consumers at the arena's copies.

        Originals are stashed in ``_shared_originals`` for
        :meth:`_restore_shared_arrays`.  Subclasses extend both hooks
        symmetrically; the caller re-materializes the cut table and
        rebinds the kernel afterwards, so neither hook needs to.
        """
        from repro.graph.digraph import CsrViews

        self._shared_originals["csr"] = self.graph.adopt_csr(
            CsrViews(
                out_indptr=pages.view("csr.out_indptr"),
                out_indices=pages.view("csr.out_indices"),
                in_indptr=pages.view("csr.in_indptr"),
                in_indices=pages.view("csr.in_indices"),
            )
        )
        self._adopt_observer_arrays(pages)

    def _adopt_observer_arrays(self, pages) -> None:
        observers = self._observers
        if observers is None:
            return
        stash = {}
        for attr in _OBSERVER_ARRAYS:
            stash[attr] = getattr(observers, attr)
            setattr(observers, attr, pages.view(f"obs.{attr}"))
        self._shared_originals["observers"] = stash

    def _restore_shared_arrays(self) -> None:
        """Hook: undo :meth:`_adopt_shared_arrays`."""
        originals = self._shared_originals or {}
        csr = originals.get("csr")
        if csr is not None:
            self.graph.adopt_csr(csr)
        stash = originals.get("observers")
        if stash is not None:
            for attr, arr in stash.items():
                setattr(self._observers, attr, arr)

    def _rematerialize_after_swap(self) -> None:
        """Rebuild the views-derived machinery after an array swap."""
        self._materialize_cut_table()
        self._bind_kernel()

    # -- explain -----------------------------------------------------------
    def explain(
        self, u: int, v: int, budget: QueryBudget | None = None
    ) -> QueryExplanation:
        """Answer ``r(u, v)`` *and* report how the answer was produced.

        Returns a :class:`~repro.obs.explain.QueryExplanation` whose
        ``verdict`` always equals what :meth:`query` would return for the
        same arguments (the property suite asserts this for every
        registered method), plus the provenance: which O(1) cut fired or
        whether the online search ran, how many vertices it expanded and
        pruned, the wall time, and — under a budget — the consumption and
        degradation outcome.

        The classification is generic (derived from the per-method
        :class:`QueryStats` accounting every ``_query`` maintains);
        index families refine it through :meth:`_explain_details` —
        FELINE distinguishes the coordinate cut from the level filter
        and attaches the coordinates it consulted.

        Unlike :meth:`query`, ``explain`` never raises on budget
        exhaustion: under ``policy="raise"`` the explanation carries
        ``verdict=UNKNOWN`` with ``budget.outcome == "raised"`` so the
        provenance survives to the caller.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before explain()"
            )
        self._check_vertex(u)
        self._check_vertex(v)
        stats = self.stats
        base = (
            stats.equal_cuts, stats.negative_cuts, stats.positive_cuts,
            stats.searches, stats.expanded, stats.pruned,
            stats.observer_positive, stats.observer_negative,
        )
        budget_report = None
        stats.queries += 1
        observer_verdict = None
        if u != v and self._observers is not None:
            observer_verdict = self._observers.decide(u, v)
        start = now_ns()
        if u == v:
            stats.equal_cuts += 1
            verdict = True
        elif observer_verdict is not None:
            # The observer layer decided — the family's _query never
            # runs, exactly as in query(), and the verdict is attributed
            # to the observers (never to the family's own cuts).
            if observer_verdict:
                stats.observer_positive += 1
            else:
                stats.observer_negative += 1
            verdict = observer_verdict
        elif budget is None:
            verdict = self._query(u, v)
        else:
            guard = budget.new_guard()
            self._set_guard(guard)
            exhausted = False
            outcome = "completed"
            try:
                verdict = self._query(u, v)
            except QueryBudgetExceeded as exc:
                exhausted = True
                try:
                    verdict = self._degrade(u, v, budget, exc)
                except QueryBudgetExceeded:
                    verdict = UNKNOWN
                    outcome = "raised"
                else:
                    if budget.policy == "unknown":
                        outcome = "unknown"
                    elif verdict is UNKNOWN:
                        outcome = "fallback_unknown"
                    else:
                        outcome = (
                            "fallback_true" if verdict else "fallback_false"
                        )
            finally:
                self._set_guard(None)
            budget_report = BudgetReport(
                policy=budget.policy,
                max_steps=budget.max_steps,
                deadline_s=budget.deadline_s,
                steps_used=guard.steps,
                exhausted=exhausted,
                outcome=outcome,
            )
        elapsed = elapsed_ns(start)

        # Exactly one cut counter moved (each _query's contract); label-
        # lookup methods that count nothing (e.g. the materialized
        # transitive closure) classify by the verdict's sign.
        if stats.equal_cuts > base[0]:
            cut = "equal"
        elif stats.observer_positive > base[6]:
            cut = "observer-positive"
        elif stats.observer_negative > base[7]:
            cut = "observer-negative"
        elif stats.searches > base[3]:
            cut = "search"
        elif stats.positive_cuts > base[2]:
            cut = "positive-cut"
        elif stats.negative_cuts > base[1]:
            cut = "negative-cut"
        else:
            cut = "positive-cut" if verdict is True else "negative-cut"

        explanation = QueryExplanation(
            method=self.method_name,
            u=u,
            v=v,
            verdict=verdict,
            cut=cut,
            expanded=stats.expanded - base[4],
            pruned=stats.pruned - base[5],
            elapsed_ns=elapsed,
            budget=budget_report,
        )
        if observer_verdict is not None:
            explanation.details["observers(k)"] = self._observers.k
        self._explain_details(u, v, explanation)
        return explanation

    def _explain_details(
        self, u: int, v: int, explanation: QueryExplanation
    ) -> None:
        """Hook: enrich (and refine) an explanation with index internals.

        Called once per :meth:`explain` with the generically-classified
        explanation; subclasses add the structures they consulted to
        ``explanation.details`` and may sharpen ``explanation.cut``
        (FELINE splits ``negative-cut`` into the coordinate cut vs the
        level filter).  The default adds nothing.
        """

    # -- observability ----------------------------------------------------
    def publish_stats(self, registry: MetricsRegistry | None = None) -> None:
        """Snapshot :attr:`stats` into ``repro_query_stats`` gauges.

        The counters accrue in plain Python ints (hot path); this
        publishes them to the metrics registry at a natural boundary —
        the bench harness calls it after each measured workload, the
        ``repro stats`` CLI after its run.  No-op when metrics are off.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        for counter, value in self.stats.as_dict().items():
            registry.gauge(
                "repro_query_stats",
                help="QueryStats counters snapshotted per method.",
                method=self.method_name,
                counter=counter,
            ).set(value)

    # -- introspection ----------------------------------------------------
    @abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate size of the *index structure itself*, in bytes.

        Excludes the input graph — the paper's "index size" figures
        compare only the generated labels, which is what makes GRAIL's
        d-interval index measurably larger than FELINE's two orderings.
        """

    # -- to be provided by subclasses -------------------------------------
    @abstractmethod
    def _build(self) -> None:
        """Construct the index structures."""

    @abstractmethod
    def _query(self, u: int, v: int) -> bool:
        """Answer one query; ``build`` is guaranteed to have run."""

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"<{type(self).__name__} {state} on {self.graph!r}>"


_REGISTRY: dict[str, Callable[..., ReachabilityIndex]] = {}


def register_index(
    factory: Callable[..., ReachabilityIndex], name: str | None = None
) -> Callable[..., ReachabilityIndex]:
    """Register an index class/factory under its ``method_name``.

    Usable as a plain call or a decorator:

    >>> @register_index
    ... class MyIndex(ReachabilityIndex):
    ...     method_name = "mine"
    ...     ...
    """
    key = name or getattr(factory, "method_name", None)
    if not key or key == "abstract":
        raise ValueError(f"{factory!r} has no usable method_name")
    _REGISTRY[key] = factory
    return factory


def create_index(method: str, graph: DiGraph, **params) -> ReachabilityIndex:
    """Instantiate a registered index by name (does not build it).

    Raises :class:`~repro.exceptions.UnknownMethodError` for a name not
    in the registry (a :class:`~repro.exceptions.DatasetError` subclass,
    so pre-existing handlers keep working).
    """
    try:
        factory = _REGISTRY[method]
    except KeyError:
        known = sorted(_REGISTRY)
        raise UnknownMethodError(
            f"unknown reachability method {method!r}; known: {', '.join(known)}",
            method=method,
            known=known,
        ) from None
    return factory(graph, **params)


def available_methods() -> list[str]:
    """Names of all registered methods, sorted."""
    return sorted(_REGISTRY)
