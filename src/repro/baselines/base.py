"""Common interface and factory for every reachability index.

The benchmark harness sweeps methods uniformly: it instantiates each index
through :func:`create_index`, calls :meth:`ReachabilityIndex.build` once
(timed — the paper's "construction time"), then issues queries through
:meth:`ReachabilityIndex.query` (timed — "query time") and reads
:meth:`ReachabilityIndex.index_size_bytes` ("index size").

All indexes require a **DAG**; condensation of cyclic inputs is a
documented pre-processing step (:func:`repro.graph.scc.condense`), applied
automatically by the :class:`repro.Reachability` facade.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass
from time import perf_counter

from repro.exceptions import (
    IndexNotBuiltError,
    InvalidVertexError,
    QueryBudgetExceeded,
    UnknownMethodError,
)
from repro.graph.digraph import DiGraph
from repro.obs.metrics import COUNT_BUCKETS, MetricsRegistry, get_registry
from repro.resilience import chaos
from repro.resilience.budget import UNKNOWN, QueryBudget, bounded_fallback

__all__ = [
    "QueryStats",
    "ReachabilityIndex",
    "register_index",
    "create_index",
    "available_methods",
]


@dataclass
class QueryStats:
    """Counters describing how queries were answered.

    The paper's discussion section attributes the performance differences
    between online-search methods to *which* cut answers each query; these
    counters make that observable:

    * ``queries`` — total queries answered;
    * ``equal_cuts`` — answered by ``u == v``;
    * ``negative_cuts`` — answered negatively in O(1) (dominance, level or
      interval non-containment before any search);
    * ``positive_cuts`` — answered positively in O(1) by the positive-cut
      filter;
    * ``searches`` — queries that needed a graph search;
    * ``expanded`` — total vertices expanded across all searches;
    * ``pruned`` — search branches cut by the index during searches.

    The resilience layer (``repro.resilience``) adds three degradation
    counters:

    * ``budget_exhausted`` — budgeted queries whose search hit its step
      or deadline limit;
    * ``fallbacks`` — exhausted queries answered by the bounded
      bidirectional-BFS fallback;
    * ``unknowns`` — queries that degraded all the way to ``UNKNOWN``.
    """

    queries: int = 0
    equal_cuts: int = 0
    negative_cuts: int = 0
    positive_cuts: int = 0
    searches: int = 0
    expanded: int = 0
    pruned: int = 0
    budget_exhausted: int = 0
    fallbacks: int = 0
    unknowns: int = 0

    def reset(self) -> None:
        """Zero every counter."""
        self.queries = 0
        self.equal_cuts = 0
        self.negative_cuts = 0
        self.positive_cuts = 0
        self.searches = 0
        self.expanded = 0
        self.pruned = 0
        self.budget_exhausted = 0
        self.fallbacks = 0
        self.unknowns = 0

    def as_dict(self) -> dict[str, int]:
        """Counters as a plain dict (for reports)."""
        return {
            "queries": self.queries,
            "equal_cuts": self.equal_cuts,
            "negative_cuts": self.negative_cuts,
            "positive_cuts": self.positive_cuts,
            "searches": self.searches,
            "expanded": self.expanded,
            "pruned": self.pruned,
            "budget_exhausted": self.budget_exhausted,
            "fallbacks": self.fallbacks,
            "unknowns": self.unknowns,
        }


class ReachabilityIndex(ABC):
    """Abstract reachability index over a DAG.

    Subclasses set the class attribute ``method_name`` (the factory key and
    report label) and implement :meth:`_build` and :meth:`_query`.

    The public :meth:`query` guards against use-before-build and maintains
    the ``stats.queries`` counter; subclasses update the finer-grained
    counters themselves.
    """

    method_name: str = "abstract"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph
        self.stats = QueryStats()
        self._built = False
        # The active per-query budget guard (see repro.resilience.budget);
        # None on the unbudgeted hot path, so every _search loop pays a
        # single `is not None` check.
        self._guard = None
        # Observability handles, resolved at build() time.  They stay
        # None while the global registry is the no-op default, so the
        # query hot path pays a single `is None` check when metrics are
        # off (the zero-cost-when-disabled contract of repro.obs).
        self._latency_hist = None
        self._batch_hist = None
        self._batch_size_hist = None

    # -- lifecycle ------------------------------------------------------
    def build(self) -> "ReachabilityIndex":
        """Construct the index; returns ``self`` for chaining.

        With metrics enabled (:func:`repro.obs.enable_metrics` *before*
        this call) the build is timed into
        ``repro_index_build_seconds{method}``, a trace event records the
        graph dimensions, and per-query instruments are armed.
        """
        chaos.fire("index.build.start", method=self.method_name)
        registry = get_registry()
        if not registry.enabled:
            self._build()
            self._built = True
            return self

        method = self.method_name
        start = perf_counter()
        self._build()
        elapsed = perf_counter() - start
        registry.counter(
            "repro_index_builds_total",
            help="Number of index builds per method.",
            method=method,
        ).inc()
        registry.histogram(
            "repro_index_build_seconds",
            help="Index construction wall time.",
            method=method,
        ).observe(elapsed)
        registry.trace(
            "index.build",
            duration_s=elapsed,
            method=method,
            vertices=self.graph.num_vertices,
            edges=self.graph.num_edges,
        )
        self._latency_hist = registry.histogram(
            "repro_query_latency_seconds",
            help="Per-query latency of the scalar query path.",
            method=method,
        )
        self._batch_hist = registry.histogram(
            "repro_query_batch_seconds",
            help="Whole-batch latency of query_many.",
            method=method,
        )
        self._batch_size_hist = registry.histogram(
            "repro_query_batch_size",
            buckets=COUNT_BUCKETS,
            help="Number of pairs per query_many batch.",
            method=method,
        )
        self._install_observers(registry)
        self._built = True
        return self

    def _install_observers(self, registry: MetricsRegistry) -> None:
        """Hook: attach extra instruments when metrics are enabled.

        Called from :meth:`build` after :meth:`_build`, only when the
        active registry is live.  The default wraps the index's pruned
        DFS (any subclass defining ``_search``) with per-search timing
        and expansion-count histograms; subclasses can extend or replace
        this.
        """
        self._observe_searches(registry)

    def _observe_searches(self, registry: MetricsRegistry) -> None:
        """Wrap ``self._search`` with expansion and latency observers.

        The wrapper is installed as an *instance* attribute, so with
        metrics off the original method is untouched (true zero cost).
        Works for any search signature (``(u, v, *bounds)``); the
        vectorized batch fallback calls ``self._search`` too, so scalar
        and batch searches land in the same histograms.
        """
        inner = getattr(self, "_search", None)
        if inner is None:
            return
        expanded_hist = registry.histogram(
            "repro_search_expanded_vertices",
            buckets=COUNT_BUCKETS,
            help="Vertices expanded per online search.",
            method=self.method_name,
        )
        search_hist = registry.histogram(
            "repro_search_seconds",
            help="Wall time per online search.",
            method=self.method_name,
        )
        stats = self.stats

        def observed_search(u, v, *bounds):
            before = stats.expanded
            start = perf_counter()
            answer = inner(u, v, *bounds)
            search_hist.observe(perf_counter() - start)
            expanded_hist.observe(stats.expanded - before)
            return answer

        self._search = observed_search

    @property
    def built(self) -> bool:
        """Whether :meth:`build` has completed."""
        return self._built

    # -- queries --------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        """Reject out-of-range ids with the uniform exception type."""
        if not 0 <= vertex < self.graph.num_vertices:
            raise InvalidVertexError(vertex, self.graph.num_vertices)

    def query(
        self, u: int, v: int, budget: QueryBudget | None = None
    ) -> bool:
        """Whether ``v`` is reachable from ``u`` (``r(u, v)``).

        Every index validates ``u``/``v`` identically
        (:class:`~repro.exceptions.InvalidVertexError` when out of range)
        and answers ``r(u, u)`` as ``True``.

        With a :class:`~repro.resilience.budget.QueryBudget`, the online
        search is step/deadline-guarded; on exhaustion the budget's
        policy decides between raising
        :class:`~repro.exceptions.QueryBudgetExceeded`, returning the
        three-valued :data:`~repro.resilience.budget.UNKNOWN`, or falling
        back to a bounded bidirectional BFS.  Boolean answers are always
        exact — only ``UNKNOWN`` may replace one.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before query()"
            )
        self._check_vertex(u)
        self._check_vertex(v)
        self.stats.queries += 1
        if u == v:
            self.stats.equal_cuts += 1
            return True
        hist = self._latency_hist
        if budget is None:
            if hist is None:
                return self._query(u, v)
            start = perf_counter()
            answer = self._query(u, v)
            hist.observe(perf_counter() - start)
            return answer
        start = perf_counter() if hist is not None else 0.0
        self._set_guard(budget.new_guard())
        try:
            answer = self._query(u, v)
        except QueryBudgetExceeded as exc:
            answer = self._degrade(u, v, budget, exc)
        finally:
            self._set_guard(None)
        if hist is not None:
            hist.observe(perf_counter() - start)
        return answer

    def _set_guard(self, guard) -> None:
        """Install the active search guard (hook for delegating indexes)."""
        self._guard = guard

    def _degrade(self, u: int, v: int, budget: QueryBudget, exc):
        """Apply the budget's exhaustion policy; maintains all counters."""
        stats = self.stats
        stats.budget_exhausted += 1
        registry = get_registry()
        registry.counter(
            "repro_budget_exhausted_total",
            help="Budgeted queries that hit their step/deadline limit.",
            method=self.method_name,
            resource=exc.resource,
        ).inc()
        policy = budget.policy
        if policy == "raise":
            outcome = "raised"
        elif policy == "unknown":
            stats.unknowns += 1
            outcome = "unknown"
        else:  # fallback
            stats.fallbacks += 1
            answer = bounded_fallback(
                self.graph, u, v, budget.resolved_fallback_nodes
            )
            if answer is UNKNOWN:
                stats.unknowns += 1
                outcome = "fallback_unknown"
            else:
                outcome = "fallback_true" if answer else "fallback_false"
        registry.counter(
            "repro_degraded_total",
            help="Outcomes of budget-exhausted queries, per policy.",
            method=self.method_name,
            outcome=outcome,
        ).inc()
        if policy == "raise":
            raise exc
        if policy == "unknown":
            return UNKNOWN
        return answer

    def query_many(
        self,
        pairs: Iterable[tuple[int, int]],
        budget: QueryBudget | None = None,
    ) -> list[bool]:
        """Answer a batch of queries.

        Dispatches to the overridable :meth:`_query_many`, so indexes
        with a vectorized path (FELINE's numpy cuts) answer batches
        without per-pair Python dispatch while every subclass keeps this
        exact entry point.  Statistics counters update identically to
        the scalar path.

        All pairs are validated upfront (uniform
        :class:`~repro.exceptions.InvalidVertexError`).  With a
        ``budget``, each pair is answered through the guarded scalar
        path — the budget applies *per query*, and answers may contain
        :data:`~repro.resilience.budget.UNKNOWN` depending on policy.
        """
        if not self._built:
            raise IndexNotBuiltError(
                f"{self.method_name}: call build() before query_many()"
            )
        pairs = pairs if isinstance(pairs, Sequence) else list(pairs)
        n = self.graph.num_vertices
        for u, v in pairs:
            if not 0 <= u < n:
                raise InvalidVertexError(u, n)
            if not 0 <= v < n:
                raise InvalidVertexError(v, n)
        if budget is not None:
            return [self.query(u, v, budget=budget) for u, v in pairs]
        hist = self._batch_hist
        if hist is None:
            return self._query_many(pairs)
        start = perf_counter()
        answers = self._query_many(pairs)
        hist.observe(perf_counter() - start)
        self._batch_size_hist.observe(len(pairs))
        return answers

    def _query_many(self, pairs: Iterable[tuple[int, int]]) -> list[bool]:
        """Batch implementation; override for a vectorized fast path.

        Implementations own the ``stats.queries`` accounting (the base
        loop counts per pair; a vectorized override counts the batch),
        so the public wrapper adds no double counting.
        """
        query = self._query
        stats = self.stats
        answers = []
        for u, v in pairs:
            stats.queries += 1
            answers.append(query(u, v))
        return answers

    # -- observability ----------------------------------------------------
    def publish_stats(self, registry: MetricsRegistry | None = None) -> None:
        """Snapshot :attr:`stats` into ``repro_query_stats`` gauges.

        The counters accrue in plain Python ints (hot path); this
        publishes them to the metrics registry at a natural boundary —
        the bench harness calls it after each measured workload, the
        ``repro stats`` CLI after its run.  No-op when metrics are off.
        """
        registry = registry if registry is not None else get_registry()
        if not registry.enabled:
            return
        for counter, value in self.stats.as_dict().items():
            registry.gauge(
                "repro_query_stats",
                help="QueryStats counters snapshotted per method.",
                method=self.method_name,
                counter=counter,
            ).set(value)

    # -- introspection ----------------------------------------------------
    @abstractmethod
    def index_size_bytes(self) -> int:
        """Approximate size of the *index structure itself*, in bytes.

        Excludes the input graph — the paper's "index size" figures
        compare only the generated labels, which is what makes GRAIL's
        d-interval index measurably larger than FELINE's two orderings.
        """

    # -- to be provided by subclasses -------------------------------------
    @abstractmethod
    def _build(self) -> None:
        """Construct the index structures."""

    @abstractmethod
    def _query(self, u: int, v: int) -> bool:
        """Answer one query; ``build`` is guaranteed to have run."""

    def __repr__(self) -> str:
        state = "built" if self._built else "unbuilt"
        return f"<{type(self).__name__} {state} on {self.graph!r}>"


_REGISTRY: dict[str, Callable[..., ReachabilityIndex]] = {}


def register_index(
    factory: Callable[..., ReachabilityIndex], name: str | None = None
) -> Callable[..., ReachabilityIndex]:
    """Register an index class/factory under its ``method_name``.

    Usable as a plain call or a decorator:

    >>> @register_index
    ... class MyIndex(ReachabilityIndex):
    ...     method_name = "mine"
    ...     ...
    """
    key = name or getattr(factory, "method_name", None)
    if not key or key == "abstract":
        raise ValueError(f"{factory!r} has no usable method_name")
    _REGISTRY[key] = factory
    return factory


def create_index(method: str, graph: DiGraph, **params) -> ReachabilityIndex:
    """Instantiate a registered index by name (does not build it).

    Raises :class:`~repro.exceptions.UnknownMethodError` for a name not
    in the registry (a :class:`~repro.exceptions.DatasetError` subclass,
    so pre-existing handlers keep working).
    """
    try:
        factory = _REGISTRY[method]
    except KeyError:
        known = sorted(_REGISTRY)
        raise UnknownMethodError(
            f"unknown reachability method {method!r}; known: {', '.join(known)}",
            method=method,
            known=known,
        ) from None
    return factory(graph, **params)


def available_methods() -> list[str]:
    """Names of all registered methods, sorted."""
    return sorted(_REGISTRY)
