"""GRAIL — Graph Reachability indexing via rAndomized Interval Labeling.

Yildirim, Chaoji & Zaki (VLDB 2010), the paper's main competitor.  The
index is ``d`` independent min-post interval labellings of the whole DAG,
each from a DFS that visits successors in a different random order.  For
every labelling ``i`` and every reachable pair, ``I_v ⊆ I_u`` must hold, so
*non*-containment in any labelling is a constant-time negative cut; when
all ``d`` labellings contain, GRAIL falls back to a DFS whose branches are
pruned by the same containment test (plus the shared positive-cut and
level filters of §3.4).

Crucially — and this is FELINE's Figure 5/7 argument — the DFS has *no
bound tied to the target's position*: a false-positive query keeps
expanding until the pruned region is exhausted, which is why GRAIL loses
on query time despite an index ``d`` times larger.
"""

from __future__ import annotations

from random import Random

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.graph.spanning import (
    IntervalLabels,
    extract_spanning_forest,
    minpost_intervals_dag,
    minpost_intervals_tree,
)
from repro.perf.cut_table import CutTable, view_i64

__all__ = ["GrailIndex", "GrailCutTable"]

from array import array


class GrailCutTable(CutTable):
    """GRAIL cuts: ``d``-labelling non-containment, levels, tree interval.

    The ``d`` labellings stack into two ``(d, n)`` matrices, so the
    whole-batch negative cut is two broadcasted comparisons per
    labelling.
    """

    def __init__(self, index: "GrailIndex") -> None:
        self.starts = np.stack(
            [view_i64(labels.start) for labels in index.labelings]
        )
        self.posts = np.stack(
            [view_i64(labels.post) for labels in index.labelings]
        )
        self.levels = (
            view_i64(index.levels) if index.levels is not None else None
        )
        intervals = index.tree_intervals
        if intervals is not None:
            self.start = view_i64(intervals.start)
            self.post = view_i64(intervals.post)
        else:
            self.start = self.post = None

    def classify(self, sources, targets):
        negative = np.any(
            (self.starts[:, sources] > self.starts[:, targets])
            | (self.posts[:, targets] > self.posts[:, sources]),
            axis=0,
        )
        levels = self.levels
        if levels is not None:
            negative |= levels[sources] >= levels[targets]
        if self.start is not None:
            positive = (
                ~negative
                & (self.start[sources] <= self.start[targets])
                & (self.post[targets] <= self.post[sources])
            )
        else:
            positive = np.zeros(len(sources), dtype=bool)
        return positive, negative


class GrailIndex(ReachabilityIndex):
    """GRAIL with ``d`` randomized interval labellings plus both filters.

    Parameters
    ----------
    graph:
        The input DAG.
    num_labelings:
        ``d``, the number of randomized traversals (the paper's plots use
        d = 3 and d = 5; GRAIL's authors recommend 2–5).
    use_level_filter, use_positive_cut:
        The §3.4 filters, both on in the paper's "fully optimized"
        configuration.
    seed:
        Seeds the ``d`` random traversal orders.
    """

    method_name = "grail"

    def __init__(
        self,
        graph: DiGraph,
        num_labelings: int = 3,
        use_level_filter: bool = True,
        use_positive_cut: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        if num_labelings < 1:
            raise ValueError(f"num_labelings must be >= 1, got {num_labelings}")
        self.num_labelings = num_labelings
        self._use_level_filter = use_level_filter
        self._use_positive_cut = use_positive_cut
        self._seed = seed
        self.labelings: list[IntervalLabels] = []
        self.levels: array | None = None
        self.tree_intervals: IntervalLabels | None = None
        self._visited = array("l", [0] * graph.num_vertices)
        self._stamp = 0

    # ------------------------------------------------------------------
    def _build(self) -> None:
        rng = Random(self._seed)
        self.labelings = [
            minpost_intervals_dag(self.graph, rng=Random(rng.random()))
            for _ in range(self.num_labelings)
        ]
        if self._use_level_filter:
            self.levels = compute_levels(self.graph)
        if self._use_positive_cut:
            forest = extract_spanning_forest(self.graph)
            self.tree_intervals = minpost_intervals_tree(forest)

    def index_size_bytes(self) -> int:
        total = sum(labels.memory_bytes() for labels in self.labelings)
        if self.levels is not None:
            total += self.levels.itemsize * len(self.levels)
        if self.tree_intervals is not None:
            total += self.tree_intervals.memory_bytes()
        return total

    # ------------------------------------------------------------------
    def _contains_all(self, u: int, v: int) -> bool:
        """Whether every labelling has ``I_v ⊆ I_u`` (no negative cut)."""
        for labels in self.labelings:
            if labels.start[u] > labels.start[v] or labels.post[v] > labels.post[u]:
                return False
        return True

    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        if not self._contains_all(u, v):
            stats.negative_cuts += 1
            return False
        levels = self.levels
        if levels is not None and levels[u] >= levels[v]:
            stats.negative_cuts += 1
            return False
        intervals = self.tree_intervals
        if intervals is not None and intervals.contains(u, v):
            stats.positive_cuts += 1
            return True
        stats.searches += 1
        return self._search(u, v)

    def _make_cut_table(self) -> GrailCutTable:
        return GrailCutTable(self)

    def _search_pair(self, u: int, v: int) -> bool:
        return self._search(u, v)

    def _explain_details(self, u: int, v: int, explanation) -> None:
        """The d interval labels consulted; splits interval cut vs level."""
        details = explanation.details
        details["labels(u)"] = tuple(
            (labels.start[u], labels.post[u]) for labels in self.labelings
        )
        details["labels(v)"] = tuple(
            (labels.start[v], labels.post[v]) for labels in self.labelings
        )
        if self.levels is not None:
            details["level(u)"] = self.levels[u]
            details["level(v)"] = self.levels[v]
        if explanation.cut == "negative-cut":
            if not self._contains_all(u, v):
                details["containment"] = False
            else:
                explanation.cut = "level-filter"

    def _search(self, u: int, v: int) -> bool:
        """DFS pruned by interval containment (no target-position bound)."""
        indptr = self.graph.out_indptr
        indices = self.graph.out_indices
        levels = self.levels
        intervals = self.tree_intervals
        level_v = levels[v] if levels is not None else 0
        stats = self.stats
        contains_all = self._contains_all
        guard = self._guard

        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[u] = stamp
        stack = [u]
        while stack:
            w = stack.pop()
            stats.expanded += 1
            if guard is not None:
                guard.step()
            for k in range(indptr[w], indptr[w + 1]):
                child = indices[k]
                if child == v:
                    return True
                if visited[child] == stamp:
                    continue
                visited[child] = stamp
                if not contains_all(child, v):
                    stats.pruned += 1
                    continue
                if levels is not None and levels[child] >= level_v:
                    stats.pruned += 1
                    continue
                if intervals is not None and intervals.contains(child, v):
                    return True
                stack.append(child)
        return False


register_index(GrailIndex)
