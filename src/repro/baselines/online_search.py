"""Un-indexed online searches — the right end of the Figure 1 spectrum.

These "indexes" build nothing: every query is a fresh O(|V| + |E|) graph
search.  They anchor the benchmark sweeps (any real index must beat them on
query time) and give the test suites an obviously-correct oracle.
"""

from __future__ import annotations

from repro.baselines.base import ReachabilityIndex, register_index
from repro.graph.traversal import (
    bfs_reachable,
    bidirectional_reachable,
    dfs_reachable,
)
from repro.perf.cut_table import SearchOnlyCutTable

__all__ = ["DFSIndex", "BFSIndex", "BidirectionalBFSIndex"]


class DFSIndex(ReachabilityIndex):
    """Pure DFS per query; zero construction time, zero index size."""

    method_name = "dfs"

    def _build(self) -> None:
        pass  # nothing to construct

    def index_size_bytes(self) -> int:
        return 0

    def _query(self, u: int, v: int) -> bool:
        if u == v:
            self.stats.equal_cuts += 1
            return True
        self.stats.searches += 1
        return dfs_reachable(self.graph, u, v, guard=self._guard)

    def _make_cut_table(self) -> SearchOnlyCutTable:
        return SearchOnlyCutTable()

    def _search_pair(self, u: int, v: int) -> bool:
        return dfs_reachable(self.graph, u, v, guard=self._guard)


class BFSIndex(ReachabilityIndex):
    """Pure BFS per query."""

    method_name = "bfs"

    def _build(self) -> None:
        pass  # nothing to construct

    def index_size_bytes(self) -> int:
        return 0

    def _query(self, u: int, v: int) -> bool:
        if u == v:
            self.stats.equal_cuts += 1
            return True
        self.stats.searches += 1
        return bfs_reachable(self.graph, u, v, guard=self._guard)

    def _make_cut_table(self) -> SearchOnlyCutTable:
        return SearchOnlyCutTable()

    def _search_pair(self, u: int, v: int) -> bool:
        return bfs_reachable(self.graph, u, v, guard=self._guard)


class BidirectionalBFSIndex(ReachabilityIndex):
    """Bidirectional BFS per query — the strongest un-indexed baseline.

    The only un-indexed family with a native kernel path: the
    level-synchronous frontier expansion vectorizes well, so
    :mod:`repro.perf.kernels` provides numpy and numba tiers (DFS/BFS
    stay pure Python — their single-vertex expansion order has no
    profitable native formulation that keeps answers bit-identical).
    """

    method_name = "bibfs"

    def _build(self) -> None:
        pass  # nothing to construct

    def index_size_bytes(self) -> int:
        return 0

    def _bind_kernel(self) -> None:
        from repro.perf import kernels

        backend = kernels.resolve_backend(self._kernel_choice)
        self._kernel_backend = backend
        if backend == "python":
            self._arm_kernel(None)
            return
        self._arm_kernel(kernels.bibfs_kernel_for(self.graph, backend))

    def _run_search(self, u: int, v: int) -> bool:
        kernel = self._kernel
        if kernel is not None:
            return kernel.run(u, v, self._guard)
        return bidirectional_reachable(self.graph, u, v, guard=self._guard)

    def _query(self, u: int, v: int) -> bool:
        if u == v:
            self.stats.equal_cuts += 1
            return True
        self.stats.searches += 1
        return self._run_search(u, v)

    def _make_cut_table(self) -> SearchOnlyCutTable:
        return SearchOnlyCutTable()

    def _search_pair(self, u: int, v: int) -> bool:
        return self._run_search(u, v)


register_index(DFSIndex)
register_index(BFSIndex)
register_index(BidirectionalBFSIndex)
