"""TF-Label — hop labels ordered by a topological-folding hierarchy.

Cheng, Huang, Wu & Fu (SIGMOD 2013).  TF-Label is a *hop labeling* method:
every vertex ``v`` carries two sorted sets of hub ranks, ``L_out(v)``
(hubs ``v`` reaches) and ``L_in(v)`` (hubs reaching ``v``), such that

    r(u, v)  ⇔  L_out(u) ∩ L_in(v) ≠ ∅,

answered by one sorted merge-join — a *self-sufficient* index like
INTERVAL: the graph can be discarded after construction.

The method's namesake contribution is the **topological folding (TF)**
hierarchy that decides which vertices become hubs first: fold the DAG by
repeatedly collapsing alternate topological levels; a vertex at level
``l`` survives one more fold each time its level index halves evenly, so
its fold round is the 2-adic valuation ``ν₂(l)`` (roots survive every
fold).  Vertices surviving more folds sit "higher" in the hierarchy and
make the most productive hubs.

Label construction then follows the standard pruned 2-hop scheme: hubs are
processed in hierarchy order; each hub BFSes forward (adding itself to the
``L_in`` of reached vertices) and backward (to ``L_out``), *pruning* any
vertex whose pair with the hub is already answerable from existing labels.
Pruning keeps labels minimal, which is why the paper's Figures 15–16 show
TF-Label with the smallest index — paid for with the largest construction
times in Table 3, a trade-off this implementation reproduces.

Substitution note (see DESIGN.md): the original system folds the graph
*structurally*, inserting shortcut edges; we compute the same hierarchy
ranks directly from topological levels (the valuation formula above) and
let the pruned-labeling pass do the covering.  This preserves the index
class, the query algorithm, the label-size behaviour and the
construction-cost profile, which are what the evaluation measures.
"""

from __future__ import annotations

from array import array
from collections import deque

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.perf.cut_table import CutTable, segment_keys, segmented_arrays

__all__ = ["TFLabelIndex", "TFLabelCutTable", "fold_rounds"]


class TFLabelCutTable(CutTable):
    """Batched 2-hop intersection tests over CSR-flattened labels.

    ``L_out`` flattens into one CSR structure; ``L_in`` into globally
    sorted keys ``vertex * n + rank``.  A batch expands every source's
    out-labels (one gather), probes them all against the targets'
    in-label keys with a single ``searchsorted``, and ORs the hits per
    pair with ``bincount``.  Hop labels decide every pair — no search.
    """

    def __init__(self, index: "TFLabelIndex") -> None:
        self.universe = max(1, index.graph.num_vertices)
        self.out_flat, self.out_indptr = segmented_arrays(index.label_out)
        in_flat, in_indptr = segmented_arrays(index.label_in)
        self.in_keys = segment_keys(in_flat, in_indptr, self.universe)

    def classify(self, sources, targets):
        num = len(sources)
        lens = self.out_indptr[sources + 1] - self.out_indptr[sources]
        total = int(lens.sum())
        if total == 0 or self.in_keys.size == 0:
            positive = np.zeros(num, dtype=bool)
            return positive, ~positive
        owners = np.repeat(np.arange(num, dtype=np.int64), lens)
        ends = np.cumsum(lens)
        offsets = np.arange(total, dtype=np.int64) - np.repeat(
            ends - lens, lens
        )
        ranks = self.out_flat[self.out_indptr[sources][owners] + offsets]
        keys = targets[owners] * np.int64(self.universe) + ranks
        slots = np.searchsorted(self.in_keys, keys, side="left")
        member = slots < self.in_keys.size
        member &= self.in_keys[np.minimum(slots, self.in_keys.size - 1)] == keys
        positive = np.bincount(owners[member], minlength=num) > 0
        return positive, ~positive


def fold_rounds(levels: array) -> list[int]:
    """Fold-survival round of each vertex: ``ν₂(level)``, roots highest.

    One fold keeps every second topological level; a vertex at level ``l``
    survives while ``l`` keeps halving to an integer, i.e. ``ν₂(l)``
    times.  Level-0 vertices (roots) survive every fold; we cap their
    round one above the maximum achievable valuation.
    """
    if not levels:
        return []
    max_level = max(levels)
    cap = max_level.bit_length() + 1
    rounds = []
    for level in levels:
        if level == 0:
            rounds.append(cap)
        else:
            rounds.append((level & -level).bit_length() - 1)
    return rounds


class TFLabelIndex(ReachabilityIndex):
    """TF-Label: pruned 2-hop labels in topological-folding order.

    Parameters
    ----------
    graph:
        The input DAG.
    label_budget_entries:
        Optional cap on the total number of label entries; exceeding it
        aborts construction with reason ``"label-budget"``, emulating the
        resource failures the paper observed on some large synthetic
        datasets.
    """

    method_name = "tf-label"

    def __init__(
        self,
        graph: DiGraph,
        label_budget_entries: int | None = None,
    ) -> None:
        super().__init__(graph)
        self._label_budget = label_budget_entries
        # Labels are lists of hub *ranks*, ascending (hubs processed in
        # rank order append monotonically).
        self.label_out: list[array] = []
        self.label_in: list[array] = []

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        levels = compute_levels(graph)
        rounds = fold_rounds(levels)
        # Higher fold round first; tie-break on degree product (denser
        # hubs cover more pairs), then id for determinism.
        hub_order = sorted(
            range(n),
            key=lambda v: (
                -rounds[v],
                -(graph.out_degree(v) + 1) * (graph.in_degree(v) + 1),
                v,
            ),
        )
        label_out: list[array] = [array("l") for _ in range(n)]
        label_in: list[array] = [array("l") for _ in range(n)]
        self.label_out = label_out
        self.label_in = label_in
        total_entries = 0

        out_indptr, out_indices = graph.out_indptr, graph.out_indices
        in_indptr, in_indices = graph.in_indptr, graph.in_indices
        visited = array("l", [0] * n)
        stamp = 0

        for rank, hub in enumerate(hub_order):
            # Forward pass: hub -> descendants, filling their L_in.
            stamp += 1
            visited[hub] = stamp
            queue: deque[int] = deque([hub])
            while queue:
                w = queue.popleft()
                if w != hub and self._labels_intersect(
                    label_out[hub], label_in[w]
                ):
                    continue  # already covered: prune this branch
                if w != hub:
                    label_in[w].append(rank)
                    total_entries += 1
                for k in range(out_indptr[w], out_indptr[w + 1]):
                    child = out_indices[k]
                    if visited[child] != stamp:
                        visited[child] = stamp
                        queue.append(child)
            # Backward pass: ancestors -> hub, filling their L_out.
            stamp += 1
            visited[hub] = stamp
            queue = deque([hub])
            while queue:
                w = queue.popleft()
                if w != hub and self._labels_intersect(
                    label_out[w], label_in[hub]
                ):
                    continue
                if w != hub:
                    label_out[w].append(rank)
                    total_entries += 1
                for k in range(in_indptr[w], in_indptr[w + 1]):
                    parent = in_indices[k]
                    if visited[parent] != stamp:
                        visited[parent] = stamp
                        queue.append(parent)
            # The hub belongs to both of its own label sets, so pairs
            # (u, hub) and (hub, v) meet at `rank`.
            label_out[hub].append(rank)
            label_in[hub].append(rank)
            total_entries += 2
            if (
                self._label_budget is not None
                and total_entries > self._label_budget
            ):
                raise IndexBuildError(
                    f"TF-Label exceeded {self._label_budget} label entries",
                    reason="label-budget",
                )

    @staticmethod
    def _labels_intersect(out_labels: array, in_labels: array) -> bool:
        """Sorted merge-join: whether the two hub lists share a rank."""
        i = j = 0
        len_out, len_in = len(out_labels), len(in_labels)
        while i < len_out and j < len_in:
            a, b = out_labels[i], in_labels[j]
            if a == b:
                return True
            if a < b:
                i += 1
            else:
                j += 1
        return False

    def index_size_bytes(self) -> int:
        return sum(
            labels.itemsize * len(labels)
            for label_set in (self.label_out, self.label_in)
            for labels in label_set
        )

    def average_label_size(self) -> float:
        """Mean entries per vertex across both label directions."""
        n = self.graph.num_vertices
        if n == 0:
            return 0.0
        total = sum(len(lbl) for lbl in self.label_out)
        total += sum(len(lbl) for lbl in self.label_in)
        return total / n

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        if self._labels_intersect(self.label_out[u], self.label_in[v]):
            stats.positive_cuts += 1
            return True
        stats.negative_cuts += 1
        return False

    def _make_cut_table(self) -> TFLabelCutTable:
        return TFLabelCutTable(self)


register_index(TFLabelIndex)
