"""Dual-Labeling — tree intervals plus a transitive link closure.

Wang, He, Yang, Yu & Yu (ICDE 2006): for *sparse* DAGs, almost all of
the reachability lives in a spanning tree, and only the ``t`` non-tree
edges ("links") carry extra information.  Dual-Labeling answers queries
in O(1)-ish time with an index of size O(n + t²):

* **Tree labels.**  A spanning forest with min-post intervals answers
  "does ``u`` tree-reach ``v``" in O(1) (our positive-cut machinery).
* **Link closure (TLC).**  Link ``l₁ = (a₁, b₁)`` *precedes* link
  ``l₂ = (a₂, b₂)`` when ``b₁`` tree-reaches ``a₂``; the transitive
  closure of this ``t``-vertex relation is stored as one ``t``-bit row
  per link (``closed_row(l)`` includes ``l`` itself).
* **Dual vertex labels.**  Two ``t``-bit sets per vertex:
  ``RL(u) = ⋃ {closed_row(l) : tail(l) ∈ tree-subtree(u)}`` — every link
  whose traversal can end a path starting with a tree walk from ``u`` —
  computed bottom-up over the forest; and
  ``IL(v) = {l : head(l) tree-reaches v}``, computed top-down.

A query is then two O(1) steps::

    r(u, v)  ⇔  tree(u, v)  ∨  RL(u) ∩ IL(v) ≠ ∅

(u tree-walks to some link chain whose last link's head tree-walks to
``v``).  The intersection is one big-int AND, O(t/64) machine words.

The quadratic-in-``t`` closure is the method's documented scaling wall —
on dense graphs ``t ≈ |E|`` and the index explodes, which is why the
original paper targets sparse graphs; ``link_budget`` reproduces that
failure mode deterministically.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.spanning import (
    extract_spanning_forest,
    minpost_intervals_tree,
)
from repro.graph.toposort import kahn_order
from repro.perf.cut_table import CutTable, pack_bigints, view_i64

__all__ = ["DualLabelingIndex", "DualLabelingCutTable"]


class DualLabelingCutTable(CutTable):
    """Dual-Labeling, batched: tree containment OR an RL ∩ IL hit.

    The per-vertex ``t``-bit link sets pack into two ``(n, ceil(t/8))``
    byte matrices; the intersection test for a whole batch is one
    vectorized AND-and-any.  Queries are always decided — no searches.
    """

    def __init__(self, index: "DualLabelingIndex") -> None:
        tree = index._tree
        self.start = view_i64(tree.start)
        self.post = view_i64(tree.post)
        self.rl = pack_bigints(index._rl, index.num_links)
        self.il = pack_bigints(index._il, index.num_links)

    def classify(self, sources, targets):
        positive = (self.start[sources] <= self.start[targets]) & (
            self.post[targets] <= self.post[sources]
        )
        if self.rl.shape[1]:
            positive |= np.any(
                self.rl[sources] & self.il[targets], axis=1
            )
        return positive, ~positive


class DualLabelingIndex(ReachabilityIndex):
    """Dual-Labeling: spanning-tree intervals + t²-bit link closure.

    Parameters
    ----------
    graph:
        The input DAG.
    link_budget:
        Optional cap on the number of non-tree edges ``t``; exceeding it
        aborts construction with reason ``"link-budget"`` (the method is
        designed for sparse graphs where ``t`` is small).
    """

    method_name = "dual-labeling"

    def __init__(
        self,
        graph: DiGraph,
        link_budget: int | None = None,
    ) -> None:
        super().__init__(graph)
        self._link_budget = link_budget
        self.num_links = 0
        self._tree = None  # IntervalLabels over the spanning forest
        self._rl: list[int] = []  # per-vertex t-bit reachable-link sets
        self._il: list[int] = []  # per-vertex t-bit incoming-link sets

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        n = graph.num_vertices
        forest = extract_spanning_forest(graph)
        tree = minpost_intervals_tree(forest)
        self._tree = tree

        # Non-tree edges are the links.
        links: list[tuple[int, int]] = [
            (u, v) for u, v in graph.edges() if forest.parent[v] != u
        ]
        # The same (u, v) may appear once as the tree edge and again as a
        # duplicate; treat duplicates of tree edges as redundant links
        # only if they add reachability — they never do, so drop them.
        links = [(u, v) for u, v in links if not tree.contains(u, v)]
        t = len(links)
        self.num_links = t
        if self._link_budget is not None and t > self._link_budget:
            raise IndexBuildError(
                f"dual-labeling needs {t}^2 closure bits but the link "
                f"budget is {self._link_budget}",
                reason="link-budget",
            )

        # Link-graph closure: closed_row[i] has bit j iff link i's chain
        # can continue into link j (including i itself).  Process links
        # in reverse topological order of their *tails* so every row we
        # merge is already closed: l_i -> l_j requires head(i) to
        # tree-reach tail(j), and tree-reach implies topological order,
        # so ordering rows by tail position works.
        order_rank = array("l", [0] * n)
        for rank, vertex in enumerate(kahn_order(graph)):
            order_rank[vertex] = rank
        link_order = sorted(
            range(t), key=lambda i: order_rank[links[i][0]], reverse=True
        )
        closed = [0] * t
        for i in link_order:
            row = 1 << i
            head_i = links[i][1]
            for j in range(t):
                if j != i and tree.contains(head_i, links[j][0]):
                    row |= closed[j]
            closed[i] = row

        # RL: bottom-up over the forest (children before parents — the
        # forest's min-post order gives exactly that).
        links_by_tail: list[list[int]] = [[] for _ in range(n)]
        links_by_head: list[list[int]] = [[] for _ in range(n)]
        for i, (tail, head) in enumerate(links):
            links_by_tail[tail].append(i)
            links_by_head[head].append(i)

        rl = [0] * n
        by_post = sorted(range(n), key=lambda v: tree.post[v])
        for v in by_post:
            bits = 0
            for i in links_by_tail[v]:
                bits |= closed[i]
            for child in forest.children[v]:
                bits |= rl[child]
            rl[v] = bits

        # IL: top-down (parents before children — reverse post order).
        il = [0] * n
        for v in reversed(by_post):
            parent = forest.parent[v]
            bits = il[parent] if parent != -1 else 0
            for i in links_by_head[v]:
                bits |= 1 << i
            il[v] = bits

        self._rl = rl
        self._il = il

    def index_size_bytes(self) -> int:
        if self._tree is None:
            return 0
        label_bits = sum(bits.bit_length() for bits in self._rl)
        label_bits += sum(bits.bit_length() for bits in self._il)
        return self._tree.memory_bytes() + (label_bits + 7) // 8

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        if self._tree.contains(u, v):
            stats.positive_cuts += 1
            return True
        if self._rl[u] & self._il[v]:
            stats.positive_cuts += 1
            return True
        stats.negative_cuts += 1
        return False

    def _make_cut_table(self) -> DualLabelingCutTable:
        return DualLabelingCutTable(self)


register_index(DualLabelingIndex)
