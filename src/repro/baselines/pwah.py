"""Word-aligned hybrid bit-vector compression (the PWAH scheme's core).

Nuutila's INTERVAL, as modernised by van Schaik & de Moor (SIGMOD 2011),
stores each vertex's compressed transitive closure as a bit vector encoded
with PWAH — a *Partitioned Word-Aligned Hybrid* scheme.  The hybrid idea
(inherited from WAH) is that a stream of bits is chopped into fixed-size
groups, and each encoded word is either

* a **literal** word carrying one group of raw bits, or
* a **fill** word carrying a run length of all-zero or all-one groups.

Long runs — exactly what interval-shaped closures produce — collapse into
single words, which is what lets INTERVAL hold the full closure in memory
at all.  The "partitioned" refinement packs several literal/fill blocks per
64-bit machine word; we implement the scheme with one block per word
(``GROUP_BITS = 63``), which keeps the code transparent while preserving
the compression behaviour the experiments depend on.  All encoded words fit
in 64 bits:

* bit 63 = 0 → literal; bits 0..62 are the group's raw bits;
* bit 63 = 1 → fill; bit 62 is the fill bit value; bits 0..61 count groups.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

__all__ = [
    "GROUP_BITS",
    "compress_intervals",
    "decompress_to_intervals",
    "contains",
    "compressed_size_bytes",
]

GROUP_BITS = 63
_FILL_FLAG = 1 << 63
_FILL_VALUE = 1 << 62
_MAX_RUN = (1 << 62) - 1
_LITERAL_ONES = (1 << GROUP_BITS) - 1


def _emit_fill(words: list[int], bit_value: int, run: int) -> None:
    while run > 0:
        chunk = min(run, _MAX_RUN)
        words.append(_FILL_FLAG | (_FILL_VALUE if bit_value else 0) | chunk)
        run -= chunk


def compress_intervals(
    intervals: Iterable[tuple[int, int]], universe: int
) -> list[int]:
    """Encode a sorted list of disjoint ``[lo, hi]`` intervals over
    ``0 .. universe-1`` as PWAH words.

    The intervals *are* the set bits; everything else is zero.  Runs of
    all-zero and all-one groups become fill words, mixed groups become
    literals.
    """
    words: list[int] = []
    num_groups = (universe + GROUP_BITS - 1) // GROUP_BITS

    interval_iter = iter(intervals)
    current = next(interval_iter, None)
    zero_run = 0
    one_run = 0

    for group_index in range(num_groups):
        base = group_index * GROUP_BITS
        top = min(base + GROUP_BITS, universe) - 1
        literal = 0
        # Collect the bits of every interval overlapping this group.
        while current is not None:
            lo, hi = current
            if lo > top:
                break
            seg_lo = max(lo, base)
            seg_hi = min(hi, top)
            width = seg_hi - seg_lo + 1
            literal |= ((1 << width) - 1) << (seg_lo - base)
            if hi > top:
                break  # interval continues into the next group
            current = next(interval_iter, None)

        group_width = top - base + 1
        full = (1 << group_width) - 1
        if literal == 0:
            if one_run:
                _emit_fill(words, 1, one_run)
                one_run = 0
            zero_run += 1
        elif literal == full and group_width == GROUP_BITS:
            if zero_run:
                _emit_fill(words, 0, zero_run)
                zero_run = 0
            one_run += 1
        else:
            if zero_run:
                _emit_fill(words, 0, zero_run)
                zero_run = 0
            if one_run:
                _emit_fill(words, 1, one_run)
                one_run = 0
            words.append(literal)
    if zero_run:
        _emit_fill(words, 0, zero_run)
    if one_run:
        _emit_fill(words, 1, one_run)
    return words


def _iter_groups(words: Iterable[int]) -> Iterator[int]:
    """Yield each 63-bit group's literal value, expanding fills."""
    for word in words:
        if word & _FILL_FLAG:
            value = _LITERAL_ONES if word & _FILL_VALUE else 0
            for _ in range(word & _MAX_RUN):
                yield value
        else:
            yield word


def decompress_to_intervals(words: list[int]) -> list[tuple[int, int]]:
    """Decode PWAH words back into sorted disjoint ``[lo, hi]`` intervals."""
    intervals: list[tuple[int, int]] = []
    run_start = -1
    position = 0
    for group in _iter_groups(words):
        for offset in range(GROUP_BITS):
            bit = (group >> offset) & 1
            if bit and run_start < 0:
                run_start = position + offset
            elif not bit and run_start >= 0:
                intervals.append((run_start, position + offset - 1))
                run_start = -1
        position += GROUP_BITS
    if run_start >= 0:
        intervals.append((run_start, position - 1))
    return intervals


def contains(words: list[int], position: int) -> bool:
    """Membership test on the compressed form (linear word scan).

    A fill word skips its whole run in O(1), so interval-shaped sets are
    probed in O(#words) — the access pattern INTERVAL's PWAH mode uses.
    """
    target_group = position // GROUP_BITS
    offset = position % GROUP_BITS
    group_index = 0
    for word in words:
        if word & _FILL_FLAG:
            run = word & _MAX_RUN
            if group_index + run > target_group:
                return bool(word & _FILL_VALUE)
            group_index += run
        else:
            if group_index == target_group:
                return bool((word >> offset) & 1)
            group_index += 1
    return False


def compressed_size_bytes(words: list[int]) -> int:
    """Size of the encoded stream: 8 bytes per 64-bit word."""
    return 8 * len(words)
