"""Synthetic stand-ins for the paper's eleven real datasets (Table 1).

The original graphs (Arxiv ... Uniprot150m) were distributed from the
authors' site, which is unavailable offline, so each dataset is replaced by
a *parameterised generator* matching its published shape: |V| and |E|
(optionally scaled down), root/leaf balance, density regime and depth.
DESIGN.md §3 documents why shape, not identity, is what the evaluation
depends on.

Each spec records the **paper's** Table 1 row, so EXPERIMENTS.md can print
paper-vs-measured statistics side by side.

Shape families (see :mod:`repro.graph.generators`):

* ``citation`` — dense, clustered, heavy-tailed in-degree (Arxiv,
  Citeseer, Pubmed, Citeseerx, Cit-Patents);
* ``ontology`` — sparse, deep, few roots / many leaves (GO);
* ``tree-like`` — |E| ≈ |V| taxonomies (the Uniprot family; the paper's
  originals have millions of roots and 4 leaves, i.e. our generator's
  natural orientation *reversed* — the specs reverse the graph — with a
  ``hub_bias`` matching each row's root fraction);
* ``fan-in`` — a thin core fed by a huge fringe of sources (Yago's 78%
  roots; Go-Uniprot's 99.7% annotation vertices pointing into the GO
  core);
* ``random`` — uniform DAG (available for custom specs).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import (
    citation_dag,
    fan_in_dag,
    ontology_dag,
    random_dag,
    tree_like_dag,
)

__all__ = ["RealGraphSpec", "REAL_GRAPH_SPECS", "load_real_stand_in", "real_graph_names", "small_real_graph_names", "large_real_graph_names"]


@dataclass(frozen=True)
class RealGraphSpec:
    """Shape description of one Table 1 dataset.

    ``paper_*`` fields are the published values (what Table 1 reports);
    ``family``/``family_params`` select the stand-in generator;
    ``default_scale`` shrinks |V| for interactive runs (1.0 = paper size).
    """

    name: str
    paper_vertices: int
    paper_edges: int
    paper_clustering: float
    paper_eff_diameter: float
    paper_roots: int
    paper_leaves: int
    family: str
    default_scale: float
    reverse: bool = False
    family_params: tuple[tuple[str, float], ...] = ()

    def scaled_vertices(self, scale: float | None = None) -> int:
        """|V| after applying ``scale`` (default: the spec's own)."""
        factor = self.default_scale if scale is None else scale
        return max(16, round(self.paper_vertices * factor))


# Paper Table 1 (vertex/edge counts as printed; the five small graphs are
# full-size by default, the six large ones scaled down for pure Python).
REAL_GRAPH_SPECS: dict[str, RealGraphSpec] = {
    spec.name: spec
    for spec in (
        RealGraphSpec(
            name="arxiv",
            paper_vertices=6000,
            paper_edges=66707,
            paper_clustering=0.35,
            paper_eff_diameter=5.48,
            paper_roots=961,
            paper_leaves=624,
            family="citation",
            default_scale=1.0,
            family_params=(
                ("avg_out_degree", 11.1),
                ("leaf_fraction", 0.10),
                ("triadic_probability", 0.5),
            ),
        ),
        RealGraphSpec(
            name="yago",
            paper_vertices=6642,
            paper_edges=42392,
            paper_clustering=0.24,
            paper_eff_diameter=6.57,
            paper_roots=5176,
            paper_leaves=264,
            family="fan-in",
            default_scale=1.0,
            family_params=(("root_fraction", 0.78), ("avg_degree", 7.5)),
        ),
        RealGraphSpec(
            name="go",
            paper_vertices=6793,
            paper_edges=13361,
            paper_clustering=0.07,
            paper_eff_diameter=10.92,
            paper_roots=64,
            paper_leaves=3687,
            family="ontology",
            default_scale=1.0,
            family_params=(("num_roots", 64), ("avg_parents", 2.0)),
        ),
        RealGraphSpec(
            name="pubmed",
            paper_vertices=9000,
            paper_edges=40028,
            paper_clustering=0.19,
            paper_eff_diameter=6.83,
            paper_roots=2069,
            paper_leaves=4402,
            family="citation",
            default_scale=1.0,
            family_params=(
                ("avg_out_degree", 8.7),
                ("leaf_fraction", 0.49),
                ("triadic_probability", 0.4),
            ),
        ),
        RealGraphSpec(
            name="citeseer",
            paper_vertices=10720,
            paper_edges=44258,
            paper_clustering=0.28,
            paper_eff_diameter=8.36,
            paper_roots=4572,
            paper_leaves=1368,
            family="citation",
            default_scale=1.0,
            family_params=(
                ("avg_out_degree", 4.7),
                ("leaf_fraction", 0.13),
                ("triadic_probability", 0.45),
            ),
        ),
        RealGraphSpec(
            name="uniprot22m",
            paper_vertices=1595444,
            paper_edges=1595442,
            paper_clustering=0.09,
            paper_eff_diameter=10.53,
            paper_roots=1354225,
            paper_leaves=4,
            family="tree-like",
            default_scale=0.01,
            reverse=True,
            family_params=(("hub_bias", 0.85),),
        ),
        RealGraphSpec(
            name="citeseerx",
            paper_vertices=6540400,
            paper_edges=15011260,
            paper_clustering=0.06,
            paper_eff_diameter=4.8,
            paper_roots=567149,
            paper_leaves=5740722,
            family="citation",
            default_scale=0.001,
            family_params=(
                ("avg_out_degree", 19.0),
                ("leaf_fraction", 0.88),
                ("triadic_probability", 0.3),
                ("preferential_probability", 0.1),
            ),
        ),
        RealGraphSpec(
            name="go-uniprot",
            paper_vertices=6967956,
            paper_edges=34770235,
            paper_clustering=0.0,
            paper_eff_diameter=4.41,
            paper_roots=6946721,
            paper_leaves=4,
            family="fan-in",
            default_scale=0.001,
            family_params=(
                ("root_fraction", 0.997),
                ("avg_degree", 5.0),
                ("core_avg_degree", 2.0),
            ),
        ),
        RealGraphSpec(
            name="uniprot100m",
            paper_vertices=16087295,
            paper_edges=16087293,
            paper_clustering=0.0,
            paper_eff_diameter=7.0,
            paper_roots=14499959,
            paper_leaves=4,
            family="tree-like",
            default_scale=0.001,
            reverse=True,
            family_params=(("hub_bias", 0.90),),
        ),
        RealGraphSpec(
            name="uniprot150m",
            paper_vertices=25037600,
            paper_edges=25037598,
            paper_clustering=0.0,
            paper_eff_diameter=7.0,
            paper_roots=21650005,
            paper_leaves=4,
            family="tree-like",
            default_scale=0.001,
            reverse=True,
            family_params=(("hub_bias", 0.86),),
        ),
        RealGraphSpec(
            name="cit-patents",
            paper_vertices=3774768,
            paper_edges=16518948,
            paper_clustering=0.09,
            paper_eff_diameter=9.4,
            paper_roots=515785,
            paper_leaves=1685423,
            family="citation",
            default_scale=0.001,
            family_params=(
                ("avg_out_degree", 8.0),
                ("leaf_fraction", 0.45),
                ("triadic_probability", 0.35),
                ("preferential_probability", 0.25),
            ),
        ),
    )
}

_SMALL = ("arxiv", "yago", "go", "pubmed", "citeseer")


def real_graph_names() -> list[str]:
    """All stand-in names, small graphs first (paper's table order)."""
    return list(_SMALL) + [n for n in REAL_GRAPH_SPECS if n not in _SMALL]


def small_real_graph_names() -> list[str]:
    """The five < 100k-vertex datasets."""
    return list(_SMALL)


def large_real_graph_names() -> list[str]:
    """The six large datasets (scaled stand-ins)."""
    return [n for n in REAL_GRAPH_SPECS if n not in _SMALL]


def load_real_stand_in(
    name: str, scale: float | None = None, seed: int = 0
) -> DiGraph:
    """Generate the stand-in DAG for dataset ``name``.

    ``scale`` multiplies the paper's |V| (default: the spec's
    ``default_scale``); edge counts scale along through the family's
    density parameters.  Deterministic given ``seed``.
    """
    try:
        spec = REAL_GRAPH_SPECS[name]
    except KeyError:
        known = ", ".join(real_graph_names())
        raise DatasetError(f"unknown dataset {name!r}; known: {known}") from None

    n = spec.scaled_vertices(scale)
    params = dict(spec.family_params)
    if spec.family == "citation":
        graph = citation_dag(
            n,
            avg_out_degree=params.get("avg_out_degree", 5.0),
            leaf_fraction=params.get("leaf_fraction", 0.1),
            triadic_probability=params.get("triadic_probability", 0.35),
            preferential_probability=params.get(
                "preferential_probability", 0.7
            ),
            seed=seed,
        )
    elif spec.family == "ontology":
        graph = ontology_dag(
            n,
            num_roots=int(params.get("num_roots", 1)),
            avg_parents=params.get("avg_parents", 1.5),
            seed=seed,
        )
    elif spec.family == "tree-like":
        graph = tree_like_dag(
            n,
            extra_edge_fraction=params.get("extra_edge_fraction", 0.0),
            hub_bias=params.get("hub_bias", 0.0),
            seed=seed,
        )
    elif spec.family == "fan-in":
        graph = fan_in_dag(
            n,
            root_fraction=params.get("root_fraction", 0.75),
            avg_degree=params.get("avg_degree", 6.0),
            core_avg_degree=params.get("core_avg_degree", 2.0),
            seed=seed,
        )
    elif spec.family == "random":
        graph = random_dag(
            n, avg_degree=params.get("avg_degree", 1.0), seed=seed
        )
    else:  # pragma: no cover - specs are static
        raise DatasetError(f"spec {name!r} has unknown family {spec.family!r}")

    if spec.reverse:
        graph = graph.reversed()
    graph.name = name
    return graph
