"""Query workload generation.

The paper's methodology (§4.2.1): "we randomly selected 500k pairs of
vertices" per dataset — :func:`random_pairs` reproduces that scheme with a
configurable count.  Targeted generators complement it for tests and
ablations:

* :func:`positive_pairs` — pairs guaranteed reachable (random forward
  walks), exercising the search path of online-search indexes;
* :func:`negative_pairs` — pairs guaranteed unreachable (rejection
  against a DFS oracle), exercising the cuts;
* :func:`equal_pairs` — reflexive queries;
* :func:`mixed_workload` — a labelled blend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from random import Random

from repro.exceptions import WorkloadError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import dfs_reachable

__all__ = [
    "random_pairs",
    "positive_pairs",
    "negative_pairs",
    "equal_pairs",
    "Workload",
    "mixed_workload",
    "save_pairs",
    "load_pairs",
]


def random_pairs(
    graph: DiGraph, count: int, seed: int = 0
) -> list[tuple[int, int]]:
    """``count`` uniform random ordered vertex pairs — the paper's workload."""
    n = graph.num_vertices
    if n == 0 and count > 0:
        raise WorkloadError("cannot sample pairs from an empty graph")
    rng = Random(seed)
    return [(rng.randrange(n), rng.randrange(n)) for _ in range(count)]


def positive_pairs(
    graph: DiGraph, count: int, seed: int = 0, max_walk: int = 64
) -> list[tuple[int, int]]:
    """``count`` reachable pairs, sampled by random forward walks.

    Each pair is the start and a strictly later vertex of a random walk,
    so ``r(u, v)`` always holds and path lengths vary.  Raises
    :class:`WorkloadError` if the graph has no edges.
    """
    if graph.num_edges == 0:
        raise WorkloadError("positive pairs need at least one edge")
    rng = Random(seed)
    n = graph.num_vertices
    indptr, indices = graph.out_indptr, graph.out_indices
    pairs: list[tuple[int, int]] = []
    while len(pairs) < count:
        u = rng.randrange(n)
        w = u
        hops = rng.randrange(1, max_walk + 1)
        last = u
        for _ in range(hops):
            degree = indptr[w + 1] - indptr[w]
            if degree == 0:
                break
            w = indices[indptr[w] + rng.randrange(degree)]
            last = w
        if last != u:
            pairs.append((u, last))
    return pairs


def negative_pairs(
    graph: DiGraph, count: int, seed: int = 0, max_attempts_factor: int = 200
) -> list[tuple[int, int]]:
    """``count`` unreachable pairs via rejection against a DFS oracle.

    Intended for small/medium graphs (each rejection costs one DFS).
    Raises :class:`WorkloadError` when sampling keeps hitting reachable
    pairs — e.g. on a complete DAG.
    """
    n = graph.num_vertices
    if n < 2:
        raise WorkloadError("negative pairs need at least two vertices")
    rng = Random(seed)
    pairs: list[tuple[int, int]] = []
    attempts = 0
    limit = max_attempts_factor * max(count, 1)
    while len(pairs) < count:
        attempts += 1
        if attempts > limit:
            raise WorkloadError(
                f"could not find {count} unreachable pairs in {limit} attempts"
            )
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and not dfs_reachable(graph, u, v):
            pairs.append((u, v))
    return pairs


def equal_pairs(graph: DiGraph, count: int, seed: int = 0) -> list[tuple[int, int]]:
    """``count`` reflexive pairs ``(v, v)``."""
    n = graph.num_vertices
    if n == 0 and count > 0:
        raise WorkloadError("cannot sample pairs from an empty graph")
    rng = Random(seed)
    return [(v, v) for v in (rng.randrange(n) for _ in range(count))]


@dataclass(frozen=True)
class Workload:
    """A named batch of reachability queries."""

    name: str
    pairs: list[tuple[int, int]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.pairs)


def save_pairs(
    pairs: list[tuple[int, int]], path, comment: str = ""
) -> None:
    """Write a query set to disk, one ``u v`` pair per line.

    The paper distributes its 500k-pair test sets alongside the
    datasets; this is the same interchange shape (and the same format
    :func:`repro.graph.io.read_edge_list` uses, so tooling is shared).
    """
    with open(path, "w", encoding="utf-8") as handle:
        if comment:
            handle.write(f"# {comment}\n")
        for u, v in pairs:
            handle.write(f"{u} {v}\n")


def load_pairs(path) -> list[tuple[int, int]]:
    """Read a query set written by :func:`save_pairs`."""
    pairs: list[tuple[int, int]] = []
    with open(path, encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) != 2:
                raise WorkloadError(
                    f"{path}:{line_no}: expected 'u v', got {stripped!r}"
                )
            pairs.append((int(parts[0]), int(parts[1])))
    return pairs


def mixed_workload(
    graph: DiGraph,
    count: int,
    positive_fraction: float = 0.3,
    seed: int = 0,
) -> Workload:
    """A blend of guaranteed-positive and uniform random pairs.

    Uniform pairs on sparse DAGs are almost all negative (the paper notes
    online-search differences only show on positive / false-positive
    queries), so ablations use this to control the positive rate.
    """
    num_positive = round(count * positive_fraction)
    pairs = positive_pairs(graph, num_positive, seed=seed)
    pairs += random_pairs(graph, count - num_positive, seed=seed + 1)
    Random(seed + 2).shuffle(pairs)
    return Workload(name=f"mixed-{positive_fraction:.0%}", pairs=pairs)
