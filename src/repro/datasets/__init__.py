"""Datasets: stand-ins for the paper's real graphs, synthetics, workloads."""

from repro.datasets.queries import (
    Workload,
    equal_pairs,
    load_pairs,
    mixed_workload,
    negative_pairs,
    positive_pairs,
    random_pairs,
    save_pairs,
)
from repro.datasets.real_stand_ins import (
    REAL_GRAPH_SPECS,
    RealGraphSpec,
    large_real_graph_names,
    load_real_stand_in,
    real_graph_names,
    small_real_graph_names,
)
from repro.datasets.registry import dataset_names, load_dataset
from repro.datasets.synthetic import (
    SYNTHETIC_SPECS,
    SyntheticSpec,
    load_synthetic,
    synthetic_names,
)

__all__ = [
    "load_dataset",
    "dataset_names",
    "load_real_stand_in",
    "real_graph_names",
    "small_real_graph_names",
    "large_real_graph_names",
    "REAL_GRAPH_SPECS",
    "RealGraphSpec",
    "load_synthetic",
    "synthetic_names",
    "SYNTHETIC_SPECS",
    "SyntheticSpec",
    "random_pairs",
    "positive_pairs",
    "negative_pairs",
    "equal_pairs",
    "mixed_workload",
    "Workload",
    "save_pairs",
    "load_pairs",
]
