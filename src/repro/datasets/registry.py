"""Unified dataset lookup: one name space over stand-ins and synthetics.

The benchmark harness and the CLI address every dataset by name;
:func:`load_dataset` dispatches to the right generator and
:func:`dataset_names` enumerates everything (real stand-ins first, then the
synthetic suite), so experiment scripts never hard-code generator calls.
"""

from __future__ import annotations

from repro.datasets.real_stand_ins import (
    REAL_GRAPH_SPECS,
    load_real_stand_in,
    real_graph_names,
)
from repro.datasets.synthetic import (
    DEFAULT_SYNTHETIC_SCALE,
    SYNTHETIC_SPECS,
    load_synthetic,
    synthetic_names,
)
from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph

__all__ = ["dataset_names", "load_dataset"]


def dataset_names() -> list[str]:
    """Every addressable dataset name (real stand-ins, then synthetic)."""
    return real_graph_names() + synthetic_names()


def load_dataset(
    name: str, scale: float | None = None, seed: int = 0
) -> DiGraph:
    """Load any dataset by name.

    ``scale`` overrides the per-dataset default size factor (1.0 = paper
    size).  Raises :class:`DatasetError` for unknown names.
    """
    if name in REAL_GRAPH_SPECS:
        return load_real_stand_in(name, scale=scale, seed=seed)
    if name in SYNTHETIC_SPECS:
        effective = DEFAULT_SYNTHETIC_SCALE if scale is None else scale
        return load_synthetic(name, scale=effective, seed=seed)
    known = ", ".join(dataset_names())
    raise DatasetError(f"unknown dataset {name!r}; known: {known}")
