"""The paper's synthetic dataset suite (Table 2), scaled for pure Python.

Table 2 lists random DAGs named after their vertex count: ``10M`` ...
``100M``, ``200M`` and ``500M`` with average degree 1 (|E| = |V|), plus the
dense variants ``50M-5``, ``50M-10``, ``100M-5`` and ``100M-10`` with
average degree 5 and 10.  All are uniform random DAGs
(:func:`repro.graph.generators.random_dag`).

The default ``scale`` is 1/1000 — ``10M`` becomes a 10,000-vertex DAG — so
a full sweep runs in seconds; pass ``scale=1.0`` to generate paper-size
graphs (memory permitting).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DatasetError
from repro.graph.digraph import DiGraph
from repro.graph.generators import random_dag

__all__ = [
    "SyntheticSpec",
    "SYNTHETIC_SPECS",
    "synthetic_names",
    "load_synthetic",
    "DEFAULT_SYNTHETIC_SCALE",
]

DEFAULT_SYNTHETIC_SCALE = 0.001


@dataclass(frozen=True)
class SyntheticSpec:
    """One Table 2 row: a vertex count and an average degree."""

    name: str
    paper_vertices: int
    avg_degree: float

    @property
    def paper_edges(self) -> int:
        return round(self.paper_vertices * self.avg_degree)

    def scaled_vertices(self, scale: float) -> int:
        return max(16, round(self.paper_vertices * scale))


def _million(n: float) -> int:
    return round(n * 1_000_000)


SYNTHETIC_SPECS: dict[str, SyntheticSpec] = {
    spec.name: spec
    for spec in (
        [
            SyntheticSpec(f"{n}M", _million(n), 1.0)
            for n in (10, 20, 30, 40, 50, 60, 70, 80, 90, 100, 200, 500)
        ]
        + [
            SyntheticSpec("50M-5", _million(50), 5.0),
            SyntheticSpec("50M-10", _million(50), 10.0),
            SyntheticSpec("100M-5", _million(100), 5.0),
            SyntheticSpec("100M-10", _million(100), 10.0),
        ]
    )
}


def synthetic_names() -> list[str]:
    """Names in Table 2 order (sparse sweep, then dense variants)."""
    return list(SYNTHETIC_SPECS)


def load_synthetic(
    name: str,
    scale: float = DEFAULT_SYNTHETIC_SCALE,
    seed: int = 0,
) -> DiGraph:
    """Generate synthetic dataset ``name`` at ``scale`` of its paper size."""
    try:
        spec = SYNTHETIC_SPECS[name]
    except KeyError:
        known = ", ".join(SYNTHETIC_SPECS)
        raise DatasetError(f"unknown synthetic {name!r}; known: {known}") from None
    n = spec.scaled_vertices(scale)
    graph = random_dag(n, avg_degree=spec.avg_degree, seed=seed, name=name)
    return graph
