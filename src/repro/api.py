"""repro.api — the stable, versioned surface of the package.

Everything here is a supported, documented entry point; internals may
move between modules, but these names hold still.  Import from here when
embedding the oracle in another system::

    from repro import api

    oracle = api.build_index(edges)                  # any directed graph
    result = api.reach(oracle, 0, 42)                # typed ReachResult
    server = api.ReachServer(oracle, api.ServeConfig(port=8080))

The surface, by concern:

* **Building** — :func:`build_index` (the :class:`Reachability` facade:
  condensation, method registry, optional search pool), plus the raw
  index persistence pair :func:`save_index` / :func:`load_index` for
  build-once-serve-many deployments.
* **Querying** — :func:`reach` / :func:`reach_many` return typed
  :class:`ReachResult` objects (pair, JSON-safe answer, verdict,
  optional stats); the facade's own ``reachable`` / ``reachable_many``
  remain the lean bool/ternary hot path.
* **Serving** — :class:`ReachServer` behind :class:`ServeConfig`, the
  asyncio tier with request coalescing, and the load-generation entry
  points :func:`run_loadgen` / :func:`compare_serving`.
* **Sharding** — :class:`ShardService` behind :class:`ShardConfig`, the
  fault-tolerant multi-process deployment (supervised workers, deadline
  propagation, failover, degradation); it quacks like the facade, so
  ``ReachServer(ShardService(...))`` serves a cluster.
* **Resilience** — :class:`QueryBudget` and the :data:`UNKNOWN`
  sentinel, because degraded answers are part of the contract.

``repro.serve`` and the metrics/span machinery stay importable directly;
this module only curates, it does not wrap.
"""

from __future__ import annotations

from repro.baselines.base import QueryStats, available_methods
from repro.core.persistence import load_index, save_index
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.resilience import UNKNOWN, QueryBudget
from repro.serve import (
    ReachResult,
    ReachServer,
    ServeConfig,
    compare_serving,
    run_loadgen,
    verdict_of,
)
from repro.shard import ShardConfig, ShardService

__all__ = [
    # building
    "build_index",
    "save_index",
    "load_index",
    "Reachability",
    "DiGraph",
    "available_methods",
    # querying
    "reach",
    "reach_many",
    "ReachResult",
    "verdict_of",
    "QueryStats",
    # serving
    "ReachServer",
    "ServeConfig",
    "run_loadgen",
    "compare_serving",
    # sharding
    "ShardService",
    "ShardConfig",
    # resilience
    "QueryBudget",
    "UNKNOWN",
    "ReproError",
]


def _facade():
    # Late import: repro/__init__ imports this module at its bottom, so
    # pulling Reachability at module import time would be circular.
    from repro import Reachability

    return Reachability


def build_index(
    graph,
    method: str = "feline",
    workers: int = 0,
    observers: int = 0,
    kernel: str | None = None,
    shared_pages: bool = False,
    **params,
):
    """Build a ready-to-query oracle over any directed graph.

    ``graph`` is a :class:`DiGraph` or an iterable of ``(u, v)`` edges;
    cycles are condensed automatically.  Returns a
    :class:`~repro.Reachability` — pass it straight to
    :class:`ReachServer` or query it in process.  ``workers >= 2``
    attaches a survivor-search pool for batch traffic; ``observers >= 1``
    builds an O'Reach-style observer layer consulted before the index's
    own cuts on every query; ``kernel`` selects the survivor-path search
    backend (``"auto"``/``"numba"``/``"numpy"``/``"python"``, all
    bit-identical) and ``shared_pages=True`` moves the read-only index
    pages into shared memory (see ``docs/PERFORMANCE.md``).
    """
    return _facade()(
        graph,
        method=method,
        workers=workers,
        observers=observers,
        kernel=kernel,
        shared_pages=shared_pages,
        **params,
    )


def reach(
    oracle, u: int, v: int, budget: QueryBudget | None = None
) -> ReachResult:
    """One reachability query as a typed :class:`ReachResult`.

    Wraps ``oracle.reachable(u, v, budget=...)``; a budget-degraded
    query yields ``verdict="unknown"`` with ``answer=None`` rather than
    raising (unless the budget's own policy raises).
    """
    return ReachResult.from_answer(u, v, oracle.reachable(u, v, budget=budget))


def reach_many(
    oracle, pairs, budget: QueryBudget | None = None
) -> list[ReachResult]:
    """A batch of queries as typed results, aligned with ``pairs``.

    Routed through ``oracle.reachable_many`` so vectorized engines
    answer the whole batch in one pass.
    """
    pairs = list(pairs)
    answers = oracle.reachable_many(pairs, budget=budget)
    return [
        ReachResult.from_answer(u, v, answer)
        for (u, v), answer in zip(pairs, answers)
    ]


def __getattr__(name: str):
    if name == "Reachability":
        return _facade()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
