"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``methods``
    List every registered reachability method.
``datasets``
    List every addressable dataset name.
``query GRAPH.edges u v [--method M] [--index FILE]``
    Load an edge-list file and answer one reachability query; with
    ``--index`` the FELINE coordinates are loaded from ``FILE`` instead
    of rebuilt (pass ``--mmap`` to page them in lazily).  ``--max-steps``
    / ``--deadline-ms`` attach a query budget, with ``--on-budget``
    choosing the degradation (``raise``, ``unknown``, ``fallback``); an
    unanswered query prints ``unknown`` and exits 3.
``build GRAPH.edges INDEX.feline``
    Build a FELINE index for an edge-list graph (must be a DAG after
    condensation is *not* applied here — build works on DAGs) and save
    it in the binary format of :mod:`repro.core.persistence`.
``verify-index GRAPH.edges INDEX.feline [--sample N] [--mmap]``
    Load a saved index (checksums verified for v2 files) and check the
    Theorem 1 soundness invariants against the graph; exits 0 when the
    index is sound, 1 on an integrity violation, 2 when the file itself
    is unreadable (bad magic, truncation, checksum mismatch).
``bench EXPERIMENT [--scale S] [--queries N] [--runs R] [--metrics-out P] [--trace-out P]``
    Regenerate a paper artifact (``t1``..``t5``, ``f10``..``f17``,
    ``ablation-heuristics``, ``ablation-filters``, or ``all``); with
    ``--metrics-out PATH`` the run executes with metrics enabled and
    writes a JSON-lines export to ``PATH`` plus a Prometheus text export
    next to it (``.prom`` suffix); with ``--trace-out PATH`` spans are
    collected and written as Chrome ``trace_event`` JSON that
    https://ui.perfetto.dev opens directly.
``explain GRAPH.edges u v [--method M]``
    Answer one query *with provenance*: which O(1) cut fired (negative
    coordinate cut, level filter, positive-cut interval) or how far the
    refined online search went, the structures consulted, and the
    elapsed time.  Budget flags as in ``query``.  Exit codes mirror
    ``query`` (0 reachable, 1 not, 3 unknown).
``serve GRAPH.edges [--method M] [--port P] [--warm N] [--slow-ms T]``
    Build an index with metrics on, warm it with ``N`` random queries,
    and serve *query traffic* from the asyncio tier
    (:class:`repro.serve.ReachServer`): ``GET /reach?u=..&v=..`` and
    ``POST /reach_many`` answered through the request coalescer, plus
    ``/metrics``, ``/healthz`` and ``/slow`` folded in.  Coalescing and
    admission control are tunable (``--max-batch``, ``--max-wait-ms``,
    ``--max-inflight``, ``--overload``), budget flags as in ``query``;
    ``--once`` scrapes each endpoint once and exits (CI smoke).
``loadgen GRAPH.edges [--mode closed|open] [--compare] [--out P]``
    Boot a server over the graph (or target ``--url`` of a running one)
    and drive it with a random-pair workload: closed model
    (``--concurrency`` workers back-to-back) or open model (``--rate``
    arrivals/s), reporting throughput, p50/p95/p99 latency, SLO
    attainment and the server's coalescing histograms.  ``--compare``
    measures an uncoalesced baseline (``max_batch=1``) against the
    coalesced configuration and reports both — ``--out`` writes the JSON
    artifact committed as ``benchmarks/BENCH_pr6.json``.
``shard-serve GRAPH.edges [--shards N] [--port P] [--on-shard-loss POLICY]``
    Serve query traffic from the real multi-process shard deployment
    (:class:`repro.shard.ShardService`): forked workers each own an
    X-slab partition with its own FELINE index, the coordinator routes
    cross-shard pairs over the SCARAB backbone, supervises and restarts
    workers, and degrades per ``--on-shard-loss`` on unrecoverable
    loss.  ``deadline_ms`` on requests propagates end-to-end;
    ``--on-deadline gateway-timeout`` renders deadline-degraded answers
    as structured 504s.  ``--once`` scrapes each endpoint and exits.
``trace URL [--trace-id HEX] [--json] [--out P]``
    Fetch one stitched distributed trace from a server started with
    ``--trace`` (``serve`` or ``shard-serve``) and render it as an
    indented tree — spans from the HTTP edge, the coalescer, shard
    RPCs and worker processes under one trace id.  ``--out`` writes
    Chrome ``trace_event`` JSON for https://ui.perfetto.dev.
``chaos-drill GRAPH.edges [--shards N] [--chaos-s T] [--out P]``
    The kill-based chaos suite: SIGKILL (and occasionally SIGSTOP)
    random shard workers under live deadline-bounded traffic, assert
    every answer is correct-or-unknown and on time, then halt a shard
    permanently and measure degraded-mode throughput.  ``--out`` writes
    the JSON report committed as ``benchmarks/BENCH_pr7.json``; exits
    non-zero if the fault-tolerance contract is violated.
``stats GRAPH.edges [--method M] [--queries N] [--seed S] [--metrics-out P]``
    Build an index, answer a random workload, and print the query-stats
    breakdown (which cut answered how many queries), build-phase
    timings, and query-latency percentiles; optionally export the
    metrics like ``bench --metrics-out``.
``validate GRAPH.edges [--queries N]``
    Cross-check several index methods against DFS ground truth on the
    given graph; exits non-zero on any disagreement.
``recommend GRAPH.edges [--query-heavy]``
    Print the advised index method for the graph, with the features and
    rule behind the choice.
"""

from __future__ import annotations

import argparse
import os
import sys
from collections.abc import Callable

from repro import Reachability, available_methods, obs
from repro.bench import runner
from repro.datasets.registry import dataset_names
from repro.graph.io import read_edge_list

__all__ = ["main"]

_EXPERIMENTS: dict[str, Callable[..., runner.ExperimentReport]] = {
    "t1": runner.table1_datasets,
    "t2": runner.table2_synthetic,
    "t3": runner.table3_real,
    "t4": runner.table4_feline_variants,
    "t5": runner.table5_scarab,
    "f10": runner.fig10_cd_construction,
    "f11": runner.fig11_cd_query,
    "f12": runner.fig12_index_plots,
    "f13": runner.fig13_synthetic_construction,
    "f14": runner.fig14_synthetic_query,
    "f15": runner.fig15_index_sizes_real,
    "f16": runner.fig16_index_sizes_synthetic,
    "f17": runner.fig17_cd_scarab,
    "ablation-heuristics": runner.ablation_y_heuristics,
    "ablation-filters": runner.ablation_filters,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FELINE reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered reachability methods")
    sub.add_parser("datasets", help="list dataset names")

    def add_budget_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-steps",
            type=int,
            default=None,
            help="budget: cap the online search at this many expanded vertices",
        )
        p.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            help="budget: wall-clock deadline for the query, in milliseconds",
        )
        p.add_argument(
            "--on-budget",
            choices=["raise", "unknown", "fallback"],
            default="unknown",
            help="what budget exhaustion degrades to (default: unknown)",
        )

    def add_kernel_arg(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--kernel",
            choices=["auto", "numba", "numpy", "python"],
            default=None,
            help="survivor-path search-kernel backend (default auto: "
            "numba when installed, else numpy; all backends are "
            "bit-identical — see docs/PERFORMANCE.md)",
        )

    query = sub.add_parser("query", help="answer one reachability query")
    query.add_argument("graph", help="edge-list file (u v per line)")
    query.add_argument("source", type=int)
    query.add_argument("target", type=int)
    query.add_argument("--method", default="feline")
    query.add_argument(
        "--index", default=None, help="saved FELINE index file to reuse"
    )
    query.add_argument(
        "--mmap", action="store_true", help="memory-map the saved index"
    )
    add_kernel_arg(query)
    add_budget_args(query)

    explain = sub.add_parser(
        "explain", help="answer one query with verdict provenance"
    )
    explain.add_argument("graph", help="edge-list file (u v per line)")
    explain.add_argument("source", type=int)
    explain.add_argument("target", type=int)
    explain.add_argument("--method", default="feline")
    explain.add_argument(
        "--json", action="store_true", help="print the explanation as JSON"
    )
    add_kernel_arg(explain)
    add_budget_args(explain)

    def add_serve_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-batch",
            type=int,
            default=64,
            help="coalescer flush threshold in pairs; 1 disables "
            "coalescing (default 64)",
        )
        p.add_argument(
            "--max-wait-ms",
            type=float,
            default=0.0,
            help="coalescer window: longest a request waits for batch "
            "mates (default 0: flush on the next event-loop tick)",
        )
        p.add_argument(
            "--max-inflight",
            type=int,
            default=1024,
            help="admission cap on admitted-but-unanswered pairs "
            "(default 1024)",
        )
        p.add_argument(
            "--overload",
            choices=["shed", "unknown"],
            default="shed",
            help="over-cap requests: shed (503 + Retry-After) or "
            "unknown (immediate degraded verdict; default shed)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=0,
            help="survivor-search worker processes for batch queries "
            "(default 0: in-process; see docs/PERFORMANCE.md)",
        )
        p.add_argument(
            "--observers",
            type=int,
            default=0,
            help="O'Reach-style supporting vertices consulted before "
            "the index's own cuts (default 0: none; see "
            "docs/PERFORMANCE.md)",
        )
        p.add_argument(
            "--trace",
            action="store_true",
            help="distributed span tracing: every request gets a "
            "trace_id (X-Trace-Id header), /trace serves stitched "
            "trees, and per-stage latency lands in "
            "repro_stage_seconds (see docs/OBSERVABILITY.md)",
        )
        add_kernel_arg(p)

    serve = sub.add_parser(
        "serve", help="serve reachability queries (and the obs triad) over HTTP"
    )
    serve.add_argument("graph", help="edge-list file (u v per line)")
    serve.add_argument("--method", default="feline")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 (default) picks a free port"
    )
    serve.add_argument(
        "--warm",
        type=int,
        default=1000,
        help="random queries answered before serving (default 1000)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=1.0,
        help="slow-query log threshold in milliseconds (default 1.0)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="scrape each endpoint once, print, and exit (smoke tests)",
    )
    add_serve_args(serve)
    add_budget_args(serve)

    loadgen = sub.add_parser(
        "loadgen", help="drive a reachability server with load, report latency"
    )
    loadgen.add_argument("graph", help="edge-list file (u v per line)")
    loadgen.add_argument("--method", default="feline")
    loadgen.add_argument(
        "--mode",
        choices=["closed", "open"],
        default="closed",
        help="workload model: closed (workers back-to-back) or open "
        "(scheduled arrivals; default closed)",
    )
    loadgen.add_argument(
        "--concurrency",
        type=int,
        default=16,
        help="client connections (default 16)",
    )
    loadgen.add_argument(
        "--rate",
        type=float,
        default=None,
        help="open-loop arrival rate in requests/second",
    )
    loadgen.add_argument(
        "--duration",
        type=float,
        default=3.0,
        help="run length in seconds (default 3)",
    )
    loadgen.add_argument(
        "--requests",
        type=int,
        default=None,
        help="stop after this many requests (default: run to --duration)",
    )
    loadgen.add_argument(
        "--slo-ms",
        type=float,
        default=50.0,
        help="latency SLO for the attainment figure (default 50 ms)",
    )
    loadgen.add_argument(
        "--pairs",
        type=int,
        default=512,
        help="distinct random query pairs cycled through (default 512)",
    )
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument(
        "--warm",
        type=float,
        default=0.3,
        help="warmup seconds before measuring (default 0.3)",
    )
    loadgen.add_argument(
        "--compare",
        action="store_true",
        help="measure an uncoalesced baseline (max_batch=1) against the "
        "coalesced configuration and report both",
    )
    loadgen.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full report as JSON to PATH",
    )
    loadgen.add_argument(
        "--url",
        default=None,
        help="drive an already-running server at this URL instead of "
        "booting one (GRAPH still supplies the query pairs)",
    )
    add_serve_args(loadgen)

    build = sub.add_parser(
        "build", help="build and save a FELINE index for a DAG"
    )
    build.add_argument("graph", help="edge-list file of a DAG")
    build.add_argument("output", help="destination .feline index file")

    verify = sub.add_parser(
        "verify-index",
        help="check a saved index's soundness invariants against a graph",
    )
    verify.add_argument("graph", help="edge-list file of the indexed DAG")
    verify.add_argument("index", help="saved .feline index file")
    verify.add_argument(
        "--sample",
        type=int,
        default=10_000,
        help="edges sampled on large graphs (default 10000)",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--mmap", action="store_true", help="memory-map the saved index"
    )

    bench = sub.add_parser("bench", help="regenerate a paper artifact")
    bench.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS) + ["all"]
    )
    bench.add_argument("--scale", type=float, default=None)
    bench.add_argument("--queries", type=int, default=None)
    bench.add_argument("--runs", type=int, default=None)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--datasets",
        default=None,
        help="comma-separated dataset names to restrict the sweep to",
    )
    bench.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable metrics and write JSON-lines to PATH plus a "
        "Prometheus text export with a .prom suffix",
    )
    bench.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable span tracing and write Chrome trace_event JSON to "
        "PATH (open it at https://ui.perfetto.dev)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="survivor-search worker processes attached to every "
        "measured index (default 0: in-process)",
    )
    add_kernel_arg(bench)

    def add_shard_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--shards",
            type=int,
            default=3,
            help="shard worker processes (default 3)",
        )
        p.add_argument(
            "--index-budget-bytes",
            type=int,
            default=None,
            help="per-shard index byte budget: each shard builds the "
            "richest FELINE tier that fits (default: unrestricted)",
        )
        p.add_argument(
            "--on-shard-loss",
            choices=["fallback", "unknown"],
            default="fallback",
            help="unrecoverable-shard degradation: fallback (bounded "
            "biBFS on the coordinator's DAG replica) or unknown "
            "(default fallback)",
        )

    shard_serve = sub.add_parser(
        "shard-serve",
        help="serve queries from supervised multi-process shard workers",
    )
    shard_serve.add_argument("graph", help="edge-list file (u v per line)")
    shard_serve.add_argument("--host", default="127.0.0.1")
    shard_serve.add_argument(
        "--port", type=int, default=0, help="0 (default) picks a free port"
    )
    shard_serve.add_argument(
        "--default-deadline-ms",
        type=float,
        default=None,
        help="deadline applied to queries that carry no deadline_ms",
    )
    shard_serve.add_argument(
        "--rpc-timeout-ms",
        type=float,
        default=1000.0,
        help="per-attempt shard RPC cap (default 1000)",
    )
    shard_serve.add_argument(
        "--on-deadline",
        choices=["unknown", "gateway-timeout"],
        default="unknown",
        help="deadline-degraded answers on the wire: unknown verdict "
        "(200) or structured 504 (default unknown)",
    )
    shard_serve.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="slow-query log threshold in milliseconds; entries carry "
        "the trace_id and owning shard (default: no slow log)",
    )
    shard_serve.add_argument(
        "--once",
        action="store_true",
        help="scrape each endpoint once, print, and exit (smoke tests)",
    )
    add_shard_args(shard_serve)
    add_serve_args(shard_serve)

    drill = sub.add_parser(
        "chaos-drill",
        help="SIGKILL shard workers under live traffic, report the "
        "failover/degradation numbers",
    )
    drill.add_argument("graph", help="edge-list file (u v per line)")
    drill.add_argument("--pairs", type=int, default=200)
    drill.add_argument(
        "--deadline-ms",
        type=float,
        default=250.0,
        help="per-query deadline during every phase (default 250)",
    )
    drill.add_argument(
        "--grace-ms",
        type=float,
        default=250.0,
        help="scheduling grace added to the deadline before a query "
        "counts as a violation (default 250)",
    )
    drill.add_argument("--baseline-s", type=float, default=2.0)
    drill.add_argument("--chaos-s", type=float, default=6.0)
    drill.add_argument("--degraded-s", type=float, default=2.0)
    drill.add_argument(
        "--kill-interval-s",
        type=float,
        default=0.4,
        help="cadence of worker murders during the chaos phase "
        "(default 0.4)",
    )
    drill.add_argument("--seed", type=int, default=0)
    drill.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the full report as JSON to PATH",
    )
    add_shard_args(drill)

    stats = sub.add_parser(
        "stats", help="run a workload and print the query-stats breakdown"
    )
    stats.add_argument("graph", help="edge-list file (u v per line)")
    stats.add_argument("--method", default="feline")
    stats.add_argument("--queries", type=int, default=2000)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also write JSON-lines + Prometheus exports (like bench)",
    )

    validate = sub.add_parser(
        "validate", help="cross-check index methods against DFS truth"
    )
    validate.add_argument("graph", help="edge-list file of a DAG")
    validate.add_argument("--queries", type=int, default=500)
    validate.add_argument("--seed", type=int, default=0)

    recommend = sub.add_parser(
        "recommend", help="advise an index method for a graph"
    )
    recommend.add_argument("graph", help="edge-list file of a DAG")
    recommend.add_argument("--query-heavy", action="store_true")

    trace = sub.add_parser(
        "trace",
        help="fetch and render a stitched trace from a running server",
    )
    trace.add_argument(
        "url", help="base URL of a repro server started with --trace"
    )
    trace.add_argument(
        "--trace-id",
        default=None,
        help="trace to fetch (16-hex-char id from an X-Trace-Id header "
        "or /trace listing; default: the most recent trace)",
    )
    trace.add_argument(
        "--json",
        action="store_true",
        help="print the raw /trace JSON payload instead of the tree",
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="also write the trace as Chrome trace_event JSON to PATH "
        "(open it at https://ui.perfetto.dev)",
    )
    return parser


def _bench_kwargs(args: argparse.Namespace, experiment: str) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if experiment not in ("t1", "t2", "f12"):
        if args.queries is not None:
            kwargs["num_queries"] = args.queries
        if args.runs is not None:
            kwargs["runs"] = args.runs
    if getattr(args, "datasets", None) and experiment not in ("t1", "t2"):
        names = args.datasets.split(",")
        kwargs["names"] = tuple(names) if experiment == "f12" else names
    if experiment in ("t2",) and "scale" not in kwargs:
        kwargs["scale"] = 0.001
    return kwargs


def _write_metrics(registry, path: str) -> None:
    """Write the JSON-lines export to ``path`` and a sibling ``.prom``."""
    from pathlib import Path

    from repro.obs.export import write_jsonl, write_prometheus

    jsonl_path = Path(path)
    prom_path = jsonl_path.with_suffix(".prom")
    write_jsonl(registry, jsonl_path)
    write_prometheus(registry, prom_path)
    print(f"metrics written: {jsonl_path} (JSON lines), {prom_path} (Prometheus)")


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: cut breakdown + latency percentiles."""
    from repro.datasets.queries import random_pairs

    with obs.metrics_enabled() as registry:
        graph = read_edge_list(args.graph)
        oracle = Reachability(graph, method=args.method)
        pairs = random_pairs(graph, args.queries, seed=args.seed)
        positives = 0
        for u, v in pairs:
            positives += oracle.reachable(u, v)
        oracle.index.publish_stats(registry)

        stats = oracle.stats
        print(f"graph: {args.graph}  method: {oracle.index.method_name}  "
              f"|V|={graph.num_vertices} |E|={graph.num_edges}")
        print(f"queries: {stats.queries}  positive: {positives}")
        total = max(1, stats.queries)
        for counter, value in stats.as_dict().items():
            if counter == "queries":
                continue
            print(f"  {counter:<16} {value:>10}  ({100 * value / total:5.1f}%)")

        latency = registry.histogram(
            "repro_query_latency_seconds", method=oracle.index.method_name
        )
        if latency.count:
            print(
                "query latency (us): "
                f"p50={1e6 * latency.p50:.2f}  "
                f"p95={1e6 * latency.p95:.2f}  "
                f"p99={1e6 * latency.p99:.2f}  "
                f"mean={1e6 * latency.mean:.2f}"
            )
        phase_events = [
            event for event in registry.trace_log
            if "phase" in event.fields and event.duration_s is not None
        ]
        if phase_events:
            print("build phases:")
            for event in phase_events:
                print(
                    f"  {event.name}/{event.fields['phase']:<20} "
                    f"{1e3 * event.duration_s:8.3f} ms"
                )
        if args.metrics_out:
            _write_metrics(registry, args.metrics_out)
    return 0


def _budget_from_args(args: argparse.Namespace):
    """A :class:`QueryBudget` from ``--max-steps``/``--deadline-ms``."""
    from repro.resilience import QueryBudget

    if args.max_steps is None and args.deadline_ms is None:
        return None
    return QueryBudget(
        max_steps=args.max_steps,
        deadline_s=(
            args.deadline_ms / 1000.0
            if args.deadline_ms is not None
            else None
        ),
        policy=args.on_budget,
    )


def _build_serving_oracle(args: argparse.Namespace):
    """Build + warm the oracle a ``serve``/``loadgen`` run queries."""
    from repro.datasets.queries import random_pairs

    graph = read_edge_list(args.graph)
    oracle = Reachability(
        graph,
        method=args.method,
        workers=args.workers,
        observers=getattr(args, "observers", 0),
        kernel=getattr(args, "kernel", None),
    )
    warm = int(getattr(args, "warm", 0)) if args.command == "serve" else 0
    if warm > 0:
        oracle.reachable_many(random_pairs(graph, warm, seed=args.seed))
    return graph, oracle


def _enable_cli_tracing(args: argparse.Namespace):
    """``--trace``: turn the span tracer on *before* any index builds
    (hot paths resolve their tracer handle at build time)."""
    if not getattr(args, "trace", False):
        return None
    from repro.obs.spans import enable_tracing

    return enable_tracing()


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: warm an index, serve query traffic."""
    from repro.serve import ReachServer, ServeConfig

    registry = obs.enable_metrics()
    tracer = _enable_cli_tracing(args)
    oracle = None
    try:
        graph, oracle = _build_serving_oracle(args)
        # The slow log goes on after warming: it forces per-pair scalar
        # batches (its documented trade-off), which would skew the warm.
        oracle.enable_slow_log(threshold_ms=args.slow_ms)
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_inflight=args.max_inflight,
            overload=args.overload,
            budget=_budget_from_args(args),
        )
        server = ReachServer(
            oracle, config, registry=registry, slow_log=oracle.slow_log
        )
        server.start()
        try:
            print(
                f"serving {oracle.index.method_name} queries on "
                f"{server.url} (/reach, /reach_many, /metrics, /healthz, "
                f"/slow; max_batch={config.max_batch}, "
                f"max_wait_ms={config.max_wait_ms})"
            )
            if args.once:
                from urllib.request import urlopen

                sample = f"/reach?u=0&v={graph.num_vertices - 1}"
                scrapes = ["/healthz", sample, "/metrics", "/slow"]
                if tracer is not None:
                    scrapes.append("/trace")
                for endpoint in scrapes:
                    with urlopen(server.url + endpoint) as response:
                        body = response.read().decode("utf-8")
                    print(f"--- GET {endpoint} [{response.status}]")
                    print(body if len(body) < 2000 else body[:2000] + "...")
                return 0
            try:
                import threading

                threading.Event().wait()  # serve until interrupted
            except KeyboardInterrupt:
                print("interrupted, shutting down")
            return 0
        finally:
            server.stop()
    finally:
        if oracle is not None:
            oracle.close_search_pool()
        if tracer is not None:
            from repro.obs.spans import disable_tracing

            disable_tracing()
        obs.disable_metrics()


def _run_loadgen(args: argparse.Namespace) -> int:
    """The ``loadgen`` subcommand: measure a server under load."""
    import json
    import os

    from repro.datasets.queries import random_pairs
    from repro.serve import (
        ServeConfig,
        calibrate_ms,
        compare_serving,
        run_loadgen,
    )

    tracer = _enable_cli_tracing(args)
    graph = read_edge_list(args.graph)
    pairs = random_pairs(graph, args.pairs, seed=args.seed)
    config = ServeConfig(
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_inflight=args.max_inflight,
        overload=args.overload,
    )
    oracle = None
    try:
        if args.url is not None:
            if args.compare:
                print("loadgen: --compare boots its own servers and is "
                      "incompatible with --url", file=sys.stderr)
                return 2
            report = run_loadgen(
                args.url, pairs, mode=args.mode,
                concurrency=args.concurrency, rate=args.rate,
                duration_s=args.duration, max_requests=args.requests,
                slo_ms=args.slo_ms,
            )
            runs = [dict(report, label="remote")]
        else:
            oracle = Reachability(
                graph,
                method=args.method,
                workers=args.workers,
                observers=getattr(args, "observers", 0),
                kernel=getattr(args, "kernel", None),
            )
            if args.compare:
                runs = compare_serving(
                    oracle, pairs, config=config, mode=args.mode,
                    concurrency=args.concurrency, rate=args.rate,
                    duration_s=args.duration, max_requests=args.requests,
                    slo_ms=args.slo_ms, warmup_s=args.warm,
                )["runs"]
            else:
                from repro.obs.metrics import MetricsRegistry
                from repro.serve import ReachServer

                registry = MetricsRegistry()
                server = ReachServer(oracle, config, registry=registry)
                server.start()
                try:
                    if args.warm > 0:
                        run_loadgen(
                            server, pairs, mode="closed",
                            concurrency=min(args.concurrency, 4),
                            duration_s=args.warm, slo_ms=args.slo_ms,
                        )
                    report = run_loadgen(
                        server, pairs, mode=args.mode,
                        concurrency=args.concurrency, rate=args.rate,
                        duration_s=args.duration,
                        max_requests=args.requests, slo_ms=args.slo_ms,
                    )
                finally:
                    server.stop()
                runs = [dict(report, label="coalesced")]
    finally:
        if oracle is not None:
            oracle.close_search_pool()
        if tracer is not None:
            from repro.obs.spans import disable_tracing

            disable_tracing()

    for run in runs:
        latency = run["latency_ms"]
        batch = (run.get("server") or {}).get("coalesce_batch_size")
        mean_batch = f"{batch['mean']:.1f}" if batch else "n/a"
        print(
            f"{run['label']:<10} {run['requests']:>7} req  "
            f"{run['throughput_rps']:>9.1f} rps  "
            f"p50={latency['p50']:.2f}ms p95={latency['p95']:.2f}ms "
            f"p99={latency['p99']:.2f}ms  "
            f"slo({run['slo_ms']:g}ms)={run['slo_attainment']}  "
            f"mean_batch={mean_batch}  errors={run['errors']}"
        )
    if args.compare and len(runs) == 2:
        base, coal = runs[0], runs[1]
        if base["throughput_rps"] > 0:
            speedup = coal["throughput_rps"] / base["throughput_rps"]
            print(f"coalesced/baseline throughput: {speedup:.2f}x")

    if args.out:
        document = {
            "bench": "serve-loadgen",
            "python": "%d.%d.%d" % sys.version_info[:3],
            "seed": args.seed,
            "cpus": os.cpu_count(),
            "calibration_ms": calibrate_ms(),
            "graph": {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "path": args.graph,
            },
            "workload": {
                "mode": args.mode,
                "pairs": len(pairs),
                "concurrency": args.concurrency,
                "rate_rps": args.rate,
                "duration_s": args.duration,
                "slo_ms": args.slo_ms,
            },
            "runs": runs,
        }
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2)
            handle.write("\n")
        print(f"report written: {args.out}")
    return 0


def _run_shard_serve(args: argparse.Namespace) -> int:
    """The ``shard-serve`` subcommand: HTTP traffic onto shard workers."""
    from repro.serve import ReachServer, ServeConfig
    from repro.shard import ShardConfig, ShardService

    registry = obs.enable_metrics()
    # Tracing must be on before the service forks its workers: each
    # worker inherits the (enabled) tracer/registry and ships spans and
    # telemetry back on RPC responses.
    tracer = _enable_cli_tracing(args)
    service = None
    try:
        graph = read_edge_list(args.graph)
        service = ShardService(
            graph,
            ShardConfig(
                num_shards=args.shards,
                index_budget_bytes=args.index_budget_bytes,
                observers=getattr(args, "observers", 0),
                kernel=getattr(args, "kernel", None),
                rpc_timeout_s=args.rpc_timeout_ms / 1000.0,
                default_deadline_ms=args.default_deadline_ms,
                on_shard_loss=args.on_shard_loss,
            ),
        )
        slow_log = None
        if args.slow_ms is not None:
            from repro.obs.slowlog import SlowQueryLog

            slow_log = service.attach_slow_log(
                SlowQueryLog(threshold_ns=int(args.slow_ms * 1e6))
            )
        config = ServeConfig(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            max_inflight=args.max_inflight,
            overload=args.overload,
            on_deadline=args.on_deadline,
        )
        server = ReachServer(
            service, config, registry=registry, slow_log=slow_log
        )
        server.start()
        try:
            sizes = service.plan.shard_sizes()
            print(
                f"serving sharded queries on {server.url} "
                f"({service.num_shards} worker processes, "
                f"shard sizes {sizes}, on_shard_loss="
                f"{service.config.on_shard_loss})"
            )
            for entry in service.plan.index_report():
                print(
                    f"  shard {entry['shard']}: {entry['vertices']} "
                    f"vertices, tier={entry['tier']}, "
                    f"{entry['index_bytes']} index bytes"
                )
            if args.once:
                from urllib.request import urlopen

                sample = (
                    f"/reach?u=0&v={graph.num_vertices - 1}&deadline_ms=1000"
                )
                scrapes = ["/healthz", sample, "/metrics", "/slow"]
                if tracer is not None:
                    scrapes.append("/trace")
                for endpoint in scrapes:
                    with urlopen(server.url + endpoint) as response:
                        body = response.read().decode("utf-8")
                    print(f"--- GET {endpoint} [{response.status}]")
                    print(body if len(body) < 2000 else body[:2000] + "...")
                return 0
            try:
                import threading

                threading.Event().wait()  # serve until interrupted
            except KeyboardInterrupt:
                print("interrupted, shutting down")
            return 0
        finally:
            server.stop()
    finally:
        if service is not None:
            service.close()
        if tracer is not None:
            from repro.obs.spans import disable_tracing

            disable_tracing()
        obs.disable_metrics()


def _run_trace(args: argparse.Namespace) -> int:
    """The ``trace`` subcommand: fetch one stitched trace over HTTP."""
    import json
    from urllib.request import urlopen

    from repro.obs.distributed import render_trace_tree, trace_to_chrome

    base = args.url.rstrip("/")

    def fetch(path: str):
        with urlopen(base + path) as response:
            return json.loads(response.read().decode("utf-8"))

    trace_id = args.trace_id
    if trace_id is None:
        listing = fetch("/trace")
        if not listing.get("enabled", False):
            print(
                "tracing is disabled on the server "
                "(start it with --trace)",
                file=sys.stderr,
            )
            return 2
        traces = listing.get("traces") or []
        if not traces:
            print("no traces recorded yet", file=sys.stderr)
            return 2
        trace_id = traces[0]["trace_id"]
    payload = fetch(f"/trace?trace_id={trace_id}")
    if not payload.get("span_count"):
        print(
            f"trace {trace_id}: no spans in the server's ring",
            file=sys.stderr,
        )
        return 2
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(trace_to_chrome(payload), handle)
            handle.write("\n")
        print(
            f"chrome trace written: {args.out} "
            "(open at https://ui.perfetto.dev)"
        )
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(render_trace_tree(payload))
    return 0


def _run_chaos_drill(args: argparse.Namespace) -> int:
    """The ``chaos-drill`` subcommand: the kill-based chaos suite."""
    import json

    from repro.shard import chaos_drill

    graph = read_edge_list(args.graph)
    report = chaos_drill(
        graph,
        num_shards=args.shards,
        num_pairs=args.pairs,
        deadline_ms=args.deadline_ms,
        grace_ms=args.grace_ms,
        baseline_s=args.baseline_s,
        chaos_s=args.chaos_s,
        degraded_s=args.degraded_s,
        kill_interval_s=args.kill_interval_s,
        on_shard_loss=args.on_shard_loss,
        seed=args.seed,
    )
    contract = report["contract"]
    faults = report["faults"]
    failover = report["failover_latency"]
    print(
        f"chaos drill: {faults['sigkills']} SIGKILLs + "
        f"{faults['sigstops']} SIGSTOPs over "
        f"{report['config']['num_shards']} shards"
    )
    for phase, doc in report["phases"].items():
        if doc is None:
            continue
        print(
            f"  {phase}: {doc['queries']} queries at {doc['qps']} q/s, "
            f"{doc['wrong']} wrong, {doc['unknown']} unknown, "
            f"{doc['deadline_violations']} deadline violations "
            f"(p95 {doc['latency']['p95_ms']} ms)"
        )
    if failover["count"]:
        print(
            f"  failover latency: p50 {failover['p50_ms']} ms, "
            f"p95 {failover['p95_ms']} ms, max {failover['max_ms']} ms "
            f"over {failover['count']} failovers"
        )
    print(
        f"  restarts: {report['service_stats']['restarts']}, "
        f"degraded fallback/unknown: "
        f"{report['service_stats']['degraded_fallback']}/"
        f"{report['service_stats']['degraded_unknown']}"
    )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report written: {args.out}")
    ok = contract["wrong_answers"] == 0 and contract["deadline_violations"] == 0
    if not ok:
        print(
            f"CONTRACT VIOLATED: {contract['wrong_answers']} wrong answers, "
            f"{contract['deadline_violations']} deadline violations",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "methods":
        print("\n".join(available_methods()))
        return 0

    if args.command == "datasets":
        print("\n".join(dataset_names()))
        return 0

    if args.command == "query":
        from repro.resilience import UNKNOWN, QueryBudget

        budget = None
        if args.max_steps is not None or args.deadline_ms is not None:
            budget = QueryBudget(
                max_steps=args.max_steps,
                deadline_s=(
                    args.deadline_ms / 1000.0
                    if args.deadline_ms is not None
                    else None
                ),
                policy=args.on_budget,
            )
        graph = read_edge_list(args.graph)
        if args.index is not None:
            from repro.core.persistence import load_index

            index = load_index(graph, args.index, mmap=args.mmap)
            if args.kernel is not None:
                index.set_kernel(args.kernel)
            answer = index.query(args.source, args.target, budget=budget)
        else:
            oracle = Reachability(
                graph, method=args.method, kernel=args.kernel
            )
            answer = oracle.reachable(args.source, args.target, budget=budget)
        if answer is UNKNOWN:
            print("unknown (query budget exhausted)")
            return 3
        print("reachable" if answer else "not reachable")
        return 0 if answer else 1

    if args.command == "explain":
        import json

        from repro.resilience import UNKNOWN, QueryBudget

        budget = None
        if args.max_steps is not None or args.deadline_ms is not None:
            budget = QueryBudget(
                max_steps=args.max_steps,
                deadline_s=(
                    args.deadline_ms / 1000.0
                    if args.deadline_ms is not None
                    else None
                ),
                policy=args.on_budget,
            )
        graph = read_edge_list(args.graph)
        oracle = Reachability(graph, method=args.method, kernel=args.kernel)
        explanation = oracle.explain(args.source, args.target, budget=budget)
        if args.json:
            print(json.dumps(explanation.as_dict(), indent=2, default=str))
        else:
            print(explanation.render())
        if explanation.verdict is UNKNOWN:
            return 3
        return 0 if explanation.verdict else 1

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "loadgen":
        return _run_loadgen(args)

    if args.command == "shard-serve":
        return _run_shard_serve(args)

    if args.command == "trace":
        return _run_trace(args)

    if args.command == "chaos-drill":
        return _run_chaos_drill(args)

    if args.command == "build":
        from repro.core.persistence import save_index
        from repro.core.query import FelineIndex

        graph = read_edge_list(args.graph)
        index = FelineIndex(graph).build()
        save_index(index, args.output)
        print(
            f"built FELINE index for {graph.num_vertices} vertices, "
            f"{index.index_size_bytes()} bytes -> {args.output}"
        )
        return 0

    if args.command == "verify-index":
        from repro.core.persistence import load_index
        from repro.exceptions import PersistenceError
        from repro.resilience import verify_index

        graph = read_edge_list(args.graph)
        try:
            index = load_index(graph, args.index, mmap=args.mmap)
        except PersistenceError as exc:
            print(f"verify-index: UNREADABLE — {exc}", file=sys.stderr)
            return 2
        report = verify_index(
            graph, index, sample=args.sample, seed=args.seed
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "validate":
        from repro.bench.validate import cross_validate
        from repro.datasets.queries import random_pairs

        graph = read_edge_list(args.graph)
        pairs = random_pairs(graph, args.queries, seed=args.seed)
        report = cross_validate(graph, pairs)
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "recommend":
        from repro.core.advisor import describe_recommendation

        graph = read_edge_list(args.graph)
        print(describe_recommendation(graph, expect_query_heavy=args.query_heavy))
        return 0

    if args.command == "stats":
        return _run_stats(args)

    if args.command == "bench":
        from repro.bench.harness import set_default_workers

        wanted = (
            sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        set_default_workers(args.workers)
        kernel_env_prev = None
        if args.kernel is not None:
            from repro.perf.kernels import resolve_backend

            resolve_backend(args.kernel)  # fail fast on an impossible request
            kernel_env_prev = os.environ.get("REPRO_KERNEL")
            os.environ["REPRO_KERNEL"] = args.kernel
        registry = obs.enable_metrics() if args.metrics_out else None
        tracer = None
        if args.trace_out:
            from repro.obs.spans import disable_tracing, enable_tracing

            tracer = enable_tracing()
        try:
            for experiment in wanted:
                report = _EXPERIMENTS[experiment](
                    **_bench_kwargs(args, experiment)
                )
                print(report)
                print()
            if registry is not None:
                _write_metrics(registry, args.metrics_out)
            if tracer is not None:
                from repro.obs.spans import write_chrome_trace

                write_chrome_trace(tracer, args.trace_out)
                print(
                    f"trace written: {args.trace_out} "
                    f"({tracer.total} spans; open at https://ui.perfetto.dev)"
                )
        finally:
            set_default_workers(0)
            if args.kernel is not None:
                if kernel_env_prev is None:
                    os.environ.pop("REPRO_KERNEL", None)
                else:
                    os.environ["REPRO_KERNEL"] = kernel_env_prev
            if registry is not None:
                obs.disable_metrics()
            if tracer is not None:
                disable_tracing()
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
