"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``methods``
    List every registered reachability method.
``datasets``
    List every addressable dataset name.
``query GRAPH.edges u v [--method M] [--index FILE]``
    Load an edge-list file and answer one reachability query; with
    ``--index`` the FELINE coordinates are loaded from ``FILE`` instead
    of rebuilt (pass ``--mmap`` to page them in lazily).  ``--max-steps``
    / ``--deadline-ms`` attach a query budget, with ``--on-budget``
    choosing the degradation (``raise``, ``unknown``, ``fallback``); an
    unanswered query prints ``unknown`` and exits 3.
``build GRAPH.edges INDEX.feline``
    Build a FELINE index for an edge-list graph (must be a DAG after
    condensation is *not* applied here — build works on DAGs) and save
    it in the binary format of :mod:`repro.core.persistence`.
``verify-index GRAPH.edges INDEX.feline [--sample N] [--mmap]``
    Load a saved index (checksums verified for v2 files) and check the
    Theorem 1 soundness invariants against the graph; exits 0 when the
    index is sound, 1 on an integrity violation, 2 when the file itself
    is unreadable (bad magic, truncation, checksum mismatch).
``bench EXPERIMENT [--scale S] [--queries N] [--runs R] [--metrics-out P] [--trace-out P]``
    Regenerate a paper artifact (``t1``..``t5``, ``f10``..``f17``,
    ``ablation-heuristics``, ``ablation-filters``, or ``all``); with
    ``--metrics-out PATH`` the run executes with metrics enabled and
    writes a JSON-lines export to ``PATH`` plus a Prometheus text export
    next to it (``.prom`` suffix); with ``--trace-out PATH`` spans are
    collected and written as Chrome ``trace_event`` JSON that
    https://ui.perfetto.dev opens directly.
``explain GRAPH.edges u v [--method M]``
    Answer one query *with provenance*: which O(1) cut fired (negative
    coordinate cut, level filter, positive-cut interval) or how far the
    refined online search went, the structures consulted, and the
    elapsed time.  Budget flags as in ``query``.  Exit codes mirror
    ``query`` (0 reachable, 1 not, 3 unknown).
``serve GRAPH.edges [--method M] [--port P] [--warm N] [--slow-ms T]``
    Build an index with metrics on, warm it with ``N`` random queries,
    and serve ``/metrics`` (Prometheus), ``/healthz`` and ``/slow``
    (the slow-query log, JSON) from a stdlib HTTP server until
    interrupted; ``--once`` scrapes each endpoint once and exits (CI
    smoke).
``stats GRAPH.edges [--method M] [--queries N] [--seed S] [--metrics-out P]``
    Build an index, answer a random workload, and print the query-stats
    breakdown (which cut answered how many queries), build-phase
    timings, and query-latency percentiles; optionally export the
    metrics like ``bench --metrics-out``.
``validate GRAPH.edges [--queries N]``
    Cross-check several index methods against DFS ground truth on the
    given graph; exits non-zero on any disagreement.
``recommend GRAPH.edges [--query-heavy]``
    Print the advised index method for the graph, with the features and
    rule behind the choice.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from repro import Reachability, available_methods, obs
from repro.bench import runner
from repro.datasets.registry import dataset_names
from repro.graph.io import read_edge_list

__all__ = ["main"]

_EXPERIMENTS: dict[str, Callable[..., runner.ExperimentReport]] = {
    "t1": runner.table1_datasets,
    "t2": runner.table2_synthetic,
    "t3": runner.table3_real,
    "t4": runner.table4_feline_variants,
    "t5": runner.table5_scarab,
    "f10": runner.fig10_cd_construction,
    "f11": runner.fig11_cd_query,
    "f12": runner.fig12_index_plots,
    "f13": runner.fig13_synthetic_construction,
    "f14": runner.fig14_synthetic_query,
    "f15": runner.fig15_index_sizes_real,
    "f16": runner.fig16_index_sizes_synthetic,
    "f17": runner.fig17_cd_scarab,
    "ablation-heuristics": runner.ablation_y_heuristics,
    "ablation-filters": runner.ablation_filters,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="FELINE reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("methods", help="list registered reachability methods")
    sub.add_parser("datasets", help="list dataset names")

    def add_budget_args(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--max-steps",
            type=int,
            default=None,
            help="budget: cap the online search at this many expanded vertices",
        )
        p.add_argument(
            "--deadline-ms",
            type=float,
            default=None,
            help="budget: wall-clock deadline for the query, in milliseconds",
        )
        p.add_argument(
            "--on-budget",
            choices=["raise", "unknown", "fallback"],
            default="unknown",
            help="what budget exhaustion degrades to (default: unknown)",
        )

    query = sub.add_parser("query", help="answer one reachability query")
    query.add_argument("graph", help="edge-list file (u v per line)")
    query.add_argument("source", type=int)
    query.add_argument("target", type=int)
    query.add_argument("--method", default="feline")
    query.add_argument(
        "--index", default=None, help="saved FELINE index file to reuse"
    )
    query.add_argument(
        "--mmap", action="store_true", help="memory-map the saved index"
    )
    add_budget_args(query)

    explain = sub.add_parser(
        "explain", help="answer one query with verdict provenance"
    )
    explain.add_argument("graph", help="edge-list file (u v per line)")
    explain.add_argument("source", type=int)
    explain.add_argument("target", type=int)
    explain.add_argument("--method", default="feline")
    explain.add_argument(
        "--json", action="store_true", help="print the explanation as JSON"
    )
    add_budget_args(explain)

    serve = sub.add_parser(
        "serve", help="serve /metrics, /healthz and /slow over HTTP"
    )
    serve.add_argument("graph", help="edge-list file (u v per line)")
    serve.add_argument("--method", default="feline")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 (default) picks a free port"
    )
    serve.add_argument(
        "--warm",
        type=int,
        default=1000,
        help="random queries answered before serving (default 1000)",
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--slow-ms",
        type=float,
        default=1.0,
        help="slow-query log threshold in milliseconds (default 1.0)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="scrape each endpoint once, print, and exit (smoke tests)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=0,
        help="survivor-search worker processes for batch queries "
        "(default 0: in-process; see docs/PERFORMANCE.md)",
    )

    build = sub.add_parser(
        "build", help="build and save a FELINE index for a DAG"
    )
    build.add_argument("graph", help="edge-list file of a DAG")
    build.add_argument("output", help="destination .feline index file")

    verify = sub.add_parser(
        "verify-index",
        help="check a saved index's soundness invariants against a graph",
    )
    verify.add_argument("graph", help="edge-list file of the indexed DAG")
    verify.add_argument("index", help="saved .feline index file")
    verify.add_argument(
        "--sample",
        type=int,
        default=10_000,
        help="edges sampled on large graphs (default 10000)",
    )
    verify.add_argument("--seed", type=int, default=0)
    verify.add_argument(
        "--mmap", action="store_true", help="memory-map the saved index"
    )

    bench = sub.add_parser("bench", help="regenerate a paper artifact")
    bench.add_argument(
        "experiment", choices=sorted(_EXPERIMENTS) + ["all"]
    )
    bench.add_argument("--scale", type=float, default=None)
    bench.add_argument("--queries", type=int, default=None)
    bench.add_argument("--runs", type=int, default=None)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--datasets",
        default=None,
        help="comma-separated dataset names to restrict the sweep to",
    )
    bench.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable metrics and write JSON-lines to PATH plus a "
        "Prometheus text export with a .prom suffix",
    )
    bench.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable span tracing and write Chrome trace_event JSON to "
        "PATH (open it at https://ui.perfetto.dev)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=0,
        help="survivor-search worker processes attached to every "
        "measured index (default 0: in-process)",
    )

    stats = sub.add_parser(
        "stats", help="run a workload and print the query-stats breakdown"
    )
    stats.add_argument("graph", help="edge-list file (u v per line)")
    stats.add_argument("--method", default="feline")
    stats.add_argument("--queries", type=int, default=2000)
    stats.add_argument("--seed", type=int, default=0)
    stats.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="also write JSON-lines + Prometheus exports (like bench)",
    )

    validate = sub.add_parser(
        "validate", help="cross-check index methods against DFS truth"
    )
    validate.add_argument("graph", help="edge-list file of a DAG")
    validate.add_argument("--queries", type=int, default=500)
    validate.add_argument("--seed", type=int, default=0)

    recommend = sub.add_parser(
        "recommend", help="advise an index method for a graph"
    )
    recommend.add_argument("graph", help="edge-list file of a DAG")
    recommend.add_argument("--query-heavy", action="store_true")
    return parser


def _bench_kwargs(args: argparse.Namespace, experiment: str) -> dict:
    kwargs: dict = {"seed": args.seed}
    if args.scale is not None:
        kwargs["scale"] = args.scale
    if experiment not in ("t1", "t2", "f12"):
        if args.queries is not None:
            kwargs["num_queries"] = args.queries
        if args.runs is not None:
            kwargs["runs"] = args.runs
    if getattr(args, "datasets", None) and experiment not in ("t1", "t2"):
        names = args.datasets.split(",")
        kwargs["names"] = tuple(names) if experiment == "f12" else names
    if experiment in ("t2",) and "scale" not in kwargs:
        kwargs["scale"] = 0.001
    return kwargs


def _write_metrics(registry, path: str) -> None:
    """Write the JSON-lines export to ``path`` and a sibling ``.prom``."""
    from pathlib import Path

    from repro.obs.export import write_jsonl, write_prometheus

    jsonl_path = Path(path)
    prom_path = jsonl_path.with_suffix(".prom")
    write_jsonl(registry, jsonl_path)
    write_prometheus(registry, prom_path)
    print(f"metrics written: {jsonl_path} (JSON lines), {prom_path} (Prometheus)")


def _run_stats(args: argparse.Namespace) -> int:
    """The ``stats`` subcommand: cut breakdown + latency percentiles."""
    from repro.datasets.queries import random_pairs

    with obs.metrics_enabled() as registry:
        graph = read_edge_list(args.graph)
        oracle = Reachability(graph, method=args.method)
        pairs = random_pairs(graph, args.queries, seed=args.seed)
        positives = 0
        for u, v in pairs:
            positives += oracle.reachable(u, v)
        oracle.index.publish_stats(registry)

        stats = oracle.stats
        print(f"graph: {args.graph}  method: {oracle.index.method_name}  "
              f"|V|={graph.num_vertices} |E|={graph.num_edges}")
        print(f"queries: {stats.queries}  positive: {positives}")
        total = max(1, stats.queries)
        for counter, value in stats.as_dict().items():
            if counter == "queries":
                continue
            print(f"  {counter:<16} {value:>10}  ({100 * value / total:5.1f}%)")

        latency = registry.histogram(
            "repro_query_latency_seconds", method=oracle.index.method_name
        )
        if latency.count:
            print(
                "query latency (us): "
                f"p50={1e6 * latency.p50:.2f}  "
                f"p95={1e6 * latency.p95:.2f}  "
                f"p99={1e6 * latency.p99:.2f}  "
                f"mean={1e6 * latency.mean:.2f}"
            )
        phase_events = [
            event for event in registry.trace_log
            if "phase" in event.fields and event.duration_s is not None
        ]
        if phase_events:
            print("build phases:")
            for event in phase_events:
                print(
                    f"  {event.name}/{event.fields['phase']:<20} "
                    f"{1e3 * event.duration_s:8.3f} ms"
                )
        if args.metrics_out:
            _write_metrics(registry, args.metrics_out)
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """The ``serve`` subcommand: warm an index, expose the obs triad."""
    from repro.datasets.queries import random_pairs
    from repro.obs.server import ObsServer

    registry = obs.enable_metrics()
    oracle = None
    try:
        graph = read_edge_list(args.graph)
        oracle = Reachability(
            graph, method=args.method, workers=args.workers
        )

        def warm() -> None:
            if args.warm > 0:
                pairs = random_pairs(graph, args.warm, seed=args.seed)
                oracle.reachable_many(pairs)

        if args.workers > 1:
            # A slow log forces per-pair scalar batches (its documented
            # trade-off), so warm through the survivor pool first and
            # attach the log for live traffic afterwards.
            warm()
            oracle.enable_slow_log(threshold_ms=args.slow_ms)
        else:
            oracle.enable_slow_log(threshold_ms=args.slow_ms)
            warm()
        server = ObsServer(
            registry=registry,
            slow_log=oracle.slow_log,
            host=args.host,
            port=args.port,
        )
        server.start()
        try:
            print(
                f"serving {oracle.index.method_name} metrics on "
                f"{server.url} (/metrics, /healthz, /slow)"
            )
            if args.once:
                from urllib.request import urlopen

                for endpoint in ("/healthz", "/metrics", "/slow"):
                    with urlopen(server.url + endpoint) as response:
                        body = response.read().decode("utf-8")
                    print(f"--- GET {endpoint} [{response.status}]")
                    print(body if len(body) < 2000 else body[:2000] + "...")
                return 0
            try:
                import threading

                threading.Event().wait()  # serve until interrupted
            except KeyboardInterrupt:
                print("interrupted, shutting down")
            return 0
        finally:
            server.stop()
    finally:
        if oracle is not None:
            oracle.close_search_pool()
        obs.disable_metrics()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)

    if args.command == "methods":
        print("\n".join(available_methods()))
        return 0

    if args.command == "datasets":
        print("\n".join(dataset_names()))
        return 0

    if args.command == "query":
        from repro.resilience import UNKNOWN, QueryBudget

        budget = None
        if args.max_steps is not None or args.deadline_ms is not None:
            budget = QueryBudget(
                max_steps=args.max_steps,
                deadline_s=(
                    args.deadline_ms / 1000.0
                    if args.deadline_ms is not None
                    else None
                ),
                policy=args.on_budget,
            )
        graph = read_edge_list(args.graph)
        if args.index is not None:
            from repro.core.persistence import load_index

            index = load_index(graph, args.index, mmap=args.mmap)
            answer = index.query(args.source, args.target, budget=budget)
        else:
            oracle = Reachability(graph, method=args.method)
            answer = oracle.reachable(args.source, args.target, budget=budget)
        if answer is UNKNOWN:
            print("unknown (query budget exhausted)")
            return 3
        print("reachable" if answer else "not reachable")
        return 0 if answer else 1

    if args.command == "explain":
        import json

        from repro.resilience import UNKNOWN, QueryBudget

        budget = None
        if args.max_steps is not None or args.deadline_ms is not None:
            budget = QueryBudget(
                max_steps=args.max_steps,
                deadline_s=(
                    args.deadline_ms / 1000.0
                    if args.deadline_ms is not None
                    else None
                ),
                policy=args.on_budget,
            )
        graph = read_edge_list(args.graph)
        oracle = Reachability(graph, method=args.method)
        explanation = oracle.explain(args.source, args.target, budget=budget)
        if args.json:
            print(json.dumps(explanation.as_dict(), indent=2, default=str))
        else:
            print(explanation.render())
        if explanation.verdict is UNKNOWN:
            return 3
        return 0 if explanation.verdict else 1

    if args.command == "serve":
        return _run_serve(args)

    if args.command == "build":
        from repro.core.persistence import save_index
        from repro.core.query import FelineIndex

        graph = read_edge_list(args.graph)
        index = FelineIndex(graph).build()
        save_index(index, args.output)
        print(
            f"built FELINE index for {graph.num_vertices} vertices, "
            f"{index.index_size_bytes()} bytes -> {args.output}"
        )
        return 0

    if args.command == "verify-index":
        from repro.core.persistence import load_index
        from repro.exceptions import PersistenceError
        from repro.resilience import verify_index

        graph = read_edge_list(args.graph)
        try:
            index = load_index(graph, args.index, mmap=args.mmap)
        except PersistenceError as exc:
            print(f"verify-index: UNREADABLE — {exc}", file=sys.stderr)
            return 2
        report = verify_index(
            graph, index, sample=args.sample, seed=args.seed
        )
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "validate":
        from repro.bench.validate import cross_validate
        from repro.datasets.queries import random_pairs

        graph = read_edge_list(args.graph)
        pairs = random_pairs(graph, args.queries, seed=args.seed)
        report = cross_validate(graph, pairs)
        print(report.summary())
        return 0 if report.ok else 1

    if args.command == "recommend":
        from repro.core.advisor import describe_recommendation

        graph = read_edge_list(args.graph)
        print(describe_recommendation(graph, expect_query_heavy=args.query_heavy))
        return 0

    if args.command == "stats":
        return _run_stats(args)

    if args.command == "bench":
        from repro.bench.harness import set_default_workers

        wanted = (
            sorted(_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
        )
        set_default_workers(args.workers)
        registry = obs.enable_metrics() if args.metrics_out else None
        tracer = None
        if args.trace_out:
            from repro.obs.spans import disable_tracing, enable_tracing

            tracer = enable_tracing()
        try:
            for experiment in wanted:
                report = _EXPERIMENTS[experiment](
                    **_bench_kwargs(args, experiment)
                )
                print(report)
                print()
            if registry is not None:
                _write_metrics(registry, args.metrics_out)
            if tracer is not None:
                from repro.obs.spans import write_chrome_trace

                write_chrome_trace(tracer, args.trace_out)
                print(
                    f"trace written: {args.trace_out} "
                    f"({tracer.total} spans; open at https://ui.perfetto.dev)"
                )
        finally:
            set_default_workers(0)
            if registry is not None:
                obs.disable_metrics()
            if tracer is not None:
                disable_tracing()
        return 0

    return 2  # pragma: no cover - argparse enforces the choices


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
