"""FELINE-K — the k-dimensional generalisation of the dominance drawing.

The paper notes (§3.1) that problematic graphs exist "for the
construction of any nD index with n arbitrarily large", i.e. the
2-dimensional drawing is a *choice*, not a limit: any number of
topological orderings yields a sound index, with

    r(u, v)  ⇒  rank_i(u) ≤ rank_i(v)   for every ordering i,

so each extra dimension can only remove falsely implied paths (the
dominance set is the intersection over dimensions) at the price of one
more integer per vertex and one more comparison per cut/prune.  This is
FELINE's analogue of GRAIL's ``d`` parameter, and the dimension-sweep
ablation quantifies the diminishing returns that made the authors stop
at two.

Dimension recipe: dimension 0 is the DFS-based ``X``; dimension 1 the
Kornaropoulos ``max-x`` ``Y`` (so ``dimensions=2`` is *exactly* FELINE);
further dimensions are priority-Kahn orderings seeded with random
priorities (distinct seeds), each a valid topological order.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.core.heuristics import compute_y_order
from repro.perf.cut_table import CutTable, view_i64
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.graph.spanning import (
    IntervalLabels,
    extract_spanning_forest,
    minpost_intervals_tree,
)
from repro.graph.toposort import dfs_topological_order, ranks_from_order

__all__ = ["MultiDimFelineIndex", "MultiDimCutTable"]


class MultiDimCutTable(CutTable):
    """FELINE-K cuts: rank dominance in all ``d`` dimensions + filters.

    The ranks are stacked into one ``(d, n)`` matrix so a batch's
    dominance test is a single broadcasted comparison per dimension.
    """

    def __init__(self, index: "MultiDimFelineIndex") -> None:
        self.ranks = np.stack([view_i64(r) for r in index.ranks])
        self.levels = (
            view_i64(index.levels) if index.levels is not None else None
        )
        intervals = index.tree_intervals
        if intervals is not None:
            self.start = view_i64(intervals.start)
            self.post = view_i64(intervals.post)
        else:
            self.start = self.post = None

    def classify(self, sources, targets):
        negative = np.any(
            self.ranks[:, sources] > self.ranks[:, targets], axis=0
        )
        levels = self.levels
        if levels is not None:
            negative |= levels[sources] >= levels[targets]
        if self.start is not None:
            positive = (
                ~negative
                & (self.start[sources] <= self.start[targets])
                & (self.post[targets] <= self.post[sources])
            )
        else:
            positive = np.zeros(len(sources), dtype=bool)
        return positive, negative


class MultiDimFelineIndex(ReachabilityIndex):
    """FELINE with ``dimensions`` topological orderings (default 3).

    ``dimensions=2`` reproduces plain FELINE; higher values trade index
    size for pruning power.  The §3.4 filters are shared unchanged.
    """

    method_name = "feline-k"

    def __init__(
        self,
        graph: DiGraph,
        dimensions: int = 3,
        use_level_filter: bool = True,
        use_positive_cut: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        if dimensions < 2:
            raise ValueError(f"dimensions must be >= 2, got {dimensions}")
        self.dimensions = dimensions
        self._use_level_filter = use_level_filter
        self._use_positive_cut = use_positive_cut
        self._seed = seed
        self.ranks: list[array] = []
        self.levels: array | None = None
        self.tree_intervals: IntervalLabels | None = None
        self._visited = array("l", [0] * graph.num_vertices)
        self._stamp = 0

    # ------------------------------------------------------------------
    def _build(self) -> None:
        graph = self.graph
        order_x = dfs_topological_order(graph)
        x_ranks = ranks_from_order(order_x)
        dims = [x_ranks]
        dims.append(
            ranks_from_order(
                compute_y_order(graph, x_ranks, heuristic="max-x")
            )
        )
        for extra in range(self.dimensions - 2):
            order = compute_y_order(
                graph, x_ranks, heuristic="random", seed=self._seed + extra + 1
            )
            dims.append(ranks_from_order(order))
        self.ranks = dims

        if self._use_level_filter:
            self.levels = compute_levels(graph)
        if self._use_positive_cut:
            forest = extract_spanning_forest(graph, root_order=order_x)
            self.tree_intervals = minpost_intervals_tree(forest)

    def index_size_bytes(self) -> int:
        total = sum(r.itemsize * len(r) for r in self.ranks)
        if self.levels is not None:
            total += self.levels.itemsize * len(self.levels)
        if self.tree_intervals is not None:
            total += self.tree_intervals.memory_bytes()
        return total

    # ------------------------------------------------------------------
    def dominates(self, u: int, v: int) -> bool:
        """Whether ``u``'s rank ≤ ``v``'s in *every* dimension."""
        return all(r[u] <= r[v] for r in self.ranks)

    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        for r in self.ranks:
            if r[u] > r[v]:
                stats.negative_cuts += 1
                return False
        levels = self.levels
        if levels is not None and levels[u] >= levels[v]:
            stats.negative_cuts += 1
            return False
        intervals = self.tree_intervals
        if intervals is not None and intervals.contains(u, v):
            stats.positive_cuts += 1
            return True
        stats.searches += 1
        return self._search(u, v)

    def _make_cut_table(self) -> MultiDimCutTable:
        return MultiDimCutTable(self)

    def _search_pair(self, u: int, v: int) -> bool:
        return self._search(u, v)

    def _explain_details(self, u: int, v: int, explanation) -> None:
        """Per-dimension coordinates; splits coordinate cut from level."""
        details = explanation.details
        details["i(u)"] = tuple(r[u] for r in self.ranks)
        details["i(v)"] = tuple(r[v] for r in self.ranks)
        if self.levels is not None:
            details["level(u)"] = self.levels[u]
            details["level(v)"] = self.levels[v]
        if explanation.cut == "negative-cut":
            if not self.dominates(u, v):
                details["dominates"] = False
            else:
                explanation.cut = "level-filter"

    def _search(self, u: int, v: int) -> bool:
        """DFS pruned by the target's bound in every dimension."""
        ranks = self.ranks
        bounds = [r[v] for r in ranks]
        levels = self.levels
        intervals = self.tree_intervals
        level_v = levels[v] if levels is not None else 0
        indptr = self.graph.out_indptr
        indices = self.graph.out_indices
        stats = self.stats
        guard = self._guard

        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[u] = stamp
        stack = [u]
        while stack:
            w = stack.pop()
            stats.expanded += 1
            if guard is not None:
                guard.step()
            for k in range(indptr[w], indptr[w + 1]):
                child = indices[k]
                if child == v:
                    return True
                if visited[child] == stamp:
                    continue
                visited[child] = stamp
                pruned = False
                for r, bound in zip(ranks, bounds):
                    if r[child] > bound:
                        pruned = True
                        break
                if pruned or (
                    levels is not None and levels[child] >= level_v
                ):
                    stats.pruned += 1
                    continue
                if intervals is not None and intervals.contains(child, v):
                    return True
                stack.append(child)
        return False


register_index(MultiDimFelineIndex)
