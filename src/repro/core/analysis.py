"""Index-quality analysis: falsely implied paths and cut effectiveness.

The quality of a weak-dominance drawing is measured by its number of
*falsely implied paths* (false positives): ordered pairs ``(u, v)`` with
``i(u) ≼ i(v)`` but no path from ``u`` to ``v``.  Minimising them is
NP-hard (the paper cites Kornaropoulos/Tollis); the ``max-x`` heuristic is
a locally-optimal approximation.  These functions quantify how well a
built index does — they back the heuristic-ablation bench and several
property tests (e.g. the crown graph *must* have false positives).
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.core.index import FelineCoordinates
from repro.graph.digraph import DiGraph
from repro.graph.transitive import transitive_closure_bitsets

__all__ = [
    "count_false_positives",
    "false_positive_pairs",
    "dominance_pair_count",
    "negative_cut_rate",
]


def _dominance_order(coords: FelineCoordinates) -> list[int]:
    """Vertices sorted by x then y — helper for plane-sweep counting."""
    return sorted(range(coords.num_vertices), key=lambda v: (coords.x[v], coords.y[v]))


def dominance_pair_count(coords: FelineCoordinates) -> int:
    """Number of ordered pairs ``u ≠ v`` with ``i(u) ≼ i(v)``.

    Counted by a plane sweep over x with a binary indexed tree over y,
    O(n log n) — exact even on large stand-ins.  Since both coordinate
    arrays are permutations, ties are impossible for distinct vertices.
    """
    n = coords.num_vertices
    tree = [0] * (n + 1)

    def add(pos: int) -> None:
        i = pos + 1
        while i <= n:
            tree[i] += 1
            i += i & (-i)

    def prefix(pos: int) -> int:
        i = pos + 1
        total = 0
        while i > 0:
            total += tree[i]
            i -= i & (-i)
        return total

    count = 0
    for v in _dominance_order(coords):
        count += prefix(coords.y[v])  # earlier vertices with smaller x AND y
        add(coords.y[v])
    return count


def false_positive_pairs(
    graph: DiGraph, coords: FelineCoordinates
) -> Iterator[tuple[int, int]]:
    """Yield every falsely implied pair: ``i(u) ≼ i(v)`` but not ``r(u, v)``.

    Exact (uses the full transitive closure), so intended for the small
    graphs where the paper, too, inspects false positives.
    """
    closure = transitive_closure_bitsets(graph)
    x, y = coords.x, coords.y
    order = _dominance_order(coords)
    for i, u in enumerate(order):
        xu, yu = x[u], y[u]
        bits = closure[u]
        for v in order[i + 1 :]:
            if x[v] >= xu and y[v] >= yu and not (bits >> v) & 1:
                yield u, v


def count_false_positives(graph: DiGraph, coords: FelineCoordinates) -> int:
    """Total falsely implied paths of the drawing.

    Identity: dominance pairs = reachable pairs + false positives, because
    Theorem 1 makes every reachable pair a dominance pair.  We count both
    sides independently in tests; here we count directly.
    """
    return sum(1 for _ in false_positive_pairs(graph, coords))


def negative_cut_rate(
    graph: DiGraph,
    coords: FelineCoordinates,
    queries: Iterable[tuple[int, int]],
) -> float:
    """Fraction of the given queries answered by the dominance cut alone.

    The paper's key selling point is that "a significant portion of
    queries" resolves in O(1); this measures that portion for a workload.
    """
    total = 0
    cut = 0
    for u, v in queries:
        total += 1
        if not coords.dominates(u, v):
            cut += 1
    return cut / total if total else 0.0
