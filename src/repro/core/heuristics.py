"""Y-coordinate ordering heuristics for FELINE's index (ablation points).

Algorithm 1 computes the second topological ordering ``Y`` by repeatedly
deleting a current root, always the one with the **largest X rank** — the
Kornaropoulos heuristic, locally optimal for minimising falsely implied
paths.  To let the ablation benchmarks quantify that design choice, this
module exposes the paper's heuristic plus three controls:

========= =============================================================
``max-x``  the paper's choice: pop the root maximising ``X`` rank
``min-x``  adversarial control: pop the root *minimising* ``X`` rank,
           which tends to make ``Y`` correlate with ``X`` and so prunes
           almost nothing
``fifo``   plain Kahn order, ignoring ``X`` (a "no heuristic" control)
``random`` roots popped uniformly at random (seeded)
========= =============================================================

All heuristics return a valid topological order — Theorem 1 soundness
never depends on the heuristic, only the *false-positive rate* does.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from random import Random

from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.toposort import kahn_order, priority_kahn_order

__all__ = ["Y_HEURISTICS", "compute_y_order", "available_heuristics"]


def _max_x(graph: DiGraph, x_ranks: Sequence[int], seed: int) -> list[int]:
    return priority_kahn_order(graph, key=lambda v: -x_ranks[v])


def _min_x(graph: DiGraph, x_ranks: Sequence[int], seed: int) -> list[int]:
    return priority_kahn_order(graph, key=lambda v: x_ranks[v])


def _fifo(graph: DiGraph, x_ranks: Sequence[int], seed: int) -> list[int]:
    return kahn_order(graph)


def _random(graph: DiGraph, x_ranks: Sequence[int], seed: int) -> list[int]:
    rng = Random(seed)
    noise = [rng.random() for _ in range(graph.num_vertices)]
    return priority_kahn_order(graph, key=lambda v: noise[v])


Y_HEURISTICS: dict[str, Callable[[DiGraph, Sequence[int], int], list[int]]] = {
    "max-x": _max_x,
    "min-x": _min_x,
    "fifo": _fifo,
    "random": _random,
}


def available_heuristics() -> list[str]:
    """Names of the Y-ordering heuristics, paper's first."""
    return list(Y_HEURISTICS)


def compute_y_order(
    graph: DiGraph,
    x_ranks: Sequence[int],
    heuristic: str = "max-x",
    seed: int = 0,
) -> list[int]:
    """The ``Y`` topological order under the named heuristic.

    ``x_ranks[v]`` must be the ``X`` coordinate of ``v`` from the first
    ordering; only ``max-x`` / ``min-x`` read it.
    """
    try:
        func = Y_HEURISTICS[heuristic]
    except KeyError:
        known = ", ".join(Y_HEURISTICS)
        raise ReproError(
            f"unknown Y heuristic {heuristic!r}; known: {known}"
        ) from None
    return func(graph, x_ranks, seed)
