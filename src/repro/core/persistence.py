"""FELINE index persistence — build once, reload or memory-map later.

The paper's conclusion lists an *out-of-core* FELINE among the planned
extensions.  The index is four flat integer arrays, which makes it
naturally storage-friendly; this module defines a binary format and two
loading modes:

* ``mmap=False`` — read the arrays back into RAM (fast queries,
  construction cost skipped);
* ``mmap=True`` — back the arrays with :class:`numpy.memmap`, so the
  index pages in on demand and the resident footprint stays O(pages
  touched), the out-of-core access pattern (queries only touch the
  coordinates of vertices the pruned DFS actually visits).

Two on-disk versions exist.  v1 (little-endian)::

    magic     8 bytes  b"FELINEi1"
    n         u64      vertex count
    flags     u64      bit 0: levels present, bit 1: tree intervals present
    x         n × i64
    y         n × i64
    [levels   n × i64]
    [start    n × i64]
    [post     n × i64]

v2 — the default written format — adds integrity checksums so silent
bit-rot is detected at load time instead of surfacing as wrong answers::

    magic       8 bytes  b"FELINEi2"
    n           u64
    flags       u64
    header_crc  u32      CRC32 over magic ‖ n ‖ flags
    crc[i]      u32 × S  CRC32 of each section payload (S from flags)
    sections    n × i64 each, same order as v1

Every load failure raises a structured :class:`PersistenceError` (with
``path`` and the byte ``offset`` where the problem was detected) or its
subclass :class:`ChecksumError` (with the failing ``section``) — never a
raw :class:`struct.error` or numpy exception.  v1 files remain readable;
they simply carry no checksums to verify.

The graph itself is *not* stored — FELINE is an online-search index, so
the caller keeps the graph (e.g. via :mod:`repro.graph.io`) and pairs it
with the loaded coordinates.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from pathlib import Path

import numpy as np

from repro.core.index import FelineCoordinates
from repro.core.query import FelineIndex
from repro.exceptions import ChecksumError, PersistenceError
from repro.graph.digraph import DiGraph
from repro.graph.spanning import IntervalLabels
from repro.resilience import chaos

__all__ = [
    "FORMAT_VERSIONS",
    "save_coordinates",
    "load_coordinates",
    "save_index",
    "load_index",
]

_MAGIC_V1 = b"FELINEi1"
_MAGIC_V2 = b"FELINEi2"
_FLAG_LEVELS = 1
_FLAG_INTERVALS = 2
_KNOWN_FLAGS = _FLAG_LEVELS | _FLAG_INTERVALS
_CRC_CHUNK = 1 << 20

FORMAT_VERSIONS = (1, 2)


def _array_bytes(values) -> bytes:
    return np.asarray(values, dtype="<i8").tobytes()


def _section_names(flags: int) -> list[str]:
    names = ["x", "y"]
    if flags & _FLAG_LEVELS:
        names.append("levels")
    if flags & _FLAG_INTERVALS:
        names.extend(["start", "post"])
    return names


def _read_exact(handle, count: int, path: Path, what: str) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise PersistenceError(
            f"{path}: truncated index file while reading {what} "
            f"(wanted {count} bytes, got {len(data)})",
            path=path,
            offset=handle.tell() - len(data),
        )
    return data


def _crc_range(handle, offset: int, length: int) -> int:
    """CRC32 of ``length`` bytes at ``offset``, streamed in chunks."""
    handle.seek(offset)
    crc = 0
    remaining = length
    while remaining:
        chunk = handle.read(min(_CRC_CHUNK, remaining))
        if not chunk:
            break
        crc = zlib.crc32(chunk, crc)
        remaining -= len(chunk)
    return crc


def save_coordinates(
    coords: FelineCoordinates, path: str | Path, version: int = 2
) -> None:
    """Write a :class:`FelineCoordinates` to ``path``.

    ``version=2`` (the default) writes the checksummed format; ``version=1``
    writes the legacy format for interchange with older readers.
    """
    if version not in FORMAT_VERSIONS:
        raise PersistenceError(
            f"unsupported index format version {version}", path=path
        )
    path = Path(path)
    chaos.fire("persistence.save", path=str(path), version=version)
    flags = 0
    if coords.levels is not None:
        flags |= _FLAG_LEVELS
    if coords.tree_intervals is not None:
        flags |= _FLAG_INTERVALS

    payloads = [_array_bytes(coords.x), _array_bytes(coords.y)]
    if coords.levels is not None:
        payloads.append(_array_bytes(coords.levels))
    if coords.tree_intervals is not None:
        payloads.append(_array_bytes(coords.tree_intervals.start))
        payloads.append(_array_bytes(coords.tree_intervals.post))

    magic = _MAGIC_V1 if version == 1 else _MAGIC_V2
    header = struct.pack("<QQ", coords.num_vertices, flags)
    with open(path, "wb") as handle:
        handle.write(magic)
        handle.write(header)
        if version == 2:
            handle.write(struct.pack("<I", zlib.crc32(magic + header)))
            for payload in payloads:
                handle.write(struct.pack("<I", zlib.crc32(payload)))
        for payload in payloads:
            handle.write(payload)


def load_coordinates(
    path: str | Path, mmap: bool = False
) -> FelineCoordinates:
    """Read coordinates back; ``mmap=True`` pages them in lazily.

    Both v1 and v2 files are accepted (the magic selects the decoder).
    For v2 files every section checksum is verified up front — also in
    mmap mode, where verification streams the file once so later page-ins
    are known-good.
    """
    path = Path(path)
    chaos.fire("persistence.load", path=str(path), mmap=mmap)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC_V2))
        if len(magic) < len(_MAGIC_V2):
            raise PersistenceError(
                f"{path}: truncated index file (no complete magic; "
                f"got {len(magic)} bytes)",
                path=path,
                offset=0,
            )
        if magic == _MAGIC_V1:
            version = 1
        elif magic == _MAGIC_V2:
            version = 2
        else:
            raise PersistenceError(
                f"{path}: not a FELINE index file (bad magic {magic!r})",
                path=path,
                offset=0,
            )
        header = _read_exact(handle, 16, path, "header")
        n, flags = struct.unpack("<QQ", header)
        if flags & ~_KNOWN_FLAGS:
            raise PersistenceError(
                f"{path}: unknown flag bits {flags:#x} in index header",
                path=path,
                offset=len(magic) + 8,
            )
        sections = _section_names(flags)
        section_crcs: tuple[int, ...] | None = None
        if version == 2:
            stored = struct.unpack(
                "<I", _read_exact(handle, 4, path, "header checksum")
            )[0]
            if stored != zlib.crc32(magic + header):
                raise ChecksumError(
                    f"{path}: header checksum mismatch "
                    f"(file is corrupt or was partially written)",
                    path=path,
                    offset=len(magic) + 16,
                    section="header",
                )
            table = _read_exact(
                handle, 4 * len(sections), path, "section checksum table"
            )
            section_crcs = struct.unpack(f"<{len(sections)}I", table)
        data_start = handle.tell()

        expected = data_start + 8 * n * len(sections)
        actual = path.stat().st_size
        if actual != expected:
            raise PersistenceError(
                f"{path}: truncated or corrupt index "
                f"(expected {expected} bytes, found {actual})",
                path=path,
                offset=min(actual, expected),
            )

        if section_crcs is not None:
            for i, name in enumerate(sections):
                offset = data_start + 8 * n * i
                chaos.fire(
                    "persistence.load.section", path=str(path), section=name
                )
                if _crc_range(handle, offset, 8 * n) != section_crcs[i]:
                    raise ChecksumError(
                        f"{path}: checksum mismatch in section {name!r} "
                        f"(corrupt index data)",
                        path=path,
                        offset=offset,
                        section=name,
                    )

    def segment(index: int):
        offset = data_start + 8 * n * index
        if mmap:
            return np.memmap(
                path, dtype="<i8", mode="r", offset=offset, shape=(n,)
            )
        data = np.fromfile(path, dtype="<i8", count=n, offset=offset)
        return array("l", data.tolist())

    cursor = 0
    x = segment(cursor)
    cursor += 1
    y = segment(cursor)
    cursor += 1
    levels = None
    if flags & _FLAG_LEVELS:
        levels = segment(cursor)
        cursor += 1
    tree_intervals = None
    if flags & _FLAG_INTERVALS:
        start = segment(cursor)
        cursor += 1
        post = segment(cursor)
        tree_intervals = IntervalLabels(start=start, post=post)
    return FelineCoordinates(
        x=x, y=y, levels=levels, tree_intervals=tree_intervals
    )


def save_index(
    index: FelineIndex, path: str | Path, version: int = 2
) -> None:
    """Persist a built :class:`FelineIndex`'s coordinate structure."""
    if index.coordinates is None:
        raise PersistenceError(
            "cannot save an unbuilt index; call build() first", path=path
        )
    save_coordinates(index.coordinates, path, version=version)


def load_index(
    graph: DiGraph, path: str | Path, mmap: bool = False
) -> FelineIndex:
    """Reattach saved coordinates to ``graph``, skipping construction.

    The caller is responsible for pairing the file with the same graph it
    was built on; a vertex-count mismatch is rejected, anything subtler
    is caught by :func:`repro.resilience.verify_index` (the format stores
    no graph fingerprint to stay O(index) on disk).
    """
    coords = load_coordinates(path, mmap=mmap)
    if coords.num_vertices != graph.num_vertices:
        raise PersistenceError(
            f"index file covers {coords.num_vertices} vertices but the "
            f"graph has {graph.num_vertices}",
            path=path,
        )
    index = FelineIndex(graph)
    index.coordinates = coords
    # Loaded indexes skip build(), so materialize the batch engine's cut
    # table here; numpy views work over both in-memory and mmap arrays.
    index._cut_table = index._make_cut_table()
    index._built = True
    return index
