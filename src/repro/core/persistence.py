"""FELINE index persistence — build once, reload or memory-map later.

The paper's conclusion lists an *out-of-core* FELINE among the planned
extensions.  The index is four flat integer arrays, which makes it
naturally storage-friendly; this module defines a binary format and two
loading modes:

* ``mmap=False`` — read the arrays back into RAM (fast queries,
  construction cost skipped);
* ``mmap=True`` — back the arrays with :class:`numpy.memmap`, so the
  index pages in on demand and the resident footprint stays O(pages
  touched), the out-of-core access pattern (queries only touch the
  coordinates of vertices the pruned DFS actually visits).

Two on-disk versions exist.  v1 (little-endian)::

    magic     8 bytes  b"FELINEi1"
    n         u64      vertex count
    flags     u64      bit 0: levels present, bit 1: tree intervals present
    x         n × i64
    y         n × i64
    [levels   n × i64]
    [start    n × i64]
    [post     n × i64]

v2 — the default written format — adds integrity checksums so silent
bit-rot is detected at load time instead of surfacing as wrong answers::

    magic       8 bytes  b"FELINEi2"
    n           u64
    flags       u64      low 32: feature bits, high 32: observer count k
    header_crc  u32      CRC32 over magic ‖ n ‖ flags
    crc[i]      u32 × S  CRC32 of each section payload (S from flags)
    sections    payloads in flag order (sizes from the section layout)

Flag bit 2 marks an attached :class:`~repro.perf.ObserverLayer`
(:mod:`repro.perf.observers`): four ``n × i64`` rank/interval arrays,
the ``k × i64`` supporting vertices, and two ``n × ⌈k/8⌉`` packed
reachability bit matrices ride behind the coordinate sections, each
with its own checksum.  Observer persistence is v2-only — the layer's
bit matrices need the variable-size section layout.

Every load failure raises a structured :class:`PersistenceError` (with
``path`` and the byte ``offset`` where the problem was detected) or its
subclass :class:`ChecksumError` (with the failing ``section``) — never a
raw :class:`struct.error` or numpy exception.  v1 files remain readable;
they simply carry no checksums to verify.

The graph itself is *not* stored — FELINE is an online-search index, so
the caller keeps the graph (e.g. via :mod:`repro.graph.io`) and pairs it
with the loaded coordinates.
"""

from __future__ import annotations

import struct
import zlib
from array import array
from pathlib import Path

import numpy as np

from repro.core.index import FelineCoordinates
from repro.core.query import FelineIndex
from repro.exceptions import ChecksumError, PersistenceError
from repro.graph.digraph import DiGraph
from repro.graph.spanning import IntervalLabels
from repro.resilience import chaos

__all__ = [
    "FORMAT_VERSIONS",
    "save_coordinates",
    "load_coordinates",
    "save_index",
    "load_index",
]

_MAGIC_V1 = b"FELINEi1"
_MAGIC_V2 = b"FELINEi2"
_FLAG_LEVELS = 1
_FLAG_INTERVALS = 2
_FLAG_OBSERVERS = 4
_KNOWN_FLAGS = _FLAG_LEVELS | _FLAG_INTERVALS | _FLAG_OBSERVERS
_CRC_CHUNK = 1 << 20

FORMAT_VERSIONS = (1, 2)


def _array_bytes(values) -> bytes:
    return np.asarray(values, dtype="<i8").tobytes()


def _section_layout(n: int, flags: int) -> list[tuple[str, int]]:
    """The file's ``(section name, payload bytes)`` list, in disk order.

    Derived purely from the header so reader and writer can never
    disagree; observer sections are variable-size (``k`` lives in the
    high 32 bits of ``flags``).
    """
    layout = [("x", 8 * n), ("y", 8 * n)]
    if flags & _FLAG_LEVELS:
        layout.append(("levels", 8 * n))
    if flags & _FLAG_INTERVALS:
        layout.extend([("start", 8 * n), ("post", 8 * n)])
    if flags & _FLAG_OBSERVERS:
        k = flags >> 32
        row = (k + 7) // 8
        layout.extend([
            ("obs_t1", 8 * n),
            ("obs_t2", 8 * n),
            ("obs_fmax", 8 * n),
            ("obs_bmin", 8 * n),
            ("obs_supports", 8 * k),
            ("obs_fwd", row * n),
            ("obs_bwd", row * n),
        ])
    return layout


def _read_exact(handle, count: int, path: Path, what: str) -> bytes:
    data = handle.read(count)
    if len(data) != count:
        raise PersistenceError(
            f"{path}: truncated index file while reading {what} "
            f"(wanted {count} bytes, got {len(data)})",
            path=path,
            offset=handle.tell() - len(data),
        )
    return data


def _crc_range(handle, offset: int, length: int) -> int:
    """CRC32 of ``length`` bytes at ``offset``, streamed in chunks."""
    handle.seek(offset)
    crc = 0
    remaining = length
    while remaining:
        chunk = handle.read(min(_CRC_CHUNK, remaining))
        if not chunk:
            break
        crc = zlib.crc32(chunk, crc)
        remaining -= len(chunk)
    return crc


def save_coordinates(
    coords: FelineCoordinates,
    path: str | Path,
    version: int = 2,
    observers=None,
) -> None:
    """Write a :class:`FelineCoordinates` to ``path``.

    ``version=2`` (the default) writes the checksummed format; ``version=1``
    writes the legacy format for interchange with older readers.  An
    attached :class:`~repro.perf.ObserverLayer` rides along via
    ``observers`` (v2 only — v1 has no variable-size sections).
    """
    if version not in FORMAT_VERSIONS:
        raise PersistenceError(
            f"unsupported index format version {version}", path=path
        )
    if observers is not None and version != 2:
        raise PersistenceError(
            "observer layers need format version 2 "
            "(v1 cannot carry variable-size sections)",
            path=path,
        )
    path = Path(path)
    chaos.fire("persistence.save", path=str(path), version=version)
    flags = 0
    if coords.levels is not None:
        flags |= _FLAG_LEVELS
    if coords.tree_intervals is not None:
        flags |= _FLAG_INTERVALS

    payloads = [_array_bytes(coords.x), _array_bytes(coords.y)]
    if coords.levels is not None:
        payloads.append(_array_bytes(coords.levels))
    if coords.tree_intervals is not None:
        payloads.append(_array_bytes(coords.tree_intervals.start))
        payloads.append(_array_bytes(coords.tree_intervals.post))
    if observers is not None:
        if observers.num_vertices != coords.num_vertices:
            raise PersistenceError(
                f"observer layer covers {observers.num_vertices} vertices "
                f"but the coordinates cover {coords.num_vertices}",
                path=path,
            )
        flags |= _FLAG_OBSERVERS | (observers.k << 32)
        payloads.extend([
            _array_bytes(observers.t1),
            _array_bytes(observers.t2),
            _array_bytes(observers.fmax),
            _array_bytes(observers.bmin),
            _array_bytes(observers.supports),
            np.ascontiguousarray(
                observers.fwd_bits, dtype=np.uint8
            ).tobytes(),
            np.ascontiguousarray(
                observers.bwd_bits, dtype=np.uint8
            ).tobytes(),
        ])

    magic = _MAGIC_V1 if version == 1 else _MAGIC_V2
    header = struct.pack("<QQ", coords.num_vertices, flags)
    with open(path, "wb") as handle:
        handle.write(magic)
        handle.write(header)
        if version == 2:
            handle.write(struct.pack("<I", zlib.crc32(magic + header)))
            for payload in payloads:
                handle.write(struct.pack("<I", zlib.crc32(payload)))
        for payload in payloads:
            handle.write(payload)


def load_coordinates(
    path: str | Path, mmap: bool = False, with_observers: bool = False
):
    """Read coordinates back; ``mmap=True`` pages them in lazily.

    Both v1 and v2 files are accepted (the magic selects the decoder).
    For v2 files every section checksum is verified up front — also in
    mmap mode, where verification streams the file once so later page-ins
    are known-good.

    Returns the :class:`FelineCoordinates`; with ``with_observers=True``
    returns ``(coords, observer_layer_or_None)`` instead, decoding any
    persisted :class:`~repro.perf.ObserverLayer` sections.
    """
    path = Path(path)
    chaos.fire("persistence.load", path=str(path), mmap=mmap)
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC_V2))
        if len(magic) < len(_MAGIC_V2):
            raise PersistenceError(
                f"{path}: truncated index file (no complete magic; "
                f"got {len(magic)} bytes)",
                path=path,
                offset=0,
            )
        if magic == _MAGIC_V1:
            version = 1
        elif magic == _MAGIC_V2:
            version = 2
        else:
            raise PersistenceError(
                f"{path}: not a FELINE index file (bad magic {magic!r})",
                path=path,
                offset=0,
            )
        header = _read_exact(handle, 16, path, "header")
        n, flags = struct.unpack("<QQ", header)
        feature_bits = flags & 0xFFFFFFFF
        if feature_bits & ~_KNOWN_FLAGS or (
            flags >> 32 and not feature_bits & _FLAG_OBSERVERS
        ):
            raise PersistenceError(
                f"{path}: unknown flag bits {flags:#x} in index header",
                path=path,
                offset=len(magic) + 8,
            )
        if version == 1 and feature_bits & _FLAG_OBSERVERS:
            raise PersistenceError(
                f"{path}: v1 index files cannot carry observer sections",
                path=path,
                offset=len(magic) + 8,
            )
        layout = _section_layout(n, flags)
        section_crcs: tuple[int, ...] | None = None
        if version == 2:
            stored = struct.unpack(
                "<I", _read_exact(handle, 4, path, "header checksum")
            )[0]
            if stored != zlib.crc32(magic + header):
                raise ChecksumError(
                    f"{path}: header checksum mismatch "
                    f"(file is corrupt or was partially written)",
                    path=path,
                    offset=len(magic) + 16,
                    section="header",
                )
            table = _read_exact(
                handle, 4 * len(layout), path, "section checksum table"
            )
            section_crcs = struct.unpack(f"<{len(layout)}I", table)
        data_start = handle.tell()

        offsets: dict[str, int] = {}
        sizes: dict[str, int] = {}
        cursor = data_start
        for name, nbytes in layout:
            offsets[name] = cursor
            sizes[name] = nbytes
            cursor += nbytes
        expected = cursor
        actual = path.stat().st_size
        if actual != expected:
            raise PersistenceError(
                f"{path}: truncated or corrupt index "
                f"(expected {expected} bytes, found {actual})",
                path=path,
                offset=min(actual, expected),
            )

        if section_crcs is not None:
            for i, (name, nbytes) in enumerate(layout):
                chaos.fire(
                    "persistence.load.section", path=str(path), section=name
                )
                if _crc_range(
                    handle, offsets[name], nbytes
                ) != section_crcs[i]:
                    raise ChecksumError(
                        f"{path}: checksum mismatch in section {name!r} "
                        f"(corrupt index data)",
                        path=path,
                        offset=offsets[name],
                        section=name,
                    )

    def int_section(name: str, count: int):
        """An ``i64`` section as a numpy (mmap) or stdlib array."""
        if not count:
            return np.zeros(0, dtype=np.int64)
        if mmap:
            return np.memmap(
                path, dtype="<i8", mode="r",
                offset=offsets[name], shape=(count,),
            )
        data = np.fromfile(
            path, dtype="<i8", count=count, offset=offsets[name]
        )
        return array("l", data.tolist())

    def bit_section(name: str, rows: int, row_bytes: int):
        """A packed ``uint8`` bit-matrix section (observer bitsets)."""
        if not rows * row_bytes:
            return np.zeros((rows, row_bytes), dtype=np.uint8)
        if mmap:
            return np.memmap(
                path, dtype=np.uint8, mode="r",
                offset=offsets[name], shape=(rows, row_bytes),
            )
        return np.fromfile(
            path, dtype=np.uint8, count=rows * row_bytes,
            offset=offsets[name],
        ).reshape(rows, row_bytes)

    x = int_section("x", n)
    y = int_section("y", n)
    levels = int_section("levels", n) if flags & _FLAG_LEVELS else None
    tree_intervals = None
    if flags & _FLAG_INTERVALS:
        tree_intervals = IntervalLabels(
            start=int_section("start", n), post=int_section("post", n)
        )
    coords = FelineCoordinates(
        x=x, y=y, levels=levels, tree_intervals=tree_intervals
    )
    if not with_observers:
        return coords
    observers = None
    if feature_bits & _FLAG_OBSERVERS:
        from repro.perf.observers import ObserverLayer

        k = flags >> 32
        row = (k + 7) // 8
        observers = ObserverLayer(
            t1=np.asarray(int_section("obs_t1", n), dtype=np.int64),
            t2=np.asarray(int_section("obs_t2", n), dtype=np.int64),
            fmax=np.asarray(int_section("obs_fmax", n), dtype=np.int64),
            bmin=np.asarray(int_section("obs_bmin", n), dtype=np.int64),
            supports=np.asarray(
                int_section("obs_supports", k), dtype=np.int64
            ),
            fwd_bits=bit_section("obs_fwd", n, row),
            bwd_bits=bit_section("obs_bwd", n, row),
        )
    return coords, observers


def save_index(
    index: FelineIndex, path: str | Path, version: int = 2
) -> None:
    """Persist a built :class:`FelineIndex`'s coordinate structure.

    An attached observer layer is persisted alongside (v2 only), so a
    reload restores the exact same pre-pass behaviour.
    """
    if index.coordinates is None:
        raise PersistenceError(
            "cannot save an unbuilt index; call build() first", path=path
        )
    save_coordinates(
        index.coordinates, path, version=version, observers=index.observers
    )


def load_index(
    graph: DiGraph, path: str | Path, mmap: bool = False
) -> FelineIndex:
    """Reattach saved coordinates to ``graph``, skipping construction.

    The caller is responsible for pairing the file with the same graph it
    was built on; a vertex-count mismatch is rejected, anything subtler
    is caught by :func:`repro.resilience.verify_index` (the format stores
    no graph fingerprint to stay O(index) on disk).  Persisted observer
    sections are reattached via
    :meth:`~repro.baselines.base.ReachabilityIndex.attach_observers`.
    """
    coords, observers = load_coordinates(
        path, mmap=mmap, with_observers=True
    )
    if coords.num_vertices != graph.num_vertices:
        raise PersistenceError(
            f"index file covers {coords.num_vertices} vertices but the "
            f"graph has {graph.num_vertices}",
            path=path,
        )
    index = FelineIndex(graph)
    index.coordinates = coords
    # Loaded indexes skip build(), so materialize the batch engine's cut
    # table and bind the search kernel here; numpy views work over both
    # in-memory and mmap arrays.
    index._cut_table = index._make_cut_table()
    index._built = True
    index._bind_kernel()
    if observers is not None:
        index.attach_observers(observers)
    return index
