"""FELINE index persistence — build once, reload or memory-map later.

The paper's conclusion lists an *out-of-core* FELINE among the planned
extensions.  The index is four flat integer arrays, which makes it
naturally storage-friendly; this module defines a binary format and two
loading modes:

* ``mmap=False`` — read the arrays back into RAM (fast queries,
  construction cost skipped);
* ``mmap=True`` — back the arrays with :class:`numpy.memmap`, so the
  index pages in on demand and the resident footprint stays O(pages
  touched), the out-of-core access pattern (queries only touch the
  coordinates of vertices the pruned DFS actually visits).

Format (little-endian)::

    magic     8 bytes  b"FELINEi1"
    n         u64      vertex count
    flags     u64      bit 0: levels present, bit 1: tree intervals present
    x         n × i64
    y         n × i64
    [levels   n × i64]
    [start    n × i64]
    [post     n × i64]

The graph itself is *not* stored — FELINE is an online-search index, so
the caller keeps the graph (e.g. via :mod:`repro.graph.io`) and pairs it
with the loaded coordinates.
"""

from __future__ import annotations

import struct
from array import array
from pathlib import Path

import numpy as np

from repro.core.index import FelineCoordinates
from repro.core.query import FelineIndex
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.spanning import IntervalLabels

__all__ = ["save_coordinates", "load_coordinates", "save_index", "load_index"]

_MAGIC = b"FELINEi1"
_FLAG_LEVELS = 1
_FLAG_INTERVALS = 2


def _array_bytes(values) -> bytes:
    return np.asarray(values, dtype="<i8").tobytes()


def save_coordinates(coords: FelineCoordinates, path: str | Path) -> None:
    """Write a :class:`FelineCoordinates` to ``path`` in the v1 format."""
    flags = 0
    if coords.levels is not None:
        flags |= _FLAG_LEVELS
    if coords.tree_intervals is not None:
        flags |= _FLAG_INTERVALS
    with open(path, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<QQ", coords.num_vertices, flags))
        handle.write(_array_bytes(coords.x))
        handle.write(_array_bytes(coords.y))
        if coords.levels is not None:
            handle.write(_array_bytes(coords.levels))
        if coords.tree_intervals is not None:
            handle.write(_array_bytes(coords.tree_intervals.start))
            handle.write(_array_bytes(coords.tree_intervals.post))


def load_coordinates(
    path: str | Path, mmap: bool = False
) -> FelineCoordinates:
    """Read coordinates back; ``mmap=True`` pages them in lazily."""
    path = Path(path)
    header_size = len(_MAGIC) + 16
    with open(path, "rb") as handle:
        magic = handle.read(len(_MAGIC))
        if magic != _MAGIC:
            raise ReproError(
                f"{path}: not a FELINE index file (bad magic {magic!r})"
            )
        n, flags = struct.unpack("<QQ", handle.read(16))

    num_arrays = 2 + bool(flags & _FLAG_LEVELS) + 2 * bool(
        flags & _FLAG_INTERVALS
    )
    expected = header_size + 8 * n * num_arrays
    actual = path.stat().st_size
    if actual != expected:
        raise ReproError(
            f"{path}: truncated or corrupt index "
            f"(expected {expected} bytes, found {actual})"
        )

    def segment(index: int):
        offset = header_size + 8 * n * index
        if mmap:
            return np.memmap(
                path, dtype="<i8", mode="r", offset=offset, shape=(n,)
            )
        data = np.fromfile(path, dtype="<i8", count=n, offset=offset)
        return array("l", data.tolist())

    cursor = 0
    x = segment(cursor)
    cursor += 1
    y = segment(cursor)
    cursor += 1
    levels = None
    if flags & _FLAG_LEVELS:
        levels = segment(cursor)
        cursor += 1
    tree_intervals = None
    if flags & _FLAG_INTERVALS:
        start = segment(cursor)
        cursor += 1
        post = segment(cursor)
        tree_intervals = IntervalLabels(start=start, post=post)
    return FelineCoordinates(
        x=x, y=y, levels=levels, tree_intervals=tree_intervals
    )


def save_index(index: FelineIndex, path: str | Path) -> None:
    """Persist a built :class:`FelineIndex`'s coordinate structure."""
    if index.coordinates is None:
        raise ReproError("cannot save an unbuilt index; call build() first")
    save_coordinates(index.coordinates, path)


def load_index(
    graph: DiGraph, path: str | Path, mmap: bool = False
) -> FelineIndex:
    """Reattach saved coordinates to ``graph``, skipping construction.

    The caller is responsible for pairing the file with the same graph it
    was built on; a vertex-count mismatch is rejected, anything subtler
    is undetectable by design (the format stores no graph fingerprint to
    stay O(index) on disk).
    """
    coords = load_coordinates(path, mmap=mmap)
    if coords.num_vertices != graph.num_vertices:
        raise ReproError(
            f"index file covers {coords.num_vertices} vertices but the "
            f"graph has {graph.num_vertices}"
        )
    index = FelineIndex(graph)
    index.coordinates = coords
    index._built = True
    return index
