"""Vectorised batch queries for FELINE.

Benchmark workloads ask hundreds of thousands of queries at once, and on
sparse graphs the vast majority die on the constant-time cuts.  Since the
batch engine landed in :mod:`repro.perf`, the vectorised cut pass lives
in :func:`repro.perf.engine.vectorized_query_many`, driven by the
:class:`~repro.core.query.FelineCutTable` that ``build()`` materialises
once — these module-level helpers remain as thin back-compat wrappers
returning :class:`numpy.ndarray` answers.

Call :meth:`FelineIndex.query_many` (or
:meth:`repro.Reachability.reachable_many` on the facade) instead: it
routes through the same engine and also feeds the observability layer's
batch instruments and the optional survivor-search pool.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.query import FelineIndex
from repro.exceptions import IndexNotBuiltError
from repro.perf.engine import vectorized_query_many

__all__ = ["feline_query_many", "query_batch"]


def feline_query_many(
    index: FelineIndex, pairs: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Answer ``pairs`` on a built :class:`FelineIndex`, vectorised.

    Returns a boolean array aligned with ``pairs``.  Statistics counters
    are updated like the scalar path (``queries``, ``equal_cuts``,
    ``negative_cuts``, ``positive_cuts``, ``searches`` — per-search
    ``expanded``/``pruned`` still accrue inside the fallback DFS).
    """
    if not index.built:
        raise IndexNotBuiltError(
            "feline: call build() before feline_query_many()"
        )
    if len(pairs) == 0:
        return np.zeros(0, dtype=bool)
    return np.asarray(vectorized_query_many(index, pairs), dtype=bool)


def query_batch(
    index: FelineIndex, pairs: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Back-compat wrapper over the vectorised batch path.

    .. deprecated:: 1.1
        Use :meth:`FelineIndex.query_many` (or
        :meth:`repro.Reachability.reachable_many` on the facade), which
        routes through the same vectorised cuts and also feeds the
        observability layer's batch instruments.  This wrapper stays for
        callers that want the raw :class:`numpy.ndarray`.
    """
    if not index.built:
        raise IndexNotBuiltError("feline: call build() before query_batch()")
    return feline_query_many(index, pairs)
