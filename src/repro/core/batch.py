"""Vectorised batch queries for FELINE.

Benchmark workloads ask hundreds of thousands of queries at once, and on
sparse graphs the vast majority die on the constant-time cuts.  This
module evaluates those cuts for a *whole batch* with numpy — one
vectorised pass classifies every pair as equal / negative-cut /
positive-cut / needs-search — and only the survivors run the per-query
pruned DFS.

The answers are bit-identical to the scalar loop; the win is
constant-factor (no Python interpreter work for the cut majority),
typically 3-10x on negative-heavy workloads.  This is the implementation
behind :meth:`FelineIndex.query_many` — call that; the module-level
:func:`query_batch` remains only for back-compat.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.query import FelineIndex
from repro.exceptions import IndexNotBuiltError

__all__ = ["feline_query_many", "query_batch"]


def feline_query_many(
    index: FelineIndex, pairs: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Answer ``pairs`` on a built :class:`FelineIndex`, vectorised.

    Returns a boolean array aligned with ``pairs``.  Statistics counters
    are updated like the scalar path (``queries``, ``equal_cuts``,
    ``negative_cuts``, ``positive_cuts``, ``searches`` — per-search
    ``expanded``/``pruned`` still accrue inside the fallback DFS).
    """
    coords = index.coordinates
    stats = index.stats
    if len(pairs) == 0:
        return np.zeros(0, dtype=bool)

    pairs_arr = np.asarray(pairs, dtype=np.int64)
    sources, targets = pairs_arr[:, 0], pairs_arr[:, 1]
    x = np.asarray(coords.x, dtype=np.int64)
    y = np.asarray(coords.y, dtype=np.int64)

    answers = np.zeros(len(pairs_arr), dtype=bool)
    equal = sources == targets
    answers[equal] = True

    # Negative cut: dominance fails in either dimension.
    dominated = (x[sources] <= x[targets]) & (y[sources] <= y[targets])
    if coords.levels is not None:
        levels = np.asarray(coords.levels, dtype=np.int64)
        dominated &= levels[sources] < levels[targets]
    negative = ~dominated & ~equal

    # Positive cut: tree-interval containment.
    undecided = ~equal & ~negative
    if coords.tree_intervals is not None:
        start = np.asarray(coords.tree_intervals.start, dtype=np.int64)
        post = np.asarray(coords.tree_intervals.post, dtype=np.int64)
        contained = (
            undecided
            & (start[sources] <= start[targets])
            & (post[targets] <= post[sources])
        )
        answers[contained] = True
        undecided &= ~contained
    else:
        contained = np.zeros(len(pairs_arr), dtype=bool)

    stats.queries += len(pairs_arr)
    stats.equal_cuts += int(equal.sum())
    stats.negative_cuts += int(negative.sum())
    stats.positive_cuts += int(contained.sum())

    # Scalar fallback for the survivors (the actual searches).
    survivor_indices = np.flatnonzero(undecided)
    stats.searches += len(survivor_indices)
    xs, ys = coords.x, coords.y
    for i in survivor_indices:
        u = int(sources[i])
        v = int(targets[i])
        answers[i] = index._search(u, v, xs[v], ys[v])
    return answers


def query_batch(
    index: FelineIndex, pairs: Sequence[tuple[int, int]]
) -> np.ndarray:
    """Back-compat wrapper over the vectorised batch path.

    .. deprecated:: 1.1
        Use :meth:`FelineIndex.query_many` (or
        :meth:`repro.Reachability.reachable_many` on the facade), which
        routes through the same vectorised cuts and also feeds the
        observability layer's batch instruments.  This wrapper stays for
        callers that want the raw :class:`numpy.ndarray`.
    """
    if not index.built:
        raise IndexNotBuiltError("feline: call build() before query_batch()")
    return feline_query_many(index, pairs)
