"""Distributed FELINE — a simulated cluster for the announced extension.

The paper's conclusion lists a *distributed* FELINE among the planned
versions.  No cluster is available in this environment, so this module
builds the closest faithful simulation (see DESIGN.md substitutions): a
:class:`SimulatedCluster` of shard workers with explicit message
accounting, exercising exactly the code path a real deployment would —
coordinate-based routing, local pruned expansion, cross-shard frontier
exchange.

Design (and why it is the natural FELINE distribution):

* **Partitioning.**  Vertices are sharded by contiguous ``X``-rank
  ranges.  FELINE's pruning is coordinate-based, so an X-range shard
  contains exactly the vertices of one vertical slab of the drawing; a
  query's admissible rectangle ``[i(u), i(v)]`` intersects only the
  slabs between ``x_u`` and ``x_v``, letting the coordinator skip whole
  shards.
* **Replication.**  The coordinate arrays (the index proper, O(|V|)
  integers — two orders of magnitude smaller than the graph) are
  replicated on every worker; the *adjacency* is partitioned: a worker
  stores only the out-edges of its own vertices.
* **Query protocol.**  The coordinator seeds the owner shard of ``u``
  with a frontier ``{u}``.  Each round, every shard with a non-empty
  frontier expands it locally (applying the usual dominance/level
  pruning), answers *found* if it sees ``v``, and emits the discovered
  non-local vertices grouped by owner; the coordinator forwards them
  (one message per shard pair per round).  Rounds repeat until a shard
  finds ``v`` or all frontiers drain.

Everything runs in-process and deterministically; the simulation's
observable outputs are the answers (tested against the oracle) and the
cost counters (messages, rounds, per-shard expansions) that a real
deployment would try to minimise.

The *real* deployment now exists: :mod:`repro.shard` runs the same
X-slab partitioning across actual forked worker processes, with SCARAB
backbone routing, supervision/failover and deadline propagation (see
``docs/SHARDING.md``).  This module remains the deterministic in-process
model — useful for cost accounting (messages, rounds) that a
multi-process run cannot measure reproducibly.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.core.index import FelineCoordinates, build_feline_index
from repro.exceptions import ReproError, WorkerError
from repro.graph.digraph import DiGraph
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import get_tracer
from repro.obs.timing import elapsed_ns, now_ns
from repro.resilience import chaos
from repro.resilience.retry import RetryPolicy

__all__ = ["ShardWorker", "SimulatedCluster", "ClusterStats"]


@dataclass
class ClusterStats:
    """Cost counters a real deployment would monitor."""

    queries: int = 0
    local_only_queries: int = 0
    negative_cuts: int = 0
    rounds: int = 0
    messages: int = 0
    forwarded_vertices: int = 0
    #: Worker dispatches that raised a (transient) WorkerError ...
    worker_failures: int = 0
    #: ... and how many of those were retried (with jittered backoff).
    retries: int = 0
    #: Cumulative expansions per worker since *cluster construction*
    #: (workers keep their own lifetime counters; reset() zeroes the
    #: query/message counters but snapshots, not rewinds, the workers).
    expansions_per_shard: list[int] = field(default_factory=list)

    def reset(self, num_shards: int) -> None:
        self.queries = 0
        self.local_only_queries = 0
        self.negative_cuts = 0
        self.rounds = 0
        self.messages = 0
        self.forwarded_vertices = 0
        self.worker_failures = 0
        self.retries = 0
        self.expansions_per_shard = [0] * num_shards


class ShardWorker:
    """One worker: owns an X-rank slab of vertices and their out-edges."""

    def __init__(
        self,
        shard_id: int,
        owned: list[int],
        graph: DiGraph,
        coords: FelineCoordinates,
        owner_of: array,
    ) -> None:
        self.shard_id = shard_id
        self.owned = set(owned)
        # Local adjacency: only out-edges of owned vertices.
        self._succ: dict[int, list[int]] = {
            v: list(graph.successors(v)) for v in owned
        }
        self._coords = coords
        self._owner_of = owner_of
        self._visited: set[int] = set()
        self._active_query = -1
        self.expanded = 0

    def expand(
        self,
        query_id: int,
        frontier: list[int],
        target: int,
        xv: int,
        yv: int,
    ) -> tuple[bool, dict[int, list[int]]]:
        """Run the pruned local DFS from ``frontier``.

        Returns ``(found, outbox)`` where ``outbox`` maps a shard id to
        the admissible non-local vertices discovered for it.
        """
        if query_id != self._active_query:
            self._active_query = query_id
            self._visited = set()
        coords = self._coords
        x, y = coords.x, coords.y
        levels = coords.levels
        level_v = levels[target] if levels is not None else 0
        owner_of = self._owner_of
        succ = self._succ
        visited = self._visited

        outbox: dict[int, list[int]] = {}
        stack = [v for v in frontier if v not in visited]
        visited.update(stack)
        while stack:
            w = stack.pop()
            self.expanded += 1
            for child in succ[w]:
                if child == target:
                    return True, outbox
                if child in visited:
                    continue
                visited.add(child)
                if x[child] > xv or y[child] > yv:
                    continue
                if levels is not None and levels[child] >= level_v:
                    continue
                owner = owner_of[child]
                if owner == self.shard_id:
                    stack.append(child)
                else:
                    outbox.setdefault(owner, []).append(child)
        return False, outbox


class SimulatedCluster:
    """A FELINE index served by ``num_shards`` simulated workers.

    Parameters
    ----------
    graph:
        The input DAG.
    num_shards:
        Number of workers; vertices are split into contiguous X-rank
        slabs of near-equal size.
    retry_policy:
        How transient :class:`~repro.exceptions.WorkerError` dispatches
        are retried; defaults to three attempts with jittered exponential
        backoff (recorded, not slept — the simulation stays instant).
        Non-transient failures and exhausted retries propagate: a query
        fails loudly rather than answering from a partial expansion.

    Examples
    --------
    >>> from repro.graph.generators import random_dag
    >>> cluster = SimulatedCluster(random_dag(500, avg_degree=2.0, seed=1),
    ...                            num_shards=4)
    >>> isinstance(cluster.query(0, 499), bool)
    True
    >>> cluster.stats.messages >= 0
    True
    """

    def __init__(
        self,
        graph: DiGraph,
        num_shards: int = 4,
        retry_policy: RetryPolicy | None = None,
        slow_log: SlowQueryLog | None = None,
    ) -> None:
        self.slow_log = slow_log
        if num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {num_shards}")
        self.graph = graph
        self.retry_policy = retry_policy or RetryPolicy()
        self.coords = build_feline_index(graph)
        n = graph.num_vertices
        self.num_shards = min(num_shards, n) if n else 1

        # Contiguous X-rank slabs: shard s owns ranks
        # [s * per_shard, (s+1) * per_shard).
        per_shard = max(1, -(-n // self.num_shards))  # ceil division
        owner_of = array("l", [0] * n)
        by_shard: list[list[int]] = [[] for _ in range(self.num_shards)]
        x = self.coords.x
        for v in range(n):
            shard = min(x[v] // per_shard, self.num_shards - 1)
            owner_of[v] = shard
            by_shard[shard].append(v)
        self.owner_of = owner_of
        self.workers = [
            ShardWorker(s, by_shard[s], graph, self.coords, owner_of)
            for s in range(self.num_shards)
        ]
        self.stats = ClusterStats()
        self.stats.reset(self.num_shards)
        self._query_counter = 0

    # ------------------------------------------------------------------
    def attach_slow_log(self, log: SlowQueryLog | None) -> SlowQueryLog | None:
        """Attach (or with ``None`` detach) a slow-query log; returns it."""
        self.slow_log = log
        return log

    def query(self, u: int, v: int) -> bool:
        """Answer ``r(u, v)`` through the cluster protocol.

        With tracing enabled the whole query runs inside a
        ``cluster.query`` span and every worker dispatch becomes a
        ``cluster.expand`` child span (parented through the ambient
        span), so a trace shows exactly which shards a query touched and
        for how long.  An attached slow log records per-query wall time.
        """
        tracer = get_tracer()
        slow = self.slow_log
        if not tracer.enabled and slow is None:
            return self._query_impl(u, v)
        span = tracer.span(
            "cluster.query", u=u, v=v, shards=self.num_shards
        )
        start = now_ns()
        with span:
            answer = self._query_impl(u, v)
            span.set_attribute("verdict", answer)
            span.set_attribute("rounds", self.stats.rounds)
        if slow is not None:
            slow.record(u, v, answer, elapsed_ns(start), "cluster")
        return answer

    def _query_impl(self, u: int, v: int) -> bool:
        stats = self.stats
        stats.queries += 1
        if u == v:
            return True
        coords = self.coords
        x, y = coords.x, coords.y
        xv, yv = x[v], y[v]
        if x[u] > xv or y[u] > yv:
            stats.negative_cuts += 1
            return False
        levels = coords.levels
        if levels is not None and levels[u] >= levels[v]:
            stats.negative_cuts += 1
            return False
        intervals = coords.tree_intervals
        if intervals is not None and intervals.contains(u, v):
            return True

        self._query_counter += 1
        query_id = self._query_counter
        frontiers: dict[int, list[int]] = {self.owner_of[u]: [u]}
        crossed_shards = False
        while frontiers:
            stats.rounds += 1
            next_frontiers: dict[int, list[int]] = {}
            for shard_id, frontier in frontiers.items():
                worker = self.workers[shard_id]
                found, outbox = self._dispatch(
                    worker, query_id, frontier, v, xv, yv
                )
                stats.expansions_per_shard[shard_id] = worker.expanded
                if found:
                    if not crossed_shards and not outbox:
                        stats.local_only_queries += 1
                    return True
                for owner, vertices in outbox.items():
                    crossed_shards = True
                    stats.messages += 1
                    stats.forwarded_vertices += len(vertices)
                    next_frontiers.setdefault(owner, []).extend(vertices)
            frontiers = next_frontiers
        if not crossed_shards:
            stats.local_only_queries += 1
        return False

    def _dispatch(
        self,
        worker,
        query_id: int,
        frontier: list[int],
        target: int,
        xv: int,
        yv: int,
    ):
        """One worker dispatch, retried on transient failure.

        Workers fail atomically (no partial side effects before the
        raise — :class:`~repro.resilience.chaos.FlakyWorker` keeps that
        contract), so a retry simply re-sends the same frontier.
        """
        policy = self.retry_policy
        retries_before = policy.retries

        def attempt():
            chaos.fire(
                "distributed.expand",
                shard_id=worker.shard_id,
                query_id=query_id,
                frontier_size=len(frontier),
            )
            try:
                return worker.expand(query_id, frontier, target, xv, yv)
            except WorkerError:
                self.stats.worker_failures += 1
                raise

        tracer = get_tracer()
        if not tracer.enabled:
            try:
                return policy.call(attempt)
            finally:
                self.stats.retries += policy.retries - retries_before
        # Child span per dispatch, parented under the cluster.query span
        # through the ambient contextvar.
        try:
            with tracer.span(
                "cluster.expand",
                shard=worker.shard_id,
                frontier=len(frontier),
            ) as span:
                found, outbox = policy.call(attempt)
                span.set_attribute("found", found)
                span.set_attribute("forwarded", sum(map(len, outbox.values())))
                return found, outbox
        finally:
            self.stats.retries += policy.retries - retries_before

    def shard_of(self, v: int) -> int:
        """The worker owning vertex ``v``."""
        return self.owner_of[v]

    def shard_sizes(self) -> list[int]:
        """Vertices per shard (load-balance observability)."""
        sizes = [0] * self.num_shards
        for v in range(self.graph.num_vertices):
            sizes[self.owner_of[v]] += 1
        return sizes

    def __repr__(self) -> str:
        return (
            f"<SimulatedCluster shards={self.num_shards} "
            f"|V|={self.graph.num_vertices} |E|={self.graph.num_edges}>"
        )
