"""FELINE query answering — the paper's Algorithms 2 and 3.

A query ``r(u, v)`` runs the two-step process of §3:

1. **Constant-time cuts.**  ``u == v`` answers positively (reflexivity);
   ``i(u) ⋠ i(v)`` answers negatively (Theorem 1 contrapositive — the
   *negative cut*); with the optional filters, ``l_u ≥ l_v`` answers
   negatively (*level filter*) and tree-interval containment answers
   positively (*positive-cut filter*) — Algorithm 3's lines 1–2 and 6.
2. **Refined online search.**  Otherwise an iterative DFS from ``u``
   expands only vertices ``w`` with ``i(w) ≼ i(v)`` — the per-dimension
   bounds checks that let FELINE discard branches GRAIL (no bound) and
   FERRARI (one-dimensional bound) keep exploring (Figures 5–7).

The visited set is a *timestamped* array reused across queries, so a query
costs O(vertices actually expanded), never O(|V|) — essential when a
workload issues hundreds of thousands of queries.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.core.index import (
    FelineCoordinates,
    FelineCoordinateViews,
    build_feline_index,
)
from repro.graph.digraph import DiGraph
from repro.perf.cut_table import CutTable

__all__ = ["FelineIndex", "FelineCutTable"]


class FelineCutTable(CutTable):
    """FELINE's O(1) cuts over the cached coordinate views.

    Negative: dominance fails in either dimension, or the level filter
    fires.  Positive: dominance holds, levels pass, and the min-post
    tree interval of ``v`` is contained in ``u``'s.
    """

    def __init__(self, coordinates: FelineCoordinates) -> None:
        views = coordinates.views
        self.x = views.x
        self.y = views.y
        self.levels = views.levels
        self.start = views.start
        self.post = views.post

    def classify(self, sources, targets):
        dominated = (self.x[sources] <= self.x[targets]) & (
            self.y[sources] <= self.y[targets]
        )
        levels = self.levels
        if levels is not None:
            dominated &= levels[sources] < levels[targets]
        negative = ~dominated
        if self.start is not None:
            positive = (
                dominated
                & (self.start[sources] <= self.start[targets])
                & (self.post[targets] <= self.post[sources])
            )
        else:
            positive = np.zeros(len(sources), dtype=bool)
        return positive, negative


class FelineIndex(ReachabilityIndex):
    """The FELINE reachability index (coordinates + filters + pruned DFS).

    Parameters
    ----------
    graph:
        The input DAG.
    y_heuristic, x_order, seed:
        Passed to :func:`repro.core.index.build_feline_index`; the
        defaults are the paper's evaluated configuration.
    use_level_filter, use_positive_cut:
        Enable the §3.4 filters (both on in the paper's experiments).

    Examples
    --------
    >>> from repro.graph.generators import diamond_graph
    >>> index = FelineIndex(diamond_graph()).build()
    >>> index.query(0, 3)
    True
    >>> index.query(1, 2)
    False
    """

    method_name = "feline"

    def __init__(
        self,
        graph: DiGraph,
        y_heuristic: str = "max-x",
        x_order: str = "dfs",
        use_level_filter: bool = True,
        use_positive_cut: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        self._y_heuristic = y_heuristic
        self._x_order = x_order
        self._use_level_filter = use_level_filter
        self._use_positive_cut = use_positive_cut
        self._seed = seed
        self.coordinates: FelineCoordinates | None = None
        # Timestamped visited marks: _visited[w] == _stamp ⇔ w seen in the
        # current query's search.
        self._visited = array("l", [0] * graph.num_vertices)
        self._stamp = 0

    # ------------------------------------------------------------------
    def _build(self) -> None:
        self.coordinates = build_feline_index(
            self.graph,
            y_heuristic=self._y_heuristic,
            x_order=self._x_order,
            with_level_filter=self._use_level_filter,
            with_positive_cut=self._use_positive_cut,
            seed=self._seed,
        )

    def index_size_bytes(self) -> int:
        if self.coordinates is None:
            return 0
        return self.coordinates.memory_bytes()

    def _make_cut_table(self) -> FelineCutTable:
        return FelineCutTable(self.coordinates)

    def _search_pair(self, u: int, v: int) -> bool:
        coords = self.coordinates
        return self._search(u, v, coords.x[v], coords.y[v])

    def _bind_kernel(self) -> None:
        from repro.perf import kernels

        backend = kernels.resolve_backend(self._kernel_choice)
        self._kernel_backend = backend
        self._arm_kernel(
            kernels.feline_kernel(self, backend, self.coordinates)
        )

    def _shared_arrays(self) -> dict:
        arrays = super()._shared_arrays()
        views = self.coordinates.views
        arrays["feline.x"] = views.x
        arrays["feline.y"] = views.y
        if views.levels is not None:
            arrays["feline.levels"] = views.levels
        if views.start is not None:
            arrays["feline.start"] = views.start
            arrays["feline.post"] = views.post
        return arrays

    def _adopt_shared_arrays(self, pages) -> None:
        super()._adopt_shared_arrays(pages)
        coords = self.coordinates
        views = coords.views
        self._shared_originals["feline"] = views
        # cached_property storage — assign through __dict__ (the
        # dataclass is frozen; cached_property itself does the same).
        coords.__dict__["views"] = FelineCoordinateViews(
            x=pages.view("feline.x"),
            y=pages.view("feline.y"),
            levels=(
                pages.view("feline.levels")
                if views.levels is not None
                else None
            ),
            start=(
                pages.view("feline.start")
                if views.start is not None
                else None
            ),
            post=(
                pages.view("feline.post")
                if views.post is not None
                else None
            ),
        )

    def _restore_shared_arrays(self) -> None:
        super()._restore_shared_arrays()
        views = (self._shared_originals or {}).get("feline")
        if views is not None:
            self.coordinates.__dict__["views"] = views

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True

        coords = self.coordinates
        x, y = coords.x, coords.y
        xv, yv = x[v], y[v]
        if x[u] > xv or y[u] > yv:
            stats.negative_cuts += 1
            return False

        levels = coords.levels
        if levels is not None and levels[u] >= levels[v]:
            stats.negative_cuts += 1
            return False

        intervals = coords.tree_intervals
        if intervals is not None and intervals.contains(u, v):
            stats.positive_cuts += 1
            return True

        stats.searches += 1
        return self._search(u, v, xv, yv)

    def _explain_details(self, u: int, v: int, explanation) -> None:
        """FELINE provenance: coordinates, levels, intervals consulted.

        Refines the generic ``negative-cut`` classification into the
        coordinate cut (``i(u) ⋠ i(v)``, Theorem 1) versus the level
        filter (``l_u ≥ l_v``, §3.4.2) — the :class:`QueryStats`
        counters lump both as ``negative_cuts``.
        """
        coords = self.coordinates
        details = explanation.details
        details["i(u)"] = coords.coordinate(u)
        details["i(v)"] = coords.coordinate(v)
        levels = coords.levels
        if levels is not None:
            details["level(u)"] = levels[u]
            details["level(v)"] = levels[v]
        if explanation.cut == "negative-cut":
            if not coords.dominates(u, v):
                details["dominates"] = False
            else:
                explanation.cut = "level-filter"
        elif explanation.cut == "positive-cut":
            intervals = coords.tree_intervals
            details["interval(u)"] = (intervals.start[u], intervals.post[u])
            details["interval(v)"] = (intervals.start[v], intervals.post[v])

    def _search(self, u: int, v: int, xv: int, yv: int) -> bool:
        """Dispatch one pruned DFS to the bound kernel backend.

        The native kernels (``repro.perf.kernels``) are bit-identical to
        :meth:`_search_python` in answers, stats, and budget semantics;
        without one (the ``python`` backend) the original loop runs.
        """
        kernel = self._kernel
        if kernel is not None:
            return kernel.search(u, v, xv, yv)
        return self._search_python(u, v, xv, yv)

    def _search_python(self, u: int, v: int, xv: int, yv: int) -> bool:
        """Iterative DFS from ``u`` restricted to ``{w : i(w) ≼ i(v)}``.

        Honours the active :class:`~repro.resilience.budget.SearchGuard`
        (one step per expanded vertex) when a query budget is set.
        """
        coords = self.coordinates
        x, y = coords.x, coords.y
        levels = coords.levels
        intervals = coords.tree_intervals
        level_v = levels[v] if levels is not None else 0
        indptr = self.graph.out_indptr
        indices = self.graph.out_indices
        stats = self.stats
        guard = self._guard

        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[u] = stamp
        stack = [u]
        while stack:
            w = stack.pop()
            stats.expanded += 1
            if guard is not None:
                guard.step()
            for k in range(indptr[w], indptr[w + 1]):
                child = indices[k]
                if child == v:
                    return True
                if visited[child] == stamp:
                    continue
                visited[child] = stamp
                # Negative cuts on the branch (Definition 3 / Algorithm 3).
                if x[child] > xv or y[child] > yv:
                    stats.pruned += 1
                    continue
                if levels is not None and levels[child] >= level_v:
                    stats.pruned += 1
                    continue
                # Positive cut on the branch: a tree path from `child`
                # to `v` finishes the query without further expansion.
                if intervals is not None and intervals.contains(child, v):
                    return True
                stack.append(child)
        return False


register_index(FelineIndex)
