"""FELINE-I and FELINE-B — the reversed and bidirectional variants (§4.3.3).

Reversing every edge of a DAG changes the in/out-degree distributions, so
the index built on the reversed graph places vertices differently (the
paper's Figure 12 plots).  Two variants exploit this:

* **FELINE-I** builds the index on the reversed DAG ``G'`` and answers
  ``r(u, v)`` on ``G`` as ``r(v, u)`` on ``G'`` — same machinery, different
  coordinates, and for some datasets a better false-positive rate.
* **FELINE-B** builds *both* indexes and intersects their admissible
  regions: ``r(u, v)`` requires ``i(u) ≼ i(v)`` in the normal index *and*
  ``i'(v) ≼ i'(u)`` in the reversed one; during the DFS every expanded
  vertex ``w`` must satisfy both ``i(w) ≼ i(v)`` and ``i'(v) ≼ i'(w)``.
  Per the paper, the level and positive-cut filters are applied just once,
  on the normal index, which is why FELINE-B's index is less than twice
  FELINE's.
"""

from __future__ import annotations

from array import array

import numpy as np

from repro.baselines.base import ReachabilityIndex, register_index
from repro.core.index import (
    FelineCoordinates,
    FelineCoordinateViews,
    build_feline_index,
)
from repro.core.query import FelineIndex
from repro.graph.digraph import DiGraph
from repro.perf.cut_table import CutTable, SwappedCutTable

__all__ = ["FelineIIndex", "FelineBIndex", "FelineBCutTable"]


class FelineBCutTable(CutTable):
    """FELINE-B's cuts: both dominance tests plus the forward filters.

    Reproduces the scalar cut order — forward dominance, reversed
    dominance, level filter (all negative), then tree containment
    (positive) — as one vectorized pass.
    """

    def __init__(
        self, forward: FelineCoordinates, backward: FelineCoordinates
    ) -> None:
        fwd, bwd = forward.views, backward.views
        self.fx, self.fy = fwd.x, fwd.y
        self.bx, self.by = bwd.x, bwd.y
        self.levels = fwd.levels
        self.start, self.post = fwd.start, fwd.post

    def classify(self, sources, targets):
        negative = (
            (self.fx[sources] > self.fx[targets])
            | (self.fy[sources] > self.fy[targets])
            | (self.bx[sources] < self.bx[targets])
            | (self.by[sources] < self.by[targets])
        )
        levels = self.levels
        if levels is not None:
            negative |= levels[sources] >= levels[targets]
        if self.start is not None:
            positive = (
                ~negative
                & (self.start[sources] <= self.start[targets])
                & (self.post[targets] <= self.post[sources])
            )
        else:
            positive = np.zeros(len(sources), dtype=bool)
        return positive, negative


class FelineIIndex(ReachabilityIndex):
    """FELINE-I: the FELINE index built on the edge-reversed DAG.

    Internally delegates to a :class:`FelineIndex` over ``graph.reversed()``
    and swaps the query arguments; the inner index's statistics are
    mirrored on this object's ``stats``.
    """

    method_name = "feline-i"

    def __init__(self, graph: DiGraph, **feline_params) -> None:
        super().__init__(graph)
        self._inner = FelineIndex(graph.reversed(), **feline_params)
        # Share one stats object so counters land in the usual place.
        self._inner.stats = self.stats

    def _set_guard(self, guard) -> None:
        # Budget guards must reach the delegate's _search loop.
        self._guard = guard
        self._inner._guard = guard

    def _build(self) -> None:
        self._inner.build()

    def index_size_bytes(self) -> int:
        return self._inner.index_size_bytes()

    @property
    def coordinates(self) -> FelineCoordinates | None:
        """The coordinates over the *reversed* graph (Figure 12 plots)."""
        return self._inner.coordinates

    def _query(self, u: int, v: int) -> bool:
        # r(u, v) on G  ⇔  r(v, u) on reversed(G).
        return self._inner._query(v, u)

    def _make_cut_table(self) -> SwappedCutTable:
        # The inner index built its own table during self._build(); the
        # outer pass is that table with the argument order flipped.
        return SwappedCutTable(self._inner._cut_table)

    def _search_pair(self, u: int, v: int) -> bool:
        return self._inner._search_pair(v, u)

    def _bind_kernel(self) -> None:
        # Every search runs inside the delegate, so the kernel binds
        # there; the outer index only mirrors the resolved backend name.
        inner = self._inner
        inner._kernel_choice = self._kernel_choice
        inner._bind_kernel()
        self._kernel_backend = inner._kernel_backend

    def _search_pairs_batch(self, us, vs):
        return self._inner._search_pairs_batch(vs, us)

    # -- shared-memory pages: the label structures live in the delegate
    # (whose reversed graph shares this graph's CSR buffers), while the
    # observer layer — attached to the outer index — is handled here.
    def _shared_arrays(self) -> dict:
        arrays = self._inner._shared_arrays()
        arrays.update(self._observer_shared_arrays())
        return arrays

    def _adopt_shared_arrays(self, pages) -> None:
        self._inner._shared_originals = {}
        self._inner._adopt_shared_arrays(pages)
        self._adopt_observer_arrays(pages)

    def _restore_shared_arrays(self) -> None:
        self._inner._restore_shared_arrays()
        self._inner._shared_originals = None
        stash = (self._shared_originals or {}).get("observers")
        if stash is not None:
            for attr, arr in stash.items():
                setattr(self._observers, attr, arr)

    def _rematerialize_after_swap(self) -> None:
        # The delegate rebuilds its table and kernel from the adopted
        # views first; the outer table is a swap of the fresh inner one.
        self._inner._rematerialize_after_swap()
        self._materialize_cut_table()
        self._kernel_backend = self._inner._kernel_backend

    def _explain_details(self, u: int, v: int, explanation) -> None:
        # Provenance comes from the reversed-graph index with the
        # arguments swapped, exactly like the query itself.
        self._inner._explain_details(v, u, explanation)
        explanation.details["reversed_index"] = True


class FelineBIndex(ReachabilityIndex):
    """FELINE-B: bidirectional pruning with normal + reversed coordinates.

    Construction cost is roughly doubled (two Algorithm 1 runs) but the
    DFS prunes with four bounds instead of two, which the paper shows
    yields the best query times overall (Table 4, Figure 14).
    """

    method_name = "feline-b"

    def __init__(
        self,
        graph: DiGraph,
        y_heuristic: str = "max-x",
        x_order: str = "dfs",
        use_level_filter: bool = True,
        use_positive_cut: bool = True,
        seed: int = 0,
    ) -> None:
        super().__init__(graph)
        self._y_heuristic = y_heuristic
        self._x_order = x_order
        self._use_level_filter = use_level_filter
        self._use_positive_cut = use_positive_cut
        self._seed = seed
        self.forward: FelineCoordinates | None = None
        self.backward: FelineCoordinates | None = None
        self._visited = array("l", [0] * graph.num_vertices)
        self._stamp = 0

    def _build(self) -> None:
        # Filters live on the normal index only (paper §4.3.5): the
        # reversed index contributes coordinates alone.
        self.forward = build_feline_index(
            self.graph,
            y_heuristic=self._y_heuristic,
            x_order=self._x_order,
            with_level_filter=self._use_level_filter,
            with_positive_cut=self._use_positive_cut,
            seed=self._seed,
        )
        self.backward = build_feline_index(
            self.graph.reversed(),
            y_heuristic=self._y_heuristic,
            x_order=self._x_order,
            with_level_filter=False,
            with_positive_cut=False,
            seed=self._seed,
        )

    def index_size_bytes(self) -> int:
        total = 0
        if self.forward is not None:
            total += self.forward.memory_bytes()
        if self.backward is not None:
            total += self.backward.memory_bytes()
        return total

    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True

        fwd, bwd = self.forward, self.backward
        fx, fy = fwd.x, fwd.y
        bx, by = bwd.x, bwd.y
        xv, yv = fx[v], fy[v]
        # Normal-index dominance: i(u) ≼ i(v).
        if fx[u] > xv or fy[u] > yv:
            stats.negative_cuts += 1
            return False
        # Reversed-index dominance: i'(v) ≼ i'(u).
        rxv, ryv = bx[v], by[v]
        if bx[u] < rxv or by[u] < ryv:
            stats.negative_cuts += 1
            return False

        levels = fwd.levels
        if levels is not None and levels[u] >= levels[v]:
            stats.negative_cuts += 1
            return False

        intervals = fwd.tree_intervals
        if intervals is not None and intervals.contains(u, v):
            stats.positive_cuts += 1
            return True

        stats.searches += 1
        return self._search(u, v, xv, yv, rxv, ryv)

    def _make_cut_table(self) -> FelineBCutTable:
        return FelineBCutTable(self.forward, self.backward)

    def _search_pair(self, u: int, v: int) -> bool:
        fwd, bwd = self.forward, self.backward
        return self._search(
            u, v, fwd.x[v], fwd.y[v], bwd.x[v], bwd.y[v]
        )

    def _bind_kernel(self) -> None:
        from repro.perf import kernels

        backend = kernels.resolve_backend(self._kernel_choice)
        self._kernel_backend = backend
        self._arm_kernel(
            kernels.feline_kernel(self, backend, self.forward, self.backward)
        )

    def _shared_arrays(self) -> dict:
        arrays = super()._shared_arrays()
        for prefix, coords in (("fwd", self.forward), ("bwd", self.backward)):
            views = coords.views
            arrays[f"{prefix}.x"] = views.x
            arrays[f"{prefix}.y"] = views.y
            if views.levels is not None:
                arrays[f"{prefix}.levels"] = views.levels
            if views.start is not None:
                arrays[f"{prefix}.start"] = views.start
                arrays[f"{prefix}.post"] = views.post
        return arrays

    def _adopt_shared_arrays(self, pages) -> None:
        super()._adopt_shared_arrays(pages)
        for prefix, coords in (("fwd", self.forward), ("bwd", self.backward)):
            views = coords.views
            self._shared_originals[prefix] = views
            coords.__dict__["views"] = FelineCoordinateViews(
                x=pages.view(f"{prefix}.x"),
                y=pages.view(f"{prefix}.y"),
                levels=(
                    pages.view(f"{prefix}.levels")
                    if views.levels is not None
                    else None
                ),
                start=(
                    pages.view(f"{prefix}.start")
                    if views.start is not None
                    else None
                ),
                post=(
                    pages.view(f"{prefix}.post")
                    if views.post is not None
                    else None
                ),
            )

    def _restore_shared_arrays(self) -> None:
        super()._restore_shared_arrays()
        originals = self._shared_originals or {}
        for prefix, coords in (("fwd", self.forward), ("bwd", self.backward)):
            views = originals.get(prefix)
            if views is not None:
                coords.__dict__["views"] = views

    def _explain_details(self, u: int, v: int, explanation) -> None:
        """Both coordinate sets; splits the three negative cuts apart."""
        fwd, bwd = self.forward, self.backward
        details = explanation.details
        details["i(u)"] = (fwd.x[u], fwd.y[u])
        details["i(v)"] = (fwd.x[v], fwd.y[v])
        details["i'(u)"] = (bwd.x[u], bwd.y[u])
        details["i'(v)"] = (bwd.x[v], bwd.y[v])
        levels = fwd.levels
        if levels is not None:
            details["level(u)"] = levels[u]
            details["level(v)"] = levels[v]
        if explanation.cut == "negative-cut":
            if not fwd.dominates(u, v):
                details["dominates"] = False
            elif not bwd.dominates(v, u):
                explanation.cut = "negative-cut-reversed"
                details["reversed_dominates"] = False
            else:
                explanation.cut = "level-filter"
        elif explanation.cut == "positive-cut":
            intervals = fwd.tree_intervals
            details["interval(u)"] = (intervals.start[u], intervals.post[u])
            details["interval(v)"] = (intervals.start[v], intervals.post[v])

    def _search(
        self, u: int, v: int, xv: int, yv: int, rxv: int, ryv: int
    ) -> bool:
        """Dispatch one four-bound pruned DFS to the bound kernel."""
        kernel = self._kernel
        if kernel is not None:
            return kernel.search(u, v, xv, yv, rxv, ryv)
        return self._search_python(u, v, xv, yv, rxv, ryv)

    def _search_python(
        self, u: int, v: int, xv: int, yv: int, rxv: int, ryv: int
    ) -> bool:
        """DFS restricted to the intersection of both admissible regions."""
        fwd, bwd = self.forward, self.backward
        fx, fy = fwd.x, fwd.y
        bx, by = bwd.x, bwd.y
        levels = fwd.levels
        intervals = fwd.tree_intervals
        level_v = levels[v] if levels is not None else 0
        indptr = self.graph.out_indptr
        indices = self.graph.out_indices
        stats = self.stats
        guard = self._guard

        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[u] = stamp
        stack = [u]
        while stack:
            w = stack.pop()
            stats.expanded += 1
            if guard is not None:
                guard.step()
            for k in range(indptr[w], indptr[w + 1]):
                child = indices[k]
                if child == v:
                    return True
                if visited[child] == stamp:
                    continue
                visited[child] = stamp
                if fx[child] > xv or fy[child] > yv:
                    stats.pruned += 1
                    continue
                if bx[child] < rxv or by[child] < ryv:
                    stats.pruned += 1
                    continue
                if levels is not None and levels[child] >= level_v:
                    stats.pruned += 1
                    continue
                if intervals is not None and intervals.contains(child, v):
                    return True
                stack.append(child)
        return False


register_index(FelineIIndex)
register_index(FelineBIndex)
