"""Method advisor: pick a reachability index from graph features.

The paper's discussion (§4.5) spells out when each method shines:
FELINE's construction is always cheapest; self-sufficient indexes
(INTERVAL, TF-Label) answer fastest *when they fit*; INTERVAL collapses
on large dense graphs; FELINE-B buys the best query times for a 2×
construction cost.  :func:`recommend_method` encodes those findings as
explicit rules over cheap structural features, and
:func:`describe_recommendation` explains the choice — useful both as a
library entry point for downstream users ("just give me an index") and
as an executable summary of the evaluation.

The rules (checked in order):

1. tiny graphs (≤ ``tc_vertex_limit`` vertices) → ``tc``: the full
   closure fits trivially and nothing beats O(1) everywhere;
2. near-trees in the fan-out orientation (non-tree edge fraction below
   ``dual_link_fraction``) → ``dual-labeling``: O(1) queries at O(n+t²);
3. small-to-medium graphs (closure storage within
   ``interval_budget_bytes``) → ``interval``: the paper's fastest
   query answers while memory allows;
4. query-heavy expectations on everything else → ``feline-b``;
   otherwise → ``feline`` (best construction, near-best queries).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.graph.digraph import DiGraph
from repro.graph.spanning import extract_spanning_forest, minpost_intervals_tree

__all__ = ["GraphFeatures", "extract_features", "recommend_method", "describe_recommendation"]


@dataclass(frozen=True)
class GraphFeatures:
    """The cheap structural features the advisor's rules read."""

    num_vertices: int
    num_edges: int
    avg_degree: float
    root_fraction: float
    leaf_fraction: float
    non_tree_edge_fraction: float


def extract_features(graph: DiGraph) -> GraphFeatures:
    """One O(|V| + |E|) pass over the graph."""
    n = graph.num_vertices
    if n == 0:
        return GraphFeatures(0, 0, 0.0, 0.0, 0.0, 0.0)
    forest = extract_spanning_forest(graph)
    tree = minpost_intervals_tree(forest)
    non_tree = sum(
        1
        for u, v in graph.edges()
        if forest.parent[v] != u and not tree.contains(u, v)
    )
    m = graph.num_edges
    return GraphFeatures(
        num_vertices=n,
        num_edges=m,
        avg_degree=m / n,
        root_fraction=len(graph.roots()) / n,
        leaf_fraction=len(graph.leaves()) / n,
        non_tree_edge_fraction=(non_tree / m) if m else 0.0,
    )


def recommend_method(
    graph: DiGraph,
    expect_query_heavy: bool = False,
    tc_vertex_limit: int = 512,
    dual_link_fraction: float = 0.02,
    interval_budget_bytes: int = 32 * 1024 * 1024,
) -> str:
    """Registry name of the advised method for ``graph``.

    ``expect_query_heavy`` biases toward FELINE-B when no specialised
    structure applies (the paper: best query times, doubled build).
    """
    features = extract_features(graph)
    n = features.num_vertices
    if n <= tc_vertex_limit:
        return "tc"
    if (
        features.num_edges > 0
        and features.non_tree_edge_fraction <= dual_link_fraction
    ):
        return "dual-labeling"
    # INTERVAL's storage is data-dependent; the conservative proxy the
    # paper's failures suggest is the dense-closure estimate n·deg·16.
    projected = 16 * features.num_edges * max(1.0, features.avg_degree)
    if projected <= interval_budget_bytes and not expect_query_heavy:
        return "interval"
    return "feline-b" if expect_query_heavy else "feline"


def describe_recommendation(graph: DiGraph, **advisor_kwargs) -> str:
    """The recommendation plus the features and rule that produced it."""
    features = extract_features(graph)
    method = recommend_method(graph, **advisor_kwargs)
    reasons = {
        "tc": "graph is tiny; the full transitive closure fits trivially",
        "dual-labeling": "near-tree (few non-tree edges); O(1) queries "
        "at O(n + t^2) space",
        "interval": "closure projected to fit memory; fastest queries "
        "among the paper's methods",
        "feline": "general case; best construction time, near-best queries",
        "feline-b": "query-heavy general case; best query times for a "
        "doubled construction cost",
    }
    return (
        f"recommended: {method}\n"
        f"  |V|={features.num_vertices} |E|={features.num_edges} "
        f"avg_degree={features.avg_degree:.2f}\n"
        f"  roots={features.root_fraction:.0%} "
        f"leaves={features.leaf_fraction:.0%} "
        f"non-tree-edges={features.non_tree_edge_fraction:.0%}\n"
        f"  because: {reasons[method]}"
    )
