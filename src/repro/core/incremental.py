"""Incremental FELINE — the paper's announced future-work variant.

The conclusion of the paper states: "We are currently working on
distributed, out-of-core and incremental versions of Feline. We believe
that its index may be extended to support efficiently these versions."
This module delivers the incremental version: a FELINE index that absorbs
**edge and vertex insertions** without rebuilding.

Design
------
* Both coordinate orderings are maintained online with the Pearce–Kelly
  algorithm (:class:`repro.graph.dynamic.DynamicTopologicalOrder`):
  an insertion permutes only the affected rank window.
* The ``Y`` order's repair is priority-biased by the current ``X``
  ranks, keeping the spirit of the Kornaropoulos max-X-rank heuristic as
  the drawing evolves (the static heuristic's global pass is impossible
  online; local bias is the natural incremental analogue).
* Vertex levels are maintained by forward propagation (levels only grow
  under insertions), preserving the level filter.
* The positive-cut filter is **dropped**: min-post intervals over a
  spanning forest have no cheap incremental repair, and the filter is an
  optimization, never needed for correctness.

Soundness is unconditional: both orderings are kept topological after
every insertion, so Theorem 1 (``r(u, v) ⇒ i(u) ≼ i(v)``) holds at all
times, and the pruned DFS stays exact.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable

from repro.exceptions import NotADAGError
from repro.graph.digraph import DiGraph
from repro.graph.dynamic import DynamicDiGraph, DynamicTopologicalOrder
from repro.graph.levels import compute_levels
from repro.graph.toposort import dfs_topological_order, ranks_from_order

__all__ = ["IncrementalFelineIndex"]


class IncrementalFelineIndex:
    """A FELINE index over a growing DAG.

    Parameters
    ----------
    graph:
        Initial DAG as a static :class:`DiGraph`, a ``(num_vertices,
        edges)`` pair via :meth:`from_edges`, or nothing (empty start).

    Examples
    --------
    >>> index = IncrementalFelineIndex.from_edges(3, [(0, 1)])
    >>> index.add_edge(1, 2)
    >>> index.query(0, 2)
    True
    >>> index.add_edge(2, 0)
    Traceback (most recent call last):
        ...
    repro.exceptions.NotADAGError: edge (2, 0) would create a cycle
    """

    def __init__(self, graph: DiGraph | None = None) -> None:
        if graph is None:
            graph = DiGraph(0, [])
        self._graph = DynamicDiGraph.from_edges(
            graph.num_vertices, graph.edges()
        )
        order_x = dfs_topological_order(graph)
        x_ranks = ranks_from_order(order_x) if order_x else array("l")
        self._x = DynamicTopologicalOrder(self._graph, initial_order=order_x)
        # Seed Y with the same valid order; the X-rank priority steers
        # every subsequent repair toward the heuristic's preference.
        self._y = DynamicTopologicalOrder(
            self._graph, initial_order=order_x, priority=x_ranks
        )
        self._levels = compute_levels(graph)
        self._visited = array("l", [0] * graph.num_vertices)
        self._stamp = 0
        self.edges_inserted = 0
        self.reorders = 0

    @classmethod
    def from_edges(
        cls, num_vertices: int, edges: Iterable[tuple[int, int]]
    ) -> "IncrementalFelineIndex":
        return cls(DiGraph(num_vertices, list(edges)))

    # ------------------------------------------------------------------
    # growth
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self._graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self._graph.num_edges

    def add_vertex(self) -> int:
        """Append an isolated vertex; returns its id."""
        v = self._graph.add_vertex()
        self._x.append_vertex()
        self._y.append_vertex()
        self._levels.append(0)
        self._visited.append(0)
        return v

    def add_edge(self, u: int, v: int) -> None:
        """Insert edge ``(u, v)``, repairing coordinates and levels.

        Raises :class:`NotADAGError` (graph unchanged) if the edge would
        close a cycle.
        """
        # X and Y share one DynamicDiGraph.  X's insert_edge both checks
        # acyclicity and appends the edge; Y then only needs the order
        # repair, done against the pre-insertion adjacency it discovers
        # (the new edge extends succ[u]/pred[v], which neither discovery
        # traverses from v forward or u backward).
        changed_x = self._x.insert_edge(u, v)
        changed_y = self._repair_second_order(u, v)
        self._propagate_levels(u, v)
        self.edges_inserted += 1
        if changed_x or changed_y:
            self.reorders += 1

    def _repair_second_order(self, u: int, v: int) -> bool:
        """Repair Y for an edge already present in the shared graph."""
        y = self._y
        lower, upper = y.ranks[v], y.ranks[u]
        if lower > upper:
            return False
        # u cannot appear in the forward set (a v -> u path would be the
        # cycle X's check just excluded), and symmetrically for v.
        delta_forward = y._discover_forward(v, upper)
        delta_backward = y._discover_backward(u, lower)
        y._reorder(delta_forward, delta_backward)
        return True

    def _propagate_levels(self, u: int, v: int) -> None:
        """Raise levels downstream of ``v`` where the new edge deepens them."""
        levels = self._levels
        required = levels[u] + 1
        if levels[v] >= required:
            return
        levels[v] = required
        stack = [v]
        successors = self._graph.successors
        while stack:
            w = stack.pop()
            next_level = levels[w] + 1
            for child in successors(w):
                if levels[child] < next_level:
                    levels[child] = next_level
                    stack.append(child)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def coordinate(self, v: int) -> tuple[int, int]:
        """The current ``i(v) = (x, y)``."""
        return self._x.ranks[v], self._y.ranks[v]

    def dominates(self, u: int, v: int) -> bool:
        """Whether ``i(u) ≼ i(v)`` under the current drawing."""
        return (
            self._x.ranks[u] <= self._x.ranks[v]
            and self._y.ranks[u] <= self._y.ranks[v]
        )

    def query(self, u: int, v: int) -> bool:
        """Whether ``v`` is reachable from ``u`` in the current graph."""
        if u == v:
            return True
        x, y = self._x.ranks, self._y.ranks
        xv, yv = x[v], y[v]
        if x[u] > xv or y[u] > yv:
            return False
        levels = self._levels
        if levels[u] >= levels[v]:
            return False
        self._stamp += 1
        stamp = self._stamp
        visited = self._visited
        visited[u] = stamp
        stack = [u]
        successors = self._graph.successors
        level_v = levels[v]
        while stack:
            w = stack.pop()
            for child in successors(w):
                if child == v:
                    return True
                if visited[child] == stamp:
                    continue
                visited[child] = stamp
                if x[child] > xv or y[child] > yv:
                    continue
                if levels[child] >= level_v:
                    continue
                stack.append(child)
        return False

    def check_invariants(self) -> bool:
        """Both orderings topological and levels consistent (test hook)."""
        if not (self._x.is_consistent() and self._y.is_consistent()):
            return False
        levels = self._levels
        return all(
            levels[a] < levels[b] for a, b in self._graph.edges()
        )

    def __repr__(self) -> str:
        return (
            f"<IncrementalFelineIndex |V|={self.num_vertices} "
            f"|E|={self.num_edges} inserts={self.edges_inserted} "
            f"reorders={self.reorders}>"
        )
