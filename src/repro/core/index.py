"""FELINE index construction — the paper's Algorithm 1.

The index assigns each vertex ``v`` a coordinate ``i(v) = (X_v, Y_v)`` in
the plane, where

* ``X`` is any topological ordering of the DAG (we use reversed DFS
  post-order, matching the paper's running example; a ``kahn`` variant is
  available), and
* ``Y`` is a second topological ordering produced by the Kornaropoulos
  heuristic: Kahn peeling that always deletes the current root with the
  **largest X rank** (see :mod:`repro.core.heuristics`).

Soundness (Theorem 1): for any two vertices, ``r(u, v)`` implies
``X_u ≤ X_v ∧ Y_u ≤ Y_v`` — both orderings are topological, so every edge
strictly increases both coordinates.  Because coordinates are permutations,
for distinct vertices the inequalities are strict.

The optional *positive-cut* (min-post intervals over a spanning forest,
§3.4.1) and *level* (§3.4.2) filters are built here too, since the paper
folds both into Algorithm 1's construction pass.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.core.heuristics import compute_y_order
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.levels import compute_levels
from repro.graph.spanning import (
    IntervalLabels,
    extract_spanning_forest,
    minpost_intervals_tree,
)
from repro.graph.toposort import (
    dfs_topological_order,
    kahn_order,
    ranks_from_order,
)
from repro.obs.metrics import get_registry

__all__ = ["FelineCoordinates", "FelineCoordinateViews", "build_feline_index"]


@dataclass(frozen=True)
class FelineCoordinateViews:
    """Numpy views of a :class:`FelineCoordinates` instance.

    ``x``/``y`` (and ``levels``/``start``/``post`` when the filters are
    on) are ``int64`` views of the underlying ``array`` storage — created
    once and cached on the owning coordinates (which are frozen, so the
    views can never go stale).  The batch engine's cut tables read these
    instead of converting per call.
    """

    x: np.ndarray
    y: np.ndarray
    levels: np.ndarray | None
    start: np.ndarray | None
    post: np.ndarray | None


@dataclass(frozen=True)
class FelineCoordinates:
    """The FELINE index: per-vertex plane coordinates plus optional filters.

    Attributes
    ----------
    x, y:
        ``x[v]``, ``y[v]`` are the coordinates ``i(v)``; each array is a
        permutation of ``0 .. n-1``.
    levels:
        Vertex depths for the level filter, or ``None`` when disabled.
    tree_intervals:
        Min-post labels over a spanning forest for the positive-cut
        filter, or ``None`` when disabled.
    """

    x: array
    y: array
    levels: array | None
    tree_intervals: IntervalLabels | None

    @property
    def num_vertices(self) -> int:
        return len(self.x)

    def dominates(self, u: int, v: int) -> bool:
        """Whether ``i(u) ≼ i(v)`` (``v`` in the upper-right quadrant).

        By Theorem 1 a *false* result disproves ``r(u, v)`` in O(1) — the
        negative cut.
        """
        return self.x[u] <= self.x[v] and self.y[u] <= self.y[v]

    def coordinate(self, v: int) -> tuple[int, int]:
        """``i(v)`` as an ``(x, y)`` pair — e.g. for Figure 12 plots."""
        return self.x[v], self.y[v]

    @cached_property
    def views(self) -> FelineCoordinateViews:
        """Cached numpy views of the coordinate (and filter) arrays.

        Computed on first access, then the identical
        :class:`FelineCoordinateViews` object forever (the dataclass is
        frozen, so there is nothing to invalidate).  Zero-copy where the
        storage itemsize already matches ``int64``.
        """
        from repro.perf.cut_table import view_i64

        intervals = self.tree_intervals
        return FelineCoordinateViews(
            x=view_i64(self.x),
            y=view_i64(self.y),
            levels=view_i64(self.levels) if self.levels is not None else None,
            start=view_i64(intervals.start) if intervals is not None else None,
            post=view_i64(intervals.post) if intervals is not None else None,
        )

    def memory_bytes(self) -> int:
        """Index footprint: coordinates plus whichever filters are on."""
        total = self.x.itemsize * len(self.x) + self.y.itemsize * len(self.y)
        if self.levels is not None:
            total += self.levels.itemsize * len(self.levels)
        if self.tree_intervals is not None:
            total += self.tree_intervals.memory_bytes()
        return total


def build_feline_index(
    graph: DiGraph,
    y_heuristic: str = "max-x",
    x_order: str = "dfs",
    with_level_filter: bool = True,
    with_positive_cut: bool = True,
    seed: int = 0,
) -> FelineCoordinates:
    """Run Algorithm 1 on ``graph`` (must be a DAG).

    Parameters
    ----------
    graph:
        The input DAG.
    y_heuristic:
        Root-selection rule for the ``Y`` ordering; ``"max-x"`` is the
        paper's locally-optimal heuristic (see
        :mod:`repro.core.heuristics` for the ablation alternatives).
    x_order:
        ``"dfs"`` (reversed DFS post-order; also yields the spanning
        forest for the positive cut, as the paper suggests) or ``"kahn"``.
    with_level_filter, with_positive_cut:
        Build the §3.4 filters.  The paper's evaluated configuration has
        both on; the filter ablation bench turns them off.
    seed:
        Only used by randomized ablation heuristics.

    Raises
    ------
    NotADAGError
        If ``graph`` has a directed cycle.
    """
    registry = get_registry()
    with registry.phase("feline.build", "x-order"):
        if x_order == "dfs":
            order_x = dfs_topological_order(graph)
        elif x_order == "kahn":
            order_x = kahn_order(graph)
        else:
            raise ReproError(
                f"unknown x_order {x_order!r}; use 'dfs' or 'kahn'"
            )
        x_ranks = ranks_from_order(order_x)

    with registry.phase("feline.build", "y-heuristic", heuristic=y_heuristic):
        order_y = compute_y_order(
            graph, x_ranks, heuristic=y_heuristic, seed=seed
        )
        y_ranks = ranks_from_order(order_y)

    levels = None
    if with_level_filter:
        with registry.phase("feline.build", "level-filter"):
            levels = compute_levels(graph)

    tree_intervals = None
    if with_positive_cut:
        # Reuse the X ordering's DFS as the spanning-forest traversal (the
        # paper: the tree "may be performed by the topological ordering in
        # line 2").  Seeding the forest DFS with the X order keeps the two
        # structures consistent.
        with registry.phase("feline.build", "positive-cut-forest"):
            forest = extract_spanning_forest(graph, root_order=order_x)
            tree_intervals = minpost_intervals_tree(forest)

    return FelineCoordinates(
        x=x_ranks,
        y=y_ranks,
        levels=levels,
        tree_intervals=tree_intervals,
    )
