"""FELINE — the paper's primary contribution.

Public surface:

* :class:`~repro.core.query.FelineIndex` — the index of Algorithms 1–3
  (coordinates, negative cut, level + positive-cut filters, pruned DFS);
* :class:`~repro.core.bidirectional.FelineIIndex` /
  :class:`~repro.core.bidirectional.FelineBIndex` — the reversed and
  bidirectional variants of §4.3.3;
* :func:`~repro.core.index.build_feline_index` — Algorithm 1 alone, when
  only the coordinates are wanted (e.g. the Figure 12 plots);
* :mod:`~repro.core.analysis` — false-positive counting and cut rates.
"""

from repro.core.analysis import (
    count_false_positives,
    dominance_pair_count,
    negative_cut_rate,
)
from repro.core.advisor import (
    describe_recommendation,
    extract_features,
    recommend_method,
)
from repro.core.bidirectional import FelineBIndex, FelineIIndex
from repro.core.distributed import ClusterStats, ShardWorker, SimulatedCluster
from repro.core.heuristics import available_heuristics, compute_y_order
from repro.core.incremental import IncrementalFelineIndex
from repro.core.multidim import MultiDimFelineIndex
from repro.core.index import FelineCoordinates, build_feline_index
from repro.core.persistence import (
    load_coordinates,
    load_index,
    save_coordinates,
    save_index,
)
from repro.core.query import FelineIndex

__all__ = [
    "FelineIndex",
    "FelineIIndex",
    "FelineBIndex",
    "IncrementalFelineIndex",
    "MultiDimFelineIndex",
    "SimulatedCluster",
    "ShardWorker",
    "ClusterStats",
    "recommend_method",
    "describe_recommendation",
    "extract_features",
    "save_index",
    "load_index",
    "save_coordinates",
    "load_coordinates",
    "FelineCoordinates",
    "build_feline_index",
    "compute_y_order",
    "available_heuristics",
    "count_false_positives",
    "dominance_pair_count",
    "negative_cut_rate",
]
