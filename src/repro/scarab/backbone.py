"""Reachability-backbone extraction for the SCARAB framework.

A *reachability backbone* of a DAG ``G`` (Jin et al., SIGMOD 2012, locality
parameter ε = 2) is a vertex set ``B`` with a backbone graph ``G*`` over
``B`` such that for every reachable pair ``(u, v)`` at distance ≥ ε there
are backbone vertices ``b1, b2`` with ``u ⇝ b1`` locally (< ε hops),
``b2 ⇝ v`` locally, and ``b1 ⇝ b2`` in ``G*``.  Queries then combine two
tiny local lookups with one query on the much smaller ``G*``.

Our cover rule (see DESIGN.md substitutions): ``B`` is the set of
**internal vertices** — every vertex with at least one predecessor *and*
at least one successor.  This is sound for ε = 2:

* on any path ``u → w₁ → … → w_{k-1} → v`` of length ≥ 2, the second
  vertex ``w₁`` and the second-to-last ``w_{k-1}`` are internal, and they
  are in the 1-hop out/in neighbourhoods of ``u`` / ``v`` respectively;
* every *intermediate* vertex of any path is internal by definition, so
  the subgraph of ``G`` induced on ``B`` preserves reachability between
  backbone vertices — it *is* a valid ``G*`` with no shortcut edges
  needed.

The original system shrinks ``B`` further with a greedy set cover; the
internal-vertex rule trades that minimality for a one-pass, provably
sound cover.  On the paper's motivating datasets (Uniprot: almost every
vertex is a root or leaf) the reduction is already dramatic.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass

from repro.graph.digraph import DiGraph

__all__ = ["Backbone", "extract_backbone"]


@dataclass(frozen=True)
class Backbone:
    """A reachability backbone: vertex set, reduced graph and id mapping.

    Attributes
    ----------
    graph:
        The backbone graph ``G*`` (vertices renumbered ``0 .. |B|-1``).
    backbone_id:
        ``backbone_id[v]`` maps an original vertex to its ``G*`` id, or
        ``-1`` when ``v`` is not a backbone vertex.
    original_id:
        Inverse mapping: ``original_id[b]`` is the original vertex of
        backbone vertex ``b``.
    """

    graph: DiGraph
    backbone_id: array
    original_id: array

    @property
    def size(self) -> int:
        """Number of backbone vertices |B|."""
        return self.graph.num_vertices

    def reduction_ratio(self, original: DiGraph) -> float:
        """|B| / |V| — how much of the graph the backbone retains."""
        if original.num_vertices == 0:
            return 0.0
        return self.size / original.num_vertices


def extract_backbone(graph: DiGraph) -> Backbone:
    """Extract the ε = 2 internal-vertex backbone of a DAG.

    O(|V| + |E|): one degree sweep selects ``B``, one induced-subgraph
    pass builds ``G*``.
    """
    from repro.graph.subgraph import induced_subgraph

    internal = [
        v
        for v in range(graph.num_vertices)
        if graph.in_indptr[v] != graph.in_indptr[v + 1]
        and graph.out_indptr[v] != graph.out_indptr[v + 1]
    ]
    name = f"{graph.name}-backbone" if graph.name else "backbone"
    mapping = induced_subgraph(graph, internal, name=name)
    return Backbone(
        graph=mapping.graph,
        backbone_id=mapping.local_of,
        original_id=mapping.original_of,
    )
