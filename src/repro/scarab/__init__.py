"""SCARAB — the reachability-backbone boosting framework (Jin et al. 2012).

SCARAB speeds up any base reachability method by extracting a *reachability
backbone*: a reduced graph carrying the "main access routes", so most of a
query runs on a much smaller graph.  The paper's §4.4 shows FELINE also
benefits from it (FELINE-SCAR vs GRAIL-SCAR, Table 5 / Figure 17).

* :func:`~repro.scarab.backbone.extract_backbone` builds the backbone;
* :class:`~repro.scarab.scar.ScarabIndex` wraps a base method over it
  (``FELINE-SCAR`` = ``ScarabIndex(graph, base_method="feline")``).
"""

from repro.scarab.backbone import Backbone, extract_backbone
from repro.scarab.scar import ScarabIndex

__all__ = ["Backbone", "extract_backbone", "ScarabIndex"]
