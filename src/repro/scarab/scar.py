"""The SCARAB query algorithm: local gateways + a backbone base index.

``ScarabIndex`` wraps any registered base method (FELINE, GRAIL, ...) over
the backbone graph of :mod:`repro.scarab.backbone`.  With locality ε = 2 a
query ``r(u, v)`` decomposes into:

1. **local hit** — ``u == v`` or a direct edge ``u → v`` (paths shorter
   than ε);
2. **gateway product** — let ``Out(u) = ({u} ∪ N⁺(u)) ∩ B`` and
   ``In(v) = ({v} ∪ N⁻(v)) ∩ B``; answer *true* iff some
   ``(b1, b2) ∈ Out(u) × In(v)`` satisfies ``r(b1, b2)`` on the backbone
   (answered by the base index).

The backbone cover property makes this exact; see
:mod:`repro.scarab.backbone` for the proof sketch.  This is the paper's
FELINE-SCAR (``base_method="feline"``) and GRAIL-SCAR
(``base_method="grail"``) — Table 5 and Figure 17.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import (
    ReachabilityIndex,
    create_index,
    register_index,
)
from repro.graph.digraph import DiGraph
from repro.perf.cut_table import CutTable, view_i64
from repro.scarab.backbone import Backbone, extract_backbone

__all__ = ["ScarabIndex", "ScarabCutTable"]


class ScarabCutTable(CutTable):
    """SCARAB's O(1) cuts, batched: direct edge and empty gateway sets.

    A sorted ``u * n + v`` key set answers "does the edge exist" (the
    local positive hit) for a whole batch with one ``searchsorted``;
    precomputed per-vertex "has any out/in gateway" flags decide the
    negative cut.  Survivors run the gateway product on the backbone's
    base index (:meth:`ScarabIndex._search_pair`).
    """

    def __init__(self, index: "ScarabIndex") -> None:
        graph = index.graph
        n = max(1, graph.num_vertices)
        self.n = n
        out_indptr = view_i64(graph.out_indptr)
        out_indices = view_i64(graph.out_indices)
        owners = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64),
            np.diff(out_indptr),
        )
        self.edge_keys = np.sort(owners * np.int64(n) + out_indices)
        is_backbone = view_i64(index.backbone.backbone_id) >= 0
        succ_gw = (
            np.bincount(
                owners[is_backbone[out_indices]], minlength=graph.num_vertices
            )
            > 0
        )
        in_indptr = view_i64(graph.in_indptr)
        in_indices = view_i64(graph.in_indices)
        in_owners = np.repeat(
            np.arange(graph.num_vertices, dtype=np.int64),
            np.diff(in_indptr),
        )
        pred_gw = (
            np.bincount(
                in_owners[is_backbone[in_indices]],
                minlength=graph.num_vertices,
            )
            > 0
        )
        self.has_out_gateway = is_backbone | succ_gw
        self.has_in_gateway = is_backbone | pred_gw

    def classify(self, sources, targets):
        keys = sources * np.int64(self.n) + targets
        if self.edge_keys.size:
            slots = np.searchsorted(self.edge_keys, keys, side="left")
            positive = slots < self.edge_keys.size
            positive &= (
                self.edge_keys[np.minimum(slots, self.edge_keys.size - 1)]
                == keys
            )
        else:
            positive = np.zeros(len(sources), dtype=bool)
        negative = ~positive & (
            ~self.has_out_gateway[sources] | ~self.has_in_gateway[targets]
        )
        return positive, negative


class ScarabIndex(ReachabilityIndex):
    """SCARAB boosting of a base reachability method.

    Parameters
    ----------
    graph:
        The input DAG.
    base_method:
        Registry name of the base index built on the backbone graph
        (``"feline"`` and ``"grail"`` reproduce the paper's two SCAR
        variants; any registered method works).
    base_params:
        Keyword arguments forwarded to the base method's constructor.

    Examples
    --------
    >>> from repro.graph.generators import random_dag
    >>> g = random_dag(200, avg_degree=2.0, seed=7)
    >>> feline_scar = ScarabIndex(g, base_method="feline").build()
    >>> feline_scar.backbone.size < g.num_vertices
    True
    """

    method_name = "scarab"

    def __init__(
        self,
        graph: DiGraph,
        base_method: str = "feline",
        base_params: dict | None = None,
    ) -> None:
        super().__init__(graph)
        self.base_method = base_method
        self._base_params = dict(base_params or {})
        self.backbone: Backbone | None = None
        self.base_index: ReachabilityIndex | None = None

    # ------------------------------------------------------------------
    def _build(self) -> None:
        self.backbone = extract_backbone(self.graph)
        self.base_index = create_index(
            self.base_method, self.backbone.graph, **self._base_params
        )
        self.base_index.build()

    def index_size_bytes(self) -> int:
        if self.backbone is None or self.base_index is None:
            return 0
        mapping = self.backbone.backbone_id
        inverse = self.backbone.original_id
        return (
            self.base_index.index_size_bytes()
            + mapping.itemsize * len(mapping)
            + inverse.itemsize * len(inverse)
        )

    def _explain_details(self, u: int, v: int, explanation) -> None:
        """Gateway-set sizes: how large the backbone product was.

        ``cut == "search"`` here means the ``Out(u) × In(v)`` gateway
        product was evaluated on the backbone's base index (not a graph
        DFS); ``positive-cut`` is a direct-edge local hit and
        ``negative-cut`` an empty gateway set.
        """
        graph = self.graph
        backbone_id = self.backbone.backbone_id
        out_gw = sum(
            1
            for k in range(graph.out_indptr[u], graph.out_indptr[u + 1])
            if backbone_id[graph.out_indices[k]] != -1
        ) + (1 if backbone_id[u] != -1 else 0)
        in_gw = sum(
            1
            for k in range(graph.in_indptr[v], graph.in_indptr[v + 1])
            if backbone_id[graph.in_indices[k]] != -1
        ) + (1 if backbone_id[v] != -1 else 0)
        explanation.details["out_gateways"] = out_gw
        explanation.details["in_gateways"] = in_gw
        explanation.details["base_method"] = self.base_method

    # ------------------------------------------------------------------
    def _query(self, u: int, v: int) -> bool:
        stats = self.stats
        if u == v:
            stats.equal_cuts += 1
            return True
        graph = self.graph
        out_indptr, out_indices = graph.out_indptr, graph.out_indices
        backbone_id = self.backbone.backbone_id

        # Local hit (< ε hops) and out-gateway collection in one sweep.
        out_gateways: list[int] = []
        bu = backbone_id[u]
        if bu != -1:
            out_gateways.append(bu)
        for k in range(out_indptr[u], out_indptr[u + 1]):
            w = out_indices[k]
            if w == v:
                stats.positive_cuts += 1
                return True
            bw = backbone_id[w]
            if bw != -1:
                out_gateways.append(bw)
        if not out_gateways:
            stats.negative_cuts += 1
            return False

        in_indptr, in_indices = graph.in_indptr, graph.in_indices
        in_gateways: list[int] = []
        bv = backbone_id[v]
        if bv != -1:
            in_gateways.append(bv)
        for k in range(in_indptr[v], in_indptr[v + 1]):
            w = in_indices[k]
            bw = backbone_id[w]
            if bw != -1:
                in_gateways.append(bw)
        if not in_gateways:
            stats.negative_cuts += 1
            return False

        stats.searches += 1
        base_query = self.base_index._query
        base_stats = self.base_index.stats
        for b1 in out_gateways:
            for b2 in in_gateways:
                base_stats.queries += 1
                if base_query(b1, b2):
                    return True
        return False

    def _make_cut_table(self) -> ScarabCutTable:
        return ScarabCutTable(self)

    def _search_pair(self, u: int, v: int) -> bool:
        # Engine survivors have no direct edge and both gateway sets
        # non-empty (the cut table proved it); re-collect the sets and
        # run the backbone product exactly like the scalar tail.
        graph = self.graph
        backbone_id = self.backbone.backbone_id
        out_gateways: list[int] = []
        bu = backbone_id[u]
        if bu != -1:
            out_gateways.append(bu)
        for k in range(graph.out_indptr[u], graph.out_indptr[u + 1]):
            bw = backbone_id[graph.out_indices[k]]
            if bw != -1:
                out_gateways.append(bw)
        in_gateways: list[int] = []
        bv = backbone_id[v]
        if bv != -1:
            in_gateways.append(bv)
        for k in range(graph.in_indptr[v], graph.in_indptr[v + 1]):
            bw = backbone_id[graph.in_indices[k]]
            if bw != -1:
                in_gateways.append(bw)
        base_query = self.base_index._query
        base_stats = self.base_index.stats
        for b1 in out_gateways:
            for b2 in in_gateways:
                base_stats.queries += 1
                if base_query(b1, b2):
                    return True
        return False


register_index(ScarabIndex)
