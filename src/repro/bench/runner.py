"""Per-experiment drivers: one function per table and figure of the paper.

Each driver regenerates a paper artifact — the same rows or series, on the
stand-in datasets — and returns an :class:`ExperimentReport` whose ``text``
is printable and whose ``data`` holds the raw numbers for tests and for
EXPERIMENTS.md.  The ``benchmarks/`` scripts are thin wrappers over these.

Sizing knobs (``scale``, ``num_queries``, ``runs``) default to values that
run in seconds in pure Python; the paper-vs-measured *shape* comparisons
(who wins, by what factor) are what DESIGN.md §5 commits to.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.bench.harness import MethodResult, MethodSpec, measure_method
from repro.bench.reporting import (
    format_bytes,
    format_series,
    format_table,
    render_scatter,
)
from repro.core.index import build_feline_index
from repro.datasets.real_stand_ins import (
    REAL_GRAPH_SPECS,
    load_real_stand_in,
    real_graph_names,
    small_real_graph_names,
)
from repro.datasets.queries import random_pairs
from repro.datasets.synthetic import SYNTHETIC_SPECS, load_synthetic
from repro.graph.properties import graph_summary
from repro.stats.friedman import friedman_test
from repro.stats.nemenyi import compute_cd_diagram, render_cd_diagram

__all__ = [
    "ExperimentReport",
    "DEFAULT_METHODS",
    "SYNTHETIC_METHODS",
    "table1_datasets",
    "table2_synthetic",
    "table3_real",
    "table4_feline_variants",
    "table5_scarab",
    "fig10_cd_construction",
    "fig11_cd_query",
    "fig12_index_plots",
    "fig13_synthetic_construction",
    "fig14_synthetic_query",
    "fig15_index_sizes_real",
    "fig16_index_sizes_synthetic",
    "fig17_cd_scarab",
    "ablation_y_heuristics",
    "ablation_filters",
]


@dataclass
class ExperimentReport:
    """A regenerated paper artifact: printable text plus raw data."""

    experiment_id: str
    title: str
    text: str
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        return f"== {self.experiment_id}: {self.title} ==\n{self.text}"


# The paper's Table 3 method lineup.  INTERVAL gets a memory budget so the
# "fails on very large graphs" behaviour reproduces deterministically.
DEFAULT_METHODS = (
    MethodSpec("grail", "GRAIL", {"num_labelings": 3}),
    MethodSpec(
        "interval", "INTERVAL", {"memory_budget_bytes": 64 * 1024 * 1024}
    ),
    MethodSpec("ferrari", "FERRARI", {"max_intervals": 3}),
    MethodSpec("tf-label", "TF-Label", {}),
    MethodSpec("feline", "FELINE", {}),
)

# The synthetic-sweep lineup (Figures 13, 14, 16).  TF-Label additionally
# gets a label budget: the paper reports TF-Label failing on some of the
# large synthetic datasets ("we were unable to identify the reasons that
# made this approach fail"), and on dense random DAGs its 2-hop labels
# genuinely explode — the budget reproduces those FAIL entries
# deterministically instead of hanging the sweep.
SYNTHETIC_METHODS = (
    MethodSpec("grail", "GRAIL", {"num_labelings": 3}),
    MethodSpec(
        "interval", "INTERVAL", {"memory_budget_bytes": 32 * 1024 * 1024}
    ),
    MethodSpec("ferrari", "FERRARI", {"max_intervals": 3}),
    MethodSpec("tf-label", "TF-Label", {"label_budget_entries": 400_000}),
    MethodSpec("feline", "FELINE", {}),
)


def _real_graphs(names: list[str], scale: float | None, seed: int):
    """Load stand-ins; ``scale`` multiplies each spec's *default* size.

    The defaults already encode the paper's small-vs-large distinction
    (small graphs full size, large ones shrunk for pure Python), so a
    relative scale keeps one knob meaningful across the whole sweep:
    ``scale=1.0`` is the default sizing, ``scale=0.1`` a 10x-smaller run.
    """
    graphs = []
    for name in names:
        absolute = (
            None
            if scale is None
            else REAL_GRAPH_SPECS[name].default_scale * scale
        )
        graphs.append(load_real_stand_in(name, scale=absolute, seed=seed))
    return graphs


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------
def table1_datasets(
    scale: float | None = None,
    seed: int = 0,
    diameter_sample_size: int = 32,
) -> ExperimentReport:
    """Table 1 — dataset statistics, paper values vs stand-in values."""
    headers = [
        "graph", "vertices", "edges", "cluster-coeff", "eff-diameter",
        "roots", "leaves", "paper |V|", "paper |E|",
    ]
    rows = []
    summaries = {}
    names = real_graph_names()
    for name, graph in zip(names, _real_graphs(names, scale, seed)):
        spec = REAL_GRAPH_SPECS[name]
        summary = graph_summary(
            graph, diameter_sample_size=diameter_sample_size, seed=seed
        )
        summaries[name] = summary
        rows.append([
            name, summary.num_vertices, summary.num_edges,
            round(summary.clustering, 2), round(summary.eff_diameter, 2),
            summary.num_roots, summary.num_leaves,
            spec.paper_vertices, spec.paper_edges,
        ])
    return ExperimentReport(
        experiment_id="T1",
        title="Real dataset statistics (stand-ins vs paper)",
        text=format_table(headers, rows),
        data={"summaries": summaries},
    )


def table2_synthetic(scale: float = 0.001, seed: int = 0) -> ExperimentReport:
    """Table 2 — the synthetic dataset list, with generated sizes."""
    headers = ["graph", "paper |V|", "paper |E|", "generated |V|", "generated |E|"]
    rows = []
    sizes = {}
    for name, spec in SYNTHETIC_SPECS.items():
        graph = load_synthetic(name, scale=scale, seed=seed)
        sizes[name] = (graph.num_vertices, graph.num_edges)
        rows.append([
            name, spec.paper_vertices, spec.paper_edges,
            graph.num_vertices, graph.num_edges,
        ])
    return ExperimentReport(
        experiment_id="T2",
        title=f"Synthetic datasets at scale {scale}",
        text=format_table(headers, rows),
        data={"sizes": sizes},
    )


def _sweep(
    graphs,
    specs,
    num_queries: int,
    runs: int,
    seed: int,
) -> list[MethodResult]:
    results = []
    for graph in graphs:
        pairs = random_pairs(graph, num_queries, seed=seed)
        for spec in specs:
            results.append(measure_method(graph, spec, pairs, runs=runs))
    return results


def _times_tables(
    results: list[MethodResult], specs, graphs, what: str
) -> str:
    labels = [spec.display for spec in specs]
    by_key = {(r.dataset, r.method): r for r in results}
    rows = []
    for graph in graphs:
        row: list[object] = [graph.name]
        for label in labels:
            r = by_key[(graph.name, label)]
            value = r.construction_ms if what == "construction" else r.query_ms
            row.append(None if value is None else round(value, 3))
        rows.append(row)
    return format_table(
        ["graph"] + labels,
        rows,
        highlight_best=range(1, len(labels) + 1),
        title=f"{what} times (ms, avg; * = best, FAIL = resource limit)",
    )


def table3_real(
    methods: tuple[MethodSpec, ...] = DEFAULT_METHODS,
    names: list[str] | None = None,
    scale: float | None = None,
    num_queries: int = 2000,
    runs: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """Table 3 — construction and query times on the real stand-ins."""
    names = names if names is not None else real_graph_names()
    graphs = _real_graphs(names, scale, seed)
    results = _sweep(graphs, list(methods), num_queries, runs, seed)
    text = "\n\n".join([
        _times_tables(results, methods, graphs, "construction"),
        _times_tables(results, methods, graphs, "query"),
    ])
    return ExperimentReport(
        experiment_id="T3",
        title="Construction and query times, real graphs",
        text=text,
        data={"results": results, "methods": [m.display for m in methods]},
    )


def table4_feline_variants(
    names: list[str] | None = None,
    scale: float | None = None,
    num_queries: int = 2000,
    runs: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """Table 4 — FELINE vs FELINE-I vs FELINE-B."""
    methods = (
        MethodSpec("feline", "FELINE"),
        MethodSpec("feline-i", "FELINE-I"),
        MethodSpec("feline-b", "FELINE-B"),
    )
    names = names if names is not None else small_real_graph_names()
    graphs = _real_graphs(names, scale, seed)
    results = _sweep(graphs, list(methods), num_queries, runs, seed)
    text = "\n\n".join([
        _times_tables(results, methods, graphs, "construction"),
        _times_tables(results, methods, graphs, "query"),
    ])
    return ExperimentReport(
        experiment_id="T4",
        title="FELINE / FELINE-I / FELINE-B",
        text=text,
        data={"results": results, "methods": [m.display for m in methods]},
    )


def table5_scarab(
    names: list[str] | None = None,
    scale: float | None = None,
    num_queries: int = 2000,
    runs: int = 3,
    seed: int = 0,
) -> ExperimentReport:
    """Table 5 — FELINE-SCAR vs GRAIL-SCAR query times."""
    methods = (
        MethodSpec("scarab", "FELINE-SCAR", {"base_method": "feline"}),
        MethodSpec("scarab", "GRAIL-SCAR", {"base_method": "grail"}),
    )
    names = names if names is not None else real_graph_names()
    graphs = _real_graphs(names, scale, seed)
    results = _sweep(graphs, list(methods), num_queries, runs, seed)
    text = _times_tables(results, methods, graphs, "query")
    return ExperimentReport(
        experiment_id="T5",
        title="SCARAB-boosted query times",
        text=text,
        data={"results": results, "methods": [m.display for m in methods]},
    )


# ---------------------------------------------------------------------------
# Critical-difference figures
# ---------------------------------------------------------------------------
def _cd_from_results(
    results: list[MethodResult],
    method_labels: list[str],
    what: str,
    experiment_id: str,
    title: str,
    alpha: float = 0.1,
) -> ExperimentReport:
    datasets = sorted({r.dataset for r in results})
    by_key = {(r.dataset, r.method): r for r in results}
    table = []
    for dataset in datasets:
        row = []
        for label in method_labels:
            r = by_key[(dataset, label)]
            value = r.construction_ms if what == "construction" else r.query_ms
            # A failure ranks worst: substitute a value beyond every real one.
            row.append(float("inf") if value is None else value)
        table.append(row)
    friedman = friedman_test(table)
    diagram = compute_cd_diagram(
        method_labels, friedman.average_ranks, len(datasets), alpha=alpha
    )
    text = (
        f"Friedman chi2 = {friedman.statistic:.3f}, "
        f"p = {friedman.p_value:.4f}, "
        f"significant at {alpha}: {friedman.significant(alpha)}\n"
        + render_cd_diagram(diagram)
    )
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        text=text,
        data={"friedman": friedman, "diagram": diagram, "results": results},
    )


def fig10_cd_construction(**table3_kwargs) -> ExperimentReport:
    """Figure 10 — CD diagram for construction times."""
    report = table3_real(**table3_kwargs)
    return _cd_from_results(
        report.data["results"], report.data["methods"], "construction",
        "F10", "Critical difference, construction times",
    )


def fig11_cd_query(**table3_kwargs) -> ExperimentReport:
    """Figure 11 — CD diagram for query times."""
    report = table3_real(**table3_kwargs)
    return _cd_from_results(
        report.data["results"], report.data["methods"], "query",
        "F11", "Critical difference, query times",
    )


def fig17_cd_scarab(**table5_kwargs) -> ExperimentReport:
    """Figure 17 — CD diagram for the SCARAB variants."""
    report = table5_scarab(**table5_kwargs)
    return _cd_from_results(
        report.data["results"], report.data["methods"], "query",
        "F17", "Critical difference, SCARAB query times",
    )


# ---------------------------------------------------------------------------
# Index plots (Figure 12)
# ---------------------------------------------------------------------------
def fig12_index_plots(
    names: tuple[str, ...] = ("arxiv", "yago", "go", "pubmed"),
    scale: float | None = 0.25,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 12 — coordinate scatter of normal vs reversed indexes."""
    sections = []
    coordinates = {}
    for name, graph in zip(names, _real_graphs(list(names), scale, seed)):
        for direction, g in (("normal", graph), ("reversed", graph.reversed())):
            coords = build_feline_index(
                g, with_level_filter=False, with_positive_cut=False
            )
            points = [
                (coords.x[v], coords.y[v]) for v in range(g.num_vertices)
            ]
            coordinates[(name, direction)] = points
            sections.append(
                render_scatter(points, title=f"{name} ({direction} index)")
            )
    return ExperimentReport(
        experiment_id="F12",
        title="Index plottings, normal vs reversed",
        text="\n\n".join(sections),
        data={"coordinates": coordinates},
    )


# ---------------------------------------------------------------------------
# Synthetic sweeps (Figures 13, 14) and index sizes (Figures 15, 16)
# ---------------------------------------------------------------------------
def _synthetic_sweep(
    methods: tuple[MethodSpec, ...],
    names: list[str],
    scale: float,
    num_queries: int,
    runs: int,
    seed: int,
) -> list[MethodResult]:
    graphs = [load_synthetic(name, scale=scale, seed=seed) for name in names]
    return _sweep(graphs, list(methods), num_queries, runs, seed)


DEFAULT_SYNTHETIC_NAMES = [
    "10M", "20M", "50M", "100M", "200M", "50M-5", "50M-10", "100M-5", "100M-10",
]


def fig13_synthetic_construction(
    methods: tuple[MethodSpec, ...] = SYNTHETIC_METHODS,
    names: list[str] | None = None,
    scale: float = 0.001,
    num_queries: int = 1000,
    runs: int = 2,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 13 — construction times over the synthetic suite."""
    names = names if names is not None else list(DEFAULT_SYNTHETIC_NAMES)
    results = _synthetic_sweep(methods, names, scale, num_queries, runs, seed)
    series = _series_from(results, methods, names, "construction")
    return ExperimentReport(
        experiment_id="F13",
        title="Construction times, synthetic graphs (ms)",
        text=format_series("graph", names, series),
        data={"results": results, "methods": [m.display for m in methods]},
    )


def fig14_synthetic_query(
    methods: tuple[MethodSpec, ...] = SYNTHETIC_METHODS,
    names: list[str] | None = None,
    scale: float = 0.001,
    num_queries: int = 1000,
    runs: int = 2,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 14 — query times over the synthetic suite.

    The paper's Figure 14 includes FELINE-B; we add it to the default
    lineup for this figure.
    """
    methods = tuple(methods) + (MethodSpec("feline-b", "FELINE-B"),)
    names = names if names is not None else list(DEFAULT_SYNTHETIC_NAMES)
    results = _synthetic_sweep(methods, names, scale, num_queries, runs, seed)
    series = _series_from(results, methods, names, "query")
    return ExperimentReport(
        experiment_id="F14",
        title="Query times, synthetic graphs (ms per batch)",
        text=format_series("graph", names, series),
        data={"results": results, "methods": [m.display for m in methods]},
    )


def _series_from(results, methods, names, what: str) -> dict[str, list]:
    by_key = {(r.dataset, r.method): r for r in results}
    series: dict[str, list] = {}
    for spec in methods:
        values = []
        for name in names:
            r = by_key[(name, spec.display)]
            value = r.construction_ms if what == "construction" else r.query_ms
            if what == "size":
                value = r.index_bytes
            values.append(None if value is None else round(value, 3))
        series[spec.display] = values
    return series


def _sizes_report(
    results, methods, names, experiment_id: str, title: str
) -> ExperimentReport:
    by_key = {(r.dataset, r.method): r for r in results}
    headers = ["graph"] + [m.display for m in methods]
    rows = []
    for name in names:
        row: list[object] = [name]
        for spec in methods:
            row.append(format_bytes(by_key[(name, spec.display)].index_bytes))
        rows.append(row)
    return ExperimentReport(
        experiment_id=experiment_id,
        title=title,
        text=format_table(headers, rows),
        data={"results": results},
    )


def fig15_index_sizes_real(
    methods: tuple[MethodSpec, ...] = DEFAULT_METHODS,
    names: list[str] | None = None,
    scale: float | None = None,
    num_queries: int = 200,
    runs: int = 1,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 15 — index sizes on the real stand-ins.

    The paper plots GRAIL at d = 3 and d = 5 against FELINE and FELINE-B;
    we add both GRAIL settings and FELINE-B to the lineup.
    """
    methods = tuple(methods) + (
        MethodSpec("grail", "GRAIL-d5", {"num_labelings": 5}),
        MethodSpec("feline-b", "FELINE-B"),
    )
    names = names if names is not None else real_graph_names()
    graphs = _real_graphs(names, scale, seed)
    results = _sweep(graphs, list(methods), num_queries, runs, seed)
    return _sizes_report(
        results, methods, names, "F15", "Index sizes, real graphs"
    )


def fig16_index_sizes_synthetic(
    methods: tuple[MethodSpec, ...] = SYNTHETIC_METHODS,
    names: list[str] | None = None,
    scale: float = 0.001,
    num_queries: int = 200,
    runs: int = 1,
    seed: int = 0,
) -> ExperimentReport:
    """Figure 16 — index sizes on the synthetic suite."""
    methods = tuple(methods) + (
        MethodSpec("grail", "GRAIL-d5", {"num_labelings": 5}),
        MethodSpec("feline-b", "FELINE-B"),
    )
    names = names if names is not None else list(DEFAULT_SYNTHETIC_NAMES)
    results = _synthetic_sweep(methods, names, scale, num_queries, runs, seed)
    return _sizes_report(
        results, methods, names, "F16", "Index sizes, synthetic graphs"
    )


# ---------------------------------------------------------------------------
# Ablations (DESIGN.md experiment A1)
# ---------------------------------------------------------------------------
def ablation_y_heuristics(
    names: list[str] | None = None,
    scale: float | None = 0.5,
    num_queries: int = 2000,
    runs: int = 2,
    seed: int = 0,
) -> ExperimentReport:
    """Query times under each Y-ordering heuristic (paper's max-x vs controls)."""
    methods = tuple(
        MethodSpec("feline", f"FELINE[{h}]", {"y_heuristic": h, "seed": seed})
        for h in ("max-x", "min-x", "fifo", "random")
    )
    names = names if names is not None else small_real_graph_names()
    graphs = _real_graphs(names, scale, seed)
    results = _sweep(graphs, list(methods), num_queries, runs, seed)
    text = _times_tables(results, methods, graphs, "query")
    return ExperimentReport(
        experiment_id="A1-heuristics",
        title="Ablation: Y-ordering heuristic",
        text=text,
        data={"results": results},
    )


def ablation_filters(
    names: list[str] | None = None,
    scale: float | None = 0.5,
    num_queries: int = 2000,
    runs: int = 2,
    seed: int = 0,
) -> ExperimentReport:
    """Query times with the §3.4 filters toggled on/off."""
    methods = (
        MethodSpec("feline", "FELINE[full]"),
        MethodSpec("feline", "FELINE[no-level]", {"use_level_filter": False}),
        MethodSpec("feline", "FELINE[no-poscut]", {"use_positive_cut": False}),
        MethodSpec(
            "feline",
            "FELINE[bare]",
            {"use_level_filter": False, "use_positive_cut": False},
        ),
    )
    names = names if names is not None else small_real_graph_names()
    graphs = _real_graphs(names, scale, seed)
    results = _sweep(graphs, list(methods), num_queries, runs, seed)
    text = _times_tables(results, methods, graphs, "query")
    return ExperimentReport(
        experiment_id="A1-filters",
        title="Ablation: positive-cut and level filters",
        text=text,
        data={"results": results},
    )
