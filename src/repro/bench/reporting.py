"""Plain-text rendering of experiment outputs: tables and scatter plots.

The paper's artifacts are tables (3–5), bar/line charts (13–16), CD
diagrams (10, 11, 17) and index scatter plots (12).  Benchmarks print the
same rows/series as text; charts become aligned series tables and ASCII
scatters, which preserve the *shape* comparisons the reproduction is
judged on.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["format_table", "format_series", "render_scatter", "format_bytes"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    highlight_best: Sequence[int] = (),
    title: str = "",
) -> str:
    """Fixed-width table; ``highlight_best`` marks per-row winners.

    The paper highlights each row's best result with a gray background;
    we mimic that with a ``*`` suffix on the minimum value among the
    ``highlight_best`` columns of each row (failures excluded).
    """
    cells = [[_fmt(c) for c in row] for row in rows]
    if highlight_best:
        for row, rendered in zip(rows, cells):
            numeric = {
                i: row[i]
                for i in highlight_best
                if isinstance(row[i], (int, float))
            }
            if numeric:
                best = min(numeric, key=numeric.get)
                rendered[best] += "*"
    widths = [
        max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
        for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for rendered in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if value is None:
        return "FAIL"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[object]],
    title: str = "",
) -> str:
    """A figure's line chart as a table: x in rows, one column per series."""
    headers = [x_label] + list(series)
    rows = [
        [x] + [series[name][i] for name in series]
        for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def render_scatter(
    points: Sequence[tuple[float, float]],
    width: int = 60,
    height: int = 20,
    title: str = "",
) -> str:
    """ASCII density scatter of coordinate points (the Figure 12 plots).

    Darker glyphs mean more points per character cell.
    """
    if not points:
        return f"{title}\n(empty)" if title else "(empty)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = (x_hi - x_lo) or 1
    y_span = (y_hi - y_lo) or 1
    counts = [[0] * width for _ in range(height)]
    for x, y in points:
        col = min(width - 1, int((x - x_lo) / x_span * width))
        row = min(height - 1, int((y - y_lo) / y_span * height))
        counts[height - 1 - row][col] += 1  # y grows upward
    peak = max(max(row) for row in counts)
    glyphs = " .:+*#@"
    lines = [title] if title else []
    for row in counts:
        line = "".join(
            glyphs[min(len(glyphs) - 1, round(c / peak * (len(glyphs) - 1)))]
            for c in row
        )
        lines.append("|" + line + "|")
    lines.append(f"x: [{x_lo}, {x_hi}]  y: [{y_lo}, {y_hi}]  n={len(points)}")
    return "\n".join(lines)


def format_bytes(num_bytes: int | None) -> str:
    """Human-readable byte count (KiB/MiB), ``FAIL`` for ``None``."""
    if num_bytes is None:
        return "FAIL"
    value = float(num_bytes)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{int(value)}B"
        value /= 1024
    return f"{value:.1f}GiB"
