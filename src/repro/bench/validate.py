"""Cross-method validation: every index must tell the same story.

The strongest end-to-end check a reachability library can run on itself:
answer the same workload with several independent index structures and
report any disagreement, with the exact DFS verdict attached.  The test
suite runs this on every graph family; it is exposed publicly so
downstream users can validate the library on *their* graphs before
trusting an index in production.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.baselines.base import create_index
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.graph.traversal import dfs_reachable

__all__ = ["Disagreement", "ValidationReport", "cross_validate"]


@dataclass(frozen=True)
class Disagreement:
    """One query where a method deviated from the DFS ground truth."""

    method: str
    source: int
    target: int
    answered: bool
    truth: bool


@dataclass(frozen=True)
class ValidationReport:
    """Outcome of a cross-validation run."""

    methods_checked: list[str]
    methods_skipped: dict[str, str]  # method -> failure reason
    num_queries: int
    disagreements: list[Disagreement]

    @property
    def ok(self) -> bool:
        return not self.disagreements

    def summary(self) -> str:
        lines = [
            f"validated {len(self.methods_checked)} methods on "
            f"{self.num_queries} queries: "
            + ("ALL AGREE" if self.ok else f"{len(self.disagreements)} DISAGREEMENTS")
        ]
        for method, reason in self.methods_skipped.items():
            lines.append(f"  skipped {method}: {reason}")
        for d in self.disagreements[:20]:
            lines.append(
                f"  {d.method}: r({d.source}, {d.target}) answered "
                f"{d.answered}, truth {d.truth}"
            )
        return "\n".join(lines)


def cross_validate(
    graph: DiGraph,
    pairs: Sequence[tuple[int, int]],
    methods: Sequence[str] = ("feline", "feline-b", "grail", "ferrari", "interval"),
    method_params: dict[str, dict] | None = None,
) -> ValidationReport:
    """Answer ``pairs`` with every method and diff against DFS truth.

    Methods whose construction hits a resource budget are skipped (with
    the reason recorded), not failed — resource limits are not
    correctness bugs.
    """
    params = method_params or {}
    truth = [dfs_reachable(graph, u, v) for u, v in pairs]
    checked: list[str] = []
    skipped: dict[str, str] = {}
    disagreements: list[Disagreement] = []
    for method in methods:
        index = create_index(method, graph, **params.get(method, {}))
        try:
            index.build()
        except IndexBuildError as exc:
            skipped[method] = exc.reason
            continue
        checked.append(method)
        answers = index.query_many(list(pairs))
        for (u, v), answered, expected in zip(pairs, answers, truth):
            if answered != expected:
                disagreements.append(
                    Disagreement(
                        method=method,
                        source=u,
                        target=v,
                        answered=answered,
                        truth=expected,
                    )
                )
    return ValidationReport(
        methods_checked=checked,
        methods_skipped=skipped,
        num_queries=len(pairs),
        disagreements=disagreements,
    )
