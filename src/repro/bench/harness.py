"""Measurement harness: construction time, query time, index size.

Reproduces the paper's methodology (§4.2): per dataset, a fixed set of
random query pairs is generated once; each method's index is built and the
whole batch is answered; both phases are timed and averaged over
``runs`` executions (the paper uses 500k pairs × 10 runs; defaults here
are scaled with the graphs).

Failures are first-class: a method that raises :class:`IndexBuildError`
(e.g. INTERVAL exceeding its memory budget — the paper's "failed with
these datasets" rows) produces a result with ``failure`` set instead of
aborting the sweep.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.baselines.base import ReachabilityIndex, create_index
from repro.exceptions import IndexBuildError
from repro.graph.digraph import DiGraph
from repro.obs.metrics import LATENCY_BUCKETS_S, Histogram, get_registry

__all__ = [
    "MethodResult",
    "MethodSpec",
    "measure_method",
    "run_sweep",
    "set_default_workers",
    "get_default_workers",
]

# Default survivor-search workers for measurements; `bench --workers N`
# sets this so every measure_method call in a sweep inherits it.
_DEFAULT_WORKERS = 0


def set_default_workers(workers: int) -> None:
    """Set the harness-wide default for ``measure_method(workers=...)``."""
    global _DEFAULT_WORKERS
    _DEFAULT_WORKERS = max(0, int(workers))


def get_default_workers() -> int:
    """The harness-wide default survivor-search worker count."""
    return _DEFAULT_WORKERS


@dataclass(frozen=True)
class MethodSpec:
    """A method to sweep: registry name, display label, constructor params."""

    method: str
    label: str = ""
    params: dict = field(default_factory=dict)

    @property
    def display(self) -> str:
        return self.label or self.method


@dataclass
class MethodResult:
    """One (method, dataset) measurement.

    Times are averages over the runs, in **milliseconds** (the paper's
    unit).  ``query_ms`` is the time for the *whole* query batch, like the
    paper's per-dataset totals.  ``failure`` carries the machine-readable
    reason when construction failed; the timing fields are then ``None``.
    """

    method: str
    dataset: str
    num_queries: int
    construction_ms: float | None = None
    query_ms: float | None = None
    index_bytes: int | None = None
    positives: int | None = None
    failure: str | None = None
    # Per-query latency percentiles in microseconds (only filled when
    # measure_method(..., percentiles=True); per-query timing adds
    # overhead, so the batch totals above stay the headline numbers).
    query_p50_us: float | None = None
    query_p95_us: float | None = None
    query_p99_us: float | None = None

    @property
    def ok(self) -> bool:
        return self.failure is None


def measure_method(
    graph: DiGraph,
    spec: MethodSpec,
    pairs: list[tuple[int, int]],
    runs: int = 3,
    percentiles: bool = False,
    workers: int | None = None,
) -> MethodResult:
    """Build ``spec`` on ``graph`` and answer ``pairs``, ``runs`` times.

    Returns averaged timings; on :class:`IndexBuildError` the result
    records the failure reason (other exceptions propagate — they are
    bugs, not resource exhaustion).  With ``percentiles=True`` the last
    run additionally times every query individually and fills the
    ``query_p50/p95/p99_us`` tail-latency fields from a
    :class:`repro.obs.metrics.Histogram`.  When the global metrics
    registry is enabled the per-query pass runs regardless, so exports
    always carry latency distributions, and the index's ``QueryStats``
    are published as gauges.

    ``workers`` (``None`` → :func:`get_default_workers`) attaches a
    survivor-search pool to each built index for the timed batch, so
    ``bench --workers N`` sweeps measure the parallel path.  Pool setup
    happens after the construction timer stops and the pool is closed
    before the next run, keeping construction numbers comparable.
    """
    if workers is None:
        workers = _DEFAULT_WORKERS
    result = MethodResult(
        method=spec.display,
        dataset=graph.name or "unnamed",
        num_queries=len(pairs),
    )
    build_times: list[float] = []
    query_times: list[float] = []
    index: ReachabilityIndex | None = None
    for _ in range(max(1, runs)):
        index = create_index(spec.method, graph, **spec.params)
        start = time.perf_counter()
        try:
            index.build()
        except IndexBuildError as exc:
            result.failure = exc.reason
            return result
        build_times.append(time.perf_counter() - start)

        if workers > 1:
            index.enable_search_pool(workers)
        try:
            start = time.perf_counter()
            answers = index.query_many(pairs)
            query_times.append(time.perf_counter() - start)
        finally:
            index.close_search_pool()
        result.positives = sum(answers)

    result.construction_ms = 1000 * sum(build_times) / len(build_times)
    result.query_ms = 1000 * sum(query_times) / len(query_times)
    result.index_bytes = index.index_size_bytes() if index else None

    registry = get_registry()
    if (percentiles or registry.enabled) and pairs and index is not None:
        # Per-query latencies go through a fixed-bucket histogram — the
        # same estimator the observability exporters use — instead of a
        # bespoke sorted-sample percentile.  index.query() additionally
        # feeds the registry's repro_query_latency_seconds when enabled.
        histogram = Histogram(LATENCY_BUCKETS_S)
        query = index.query
        observe = histogram.observe
        for u, v in pairs:
            start = time.perf_counter()
            query(u, v)
            observe(time.perf_counter() - start)
        result.query_p50_us = 1e6 * histogram.p50
        result.query_p95_us = 1e6 * histogram.p95
        result.query_p99_us = 1e6 * histogram.p99
    if registry.enabled and index is not None:
        index.publish_stats(registry)
    return result


def run_sweep(
    graphs: list[DiGraph],
    specs: list[MethodSpec],
    pairs_per_graph: dict[str, list[tuple[int, int]]],
    runs: int = 3,
) -> list[MethodResult]:
    """Measure every method on every graph with the graph's query batch."""
    results: list[MethodResult] = []
    for graph in graphs:
        pairs = pairs_per_graph[graph.name]
        for spec in specs:
            results.append(measure_method(graph, spec, pairs, runs=runs))
    return results
