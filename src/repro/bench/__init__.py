"""Benchmark harness and per-table/figure experiment drivers."""

from repro.bench.harness import MethodResult, MethodSpec, measure_method, run_sweep
from repro.bench.reporting import (
    format_bytes,
    format_series,
    format_table,
    render_scatter,
)
from repro.bench.validate import ValidationReport, cross_validate
from repro.bench.runner import (
    DEFAULT_METHODS,
    ExperimentReport,
    ablation_filters,
    ablation_y_heuristics,
    fig10_cd_construction,
    fig11_cd_query,
    fig12_index_plots,
    fig13_synthetic_construction,
    fig14_synthetic_query,
    fig15_index_sizes_real,
    fig16_index_sizes_synthetic,
    fig17_cd_scarab,
    table1_datasets,
    table2_synthetic,
    table3_real,
    table4_feline_variants,
    table5_scarab,
)

__all__ = [
    "MethodSpec",
    "MethodResult",
    "measure_method",
    "run_sweep",
    "cross_validate",
    "ValidationReport",
    "format_table",
    "format_series",
    "format_bytes",
    "render_scatter",
    "ExperimentReport",
    "DEFAULT_METHODS",
    "table1_datasets",
    "table2_synthetic",
    "table3_real",
    "table4_feline_variants",
    "table5_scarab",
    "fig10_cd_construction",
    "fig11_cd_query",
    "fig12_index_plots",
    "fig13_synthetic_construction",
    "fig14_synthetic_query",
    "fig15_index_sizes_real",
    "fig16_index_sizes_synthetic",
    "fig17_cd_scarab",
    "ablation_y_heuristics",
    "ablation_filters",
]
