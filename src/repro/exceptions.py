"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  More specific
subclasses communicate *what* went wrong:

* :class:`GraphError` — structurally invalid graph input (bad vertex ids,
  malformed edge lists, ...).
* :class:`NotADAGError` — an algorithm that requires a DAG received a graph
  with at least one directed cycle.
* :class:`CycleError` — a :class:`NotADAGError` that names a concrete
  witness cycle, raised by the strict ingestion paths.
* :class:`InvalidVertexError` — a query mentioned a vertex id outside
  ``0 .. n-1``; raised uniformly by every index class.
* :class:`IndexNotBuiltError` — a query was issued against an index whose
  :meth:`build` method has not run yet.
* :class:`IndexBuildError` — index construction failed; the ``reason``
  attribute carries a machine-readable cause (e.g. ``"memory-budget"`` for
  the emulated INTERVAL memory exhaustion from the paper's evaluation).
* :class:`IndexIntegrityError` — a persisted or in-memory index violates
  the Theorem 1 soundness invariants (see ``repro.resilience.verify``).
* :class:`QueryBudgetExceeded` — a budgeted query ran out of search steps
  or wall-clock time (see ``repro.resilience.budget``).
* :class:`PersistenceError` — an index file is unreadable: wrong magic,
  truncated, or failing its checksums; ``path`` and ``offset`` locate the
  damage.  :class:`ChecksumError` is the CRC-mismatch subclass.
* :class:`WorkerError` — a (simulated) distributed worker failed; the
  dispatch layer retries these with jittered backoff.
* :class:`DatasetError` — an unknown dataset name or unusable dataset
  parameters.
* :class:`UnknownMethodError` — a method name not present in the index
  registry (subclasses :class:`DatasetError` for back-compat: older code
  caught that type around :func:`repro.baselines.base.create_index`).
* :class:`WorkloadError` — a query workload could not be generated (e.g.
  asking for positive-only pairs on an edgeless graph).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A graph argument is structurally invalid."""


class NotADAGError(GraphError):
    """An operation that requires an acyclic graph received a cyclic one.

    The optional ``cycle_hint`` attribute carries one vertex known to lie on
    a cycle, which makes error messages actionable on large graphs.
    """

    def __init__(self, message: str, cycle_hint: int | None = None) -> None:
        super().__init__(message)
        self.cycle_hint = cycle_hint


class CycleError(NotADAGError):
    """A DAG was required but the input contains a directed cycle.

    Unlike the plain :class:`NotADAGError` hint, ``cycle`` is a complete
    witness: a vertex list ``[v0, v1, ..., vk]`` where each consecutive
    pair is an edge and ``(vk, v0)`` closes the loop.
    """

    def __init__(self, message: str, cycle: list[int]) -> None:
        super().__init__(message, cycle_hint=cycle[0] if cycle else None)
        self.cycle = cycle


class InvalidVertexError(ReproError):
    """A query referenced a vertex id outside the graph's ``0 .. n-1``.

    ``vertex`` is the offending id, ``num_vertices`` the graph size.
    Every index class raises this same type from ``query`` and
    ``query_many``, so callers validate once, uniformly.
    """

    def __init__(self, vertex: int, num_vertices: int) -> None:
        super().__init__(
            f"vertex {vertex} out of range for a graph with "
            f"{num_vertices} vertices (valid ids: 0..{num_vertices - 1})"
        )
        self.vertex = vertex
        self.num_vertices = num_vertices


class IndexNotBuiltError(ReproError):
    """A reachability query was issued before the index was built."""


class IndexBuildError(ReproError):
    """Index construction failed.

    ``reason`` is a short machine-readable cause.  The benchmark harness
    uses ``reason == "memory-budget"`` to reproduce the paper's observation
    that Nuutila's INTERVAL fails on very large graphs.
    """

    def __init__(self, message: str, reason: str = "error") -> None:
        super().__init__(message)
        self.reason = reason


class IndexIntegrityError(ReproError):
    """A FELINE index violates its soundness invariants.

    Raised by ``VerificationReport.raise_if_failed``; ``violations`` is
    the list of human-readable findings from the failed checks.
    """

    def __init__(self, message: str, violations: list[str]) -> None:
        super().__init__(message)
        self.violations = violations


class QueryBudgetExceeded(ReproError):
    """A budgeted query exhausted its step or wall-clock allowance.

    ``resource`` is ``"steps"`` or ``"deadline"``; ``steps`` counts the
    vertices expanded before exhaustion; ``elapsed_s`` is the wall time
    spent in the guarded search.  Only surfaced to callers when the
    budget's policy is ``"raise"`` — the ``"unknown"`` and ``"fallback"``
    policies absorb it (see ``repro.resilience.budget``).
    """

    def __init__(
        self,
        message: str,
        resource: str = "steps",
        steps: int = 0,
        elapsed_s: float = 0.0,
    ) -> None:
        super().__init__(message)
        self.resource = resource
        self.steps = steps
        self.elapsed_s = elapsed_s


class PersistenceError(ReproError):
    """An index file could not be read back safely.

    ``path`` is the offending file; ``offset`` (when known) is the byte
    position where the damage was detected.  Raised instead of raw
    ``struct.error`` / numpy reshape errors for empty, truncated or
    wrong-magic files, in both read and ``mmap`` modes.
    """

    def __init__(
        self, message: str, path: str | None = None, offset: int | None = None
    ) -> None:
        super().__init__(message)
        self.path = path
        self.offset = offset


class ChecksumError(PersistenceError):
    """A v2 index section failed its CRC32 check.

    ``section`` names the damaged array (``"x"``, ``"y"``, ``"levels"``,
    ``"start"``, ``"post"``, or ``"header"``).
    """

    def __init__(
        self,
        message: str,
        path: str | None = None,
        offset: int | None = None,
        section: str = "",
    ) -> None:
        super().__init__(message, path=path, offset=offset)
        self.section = section


class WorkerError(ReproError):
    """A distributed worker failed to serve a dispatch.

    ``shard_id`` identifies the worker; ``transient`` signals whether the
    dispatch layer should retry (with jittered backoff) or fail fast.
    """

    def __init__(
        self, message: str, shard_id: int = -1, transient: bool = True
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.transient = transient


class DatasetError(ReproError):
    """An unknown dataset name or invalid dataset parameters."""


class UnknownMethodError(DatasetError):
    """A reachability-method name is not in the index registry.

    ``method`` is the offending name, ``known`` the sorted registry keys
    at raise time.  Subclasses :class:`DatasetError` only because
    :func:`~repro.baselines.base.create_index` historically raised that
    (misleading) type; catch :class:`UnknownMethodError` in new code.
    """

    def __init__(self, message: str, method: str, known: list[str]) -> None:
        super().__init__(message)
        self.method = method
        self.known = known


class WorkloadError(ReproError):
    """A query workload could not be generated with the given parameters."""
