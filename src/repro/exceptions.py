"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one type to handle any library failure.  More specific
subclasses communicate *what* went wrong:

* :class:`GraphError` — structurally invalid graph input (bad vertex ids,
  malformed edge lists, ...).
* :class:`NotADAGError` — an algorithm that requires a DAG received a graph
  with at least one directed cycle.
* :class:`IndexNotBuiltError` — a query was issued against an index whose
  :meth:`build` method has not run yet.
* :class:`IndexBuildError` — index construction failed; the ``reason``
  attribute carries a machine-readable cause (e.g. ``"memory-budget"`` for
  the emulated INTERVAL memory exhaustion from the paper's evaluation).
* :class:`DatasetError` — an unknown dataset name or unusable dataset
  parameters.
* :class:`UnknownMethodError` — a method name not present in the index
  registry (subclasses :class:`DatasetError` for back-compat: older code
  caught that type around :func:`repro.baselines.base.create_index`).
* :class:`WorkloadError` — a query workload could not be generated (e.g.
  asking for positive-only pairs on an edgeless graph).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class GraphError(ReproError):
    """A graph argument is structurally invalid."""


class NotADAGError(GraphError):
    """An operation that requires an acyclic graph received a cyclic one.

    The optional ``cycle_hint`` attribute carries one vertex known to lie on
    a cycle, which makes error messages actionable on large graphs.
    """

    def __init__(self, message: str, cycle_hint: int | None = None) -> None:
        super().__init__(message)
        self.cycle_hint = cycle_hint


class IndexNotBuiltError(ReproError):
    """A reachability query was issued before the index was built."""


class IndexBuildError(ReproError):
    """Index construction failed.

    ``reason`` is a short machine-readable cause.  The benchmark harness
    uses ``reason == "memory-budget"`` to reproduce the paper's observation
    that Nuutila's INTERVAL fails on very large graphs.
    """

    def __init__(self, message: str, reason: str = "error") -> None:
        super().__init__(message)
        self.reason = reason


class DatasetError(ReproError):
    """An unknown dataset name or invalid dataset parameters."""


class UnknownMethodError(DatasetError):
    """A reachability-method name is not in the index registry.

    ``method`` is the offending name, ``known`` the sorted registry keys
    at raise time.  Subclasses :class:`DatasetError` only because
    :func:`~repro.baselines.base.create_index` historically raised that
    (misleading) type; catch :class:`UnknownMethodError` in new code.
    """

    def __init__(self, message: str, method: str, known: list[str]) -> None:
        super().__init__(message)
        self.method = method
        self.known = known


class WorkloadError(ReproError):
    """A query workload could not be generated with the given parameters."""
