"""The Friedman test over per-dataset method rankings.

The paper applies the Friedman test to the construction-time and
query-time tables "to obtain their statistical significance" (at
confidence level 0.1), then proceeds to the Nemenyi post-hoc test for the
critical-difference diagrams of Figures 10, 11 and 17.  This module
implements the test exactly as in Demšar's methodology the paper follows:

* within each dataset (block), methods are ranked 1 (best) .. k (worst),
  average ranks on ties;
* the χ² statistic is ``12N / (k(k+1)) · (Σ R_j² − k(k+1)²/4)`` with
  ``k − 1`` degrees of freedom, where ``R_j`` is method ``j``'s average
  rank over the ``N`` datasets.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from scipy.stats import chi2

from repro.exceptions import ReproError

__all__ = ["rank_within_block", "friedman_test", "FriedmanResult"]


def rank_within_block(values: Sequence[float]) -> list[float]:
    """Ranks of ``values`` (1 = smallest), averaging tied positions.

    Smaller is better throughout this library (times, sizes).
    """
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    position = 0
    while position < len(order):
        tied_end = position
        while (
            tied_end + 1 < len(order)
            and values[order[tied_end + 1]] == values[order[position]]
        ):
            tied_end += 1
        average = (position + tied_end) / 2 + 1  # ranks are 1-based
        for i in range(position, tied_end + 1):
            ranks[order[i]] = average
        position = tied_end + 1
    return ranks


@dataclass(frozen=True)
class FriedmanResult:
    """Outcome of a Friedman test over N blocks × k methods."""

    statistic: float
    p_value: float
    average_ranks: list[float]
    num_blocks: int
    num_methods: int

    def significant(self, alpha: float = 0.1) -> bool:
        """Whether the null (all methods equivalent) is rejected at α."""
        return self.p_value < alpha


def friedman_test(table: Sequence[Sequence[float]]) -> FriedmanResult:
    """Friedman test on a blocks × methods matrix of measurements.

    ``table[b][m]`` is method ``m``'s measurement on dataset ``b``
    (smaller is better).  Requires at least two methods and two blocks.
    """
    num_blocks = len(table)
    if num_blocks < 2:
        raise ReproError("Friedman test needs at least 2 blocks (datasets)")
    num_methods = len(table[0])
    if num_methods < 2:
        raise ReproError("Friedman test needs at least 2 methods")
    if any(len(row) != num_methods for row in table):
        raise ReproError("all blocks must measure the same methods")

    rank_sums = [0.0] * num_methods
    for row in table:
        for m, rank in enumerate(rank_within_block(row)):
            rank_sums[m] += rank
    average_ranks = [s / num_blocks for s in rank_sums]

    k, n = num_methods, num_blocks
    sum_squares = sum(r * r for r in average_ranks)
    statistic = 12.0 * n / (k * (k + 1)) * (sum_squares - k * (k + 1) ** 2 / 4)
    p_value = float(chi2.sf(statistic, k - 1))
    return FriedmanResult(
        statistic=statistic,
        p_value=p_value,
        average_ranks=average_ranks,
        num_blocks=n,
        num_methods=k,
    )
