"""Nemenyi post-hoc test and critical-difference diagram data.

After a significant Friedman test, the Nemenyi test decides *which*
methods differ: two methods are significantly different when their average
ranks differ by at least the **critical difference**

    CD = q_α · sqrt(k (k+1) / (6 N)),

with ``q_α`` the Studentized-range quantile divided by √2 (Demšar 2006).
The paper draws the outcome as CD diagrams (Figures 10, 11, 17): methods
on a rank axis, a bold line connecting every group that is *not*
significantly different.  :func:`critical_difference` computes CD,
:func:`nemenyi_groups` the connected groups, and
:func:`render_cd_diagram` an ASCII rendering of the figure.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

from scipy.stats import studentized_range

__all__ = [
    "critical_difference",
    "nemenyi_groups",
    "CDDiagram",
    "compute_cd_diagram",
    "render_cd_diagram",
]


def critical_difference(
    num_methods: int, num_blocks: int, alpha: float = 0.1
) -> float:
    """The Nemenyi critical difference for k methods over N datasets."""
    q_alpha = float(
        studentized_range.ppf(1 - alpha, num_methods, math.inf)
    ) / math.sqrt(2)
    return q_alpha * math.sqrt(num_methods * (num_methods + 1) / (6 * num_blocks))


def nemenyi_groups(
    average_ranks: Sequence[float], cd: float
) -> list[tuple[int, ...]]:
    """Maximal groups of methods not significantly different from each other.

    A group is a maximal set of methods whose rank span is below ``cd``
    (the bold lines of a CD diagram).  Groups nested inside another group
    are dropped, matching how the diagrams are drawn.
    """
    order = sorted(range(len(average_ranks)), key=lambda i: average_ranks[i])
    groups: list[tuple[int, ...]] = []
    for start in range(len(order)):
        end = start
        while (
            end + 1 < len(order)
            and average_ranks[order[end + 1]] - average_ranks[order[start]] < cd
        ):
            end += 1
        if end > start:
            group = tuple(order[start : end + 1])
            if not groups or set(group) - set(groups[-1]):
                groups.append(group)
    # Remove groups fully contained in another.
    return [
        g
        for g in groups
        if not any(set(g) < set(other) for other in groups if other != g)
    ]


@dataclass(frozen=True)
class CDDiagram:
    """Everything needed to draw one of the paper's CD figures."""

    method_names: list[str]
    average_ranks: list[float]
    cd: float
    groups: list[tuple[int, ...]]
    alpha: float

    def ordered_methods(self) -> list[tuple[str, float]]:
        """(name, average rank) pairs, best rank first."""
        order = sorted(
            range(len(self.method_names)), key=lambda i: self.average_ranks[i]
        )
        return [(self.method_names[i], self.average_ranks[i]) for i in order]


def compute_cd_diagram(
    method_names: Sequence[str],
    average_ranks: Sequence[float],
    num_blocks: int,
    alpha: float = 0.1,
) -> CDDiagram:
    """Bundle ranks, CD and groups for rendering/reporting."""
    cd = critical_difference(len(method_names), num_blocks, alpha=alpha)
    return CDDiagram(
        method_names=list(method_names),
        average_ranks=list(average_ranks),
        cd=cd,
        groups=nemenyi_groups(average_ranks, cd),
        alpha=alpha,
    )


def render_cd_diagram(diagram: CDDiagram, width: int = 60) -> str:
    """ASCII critical-difference diagram (the paper's Figures 10/11/17).

    A rank axis from 1 to k, one line per method pointing at its average
    rank, and one row of ``=`` per not-significantly-different group.
    """
    k = len(diagram.method_names)
    lo, hi = 1.0, float(k)
    span = hi - lo or 1.0

    def column(rank: float) -> int:
        return round((rank - lo) / span * (width - 1))

    lines = [
        f"CD = {diagram.cd:.3f} (alpha = {diagram.alpha})",
        "rank  1" + "-" * (width - 2) + str(k),
    ]
    for name, rank in diagram.ordered_methods():
        col = column(rank)
        lines.append(" " * (6 + col) + f"^ {name} ({rank:.2f})")
    for group in diagram.groups:
        ranks = [diagram.average_ranks[i] for i in group]
        left, right = column(min(ranks)), column(max(ranks))
        names = ",".join(diagram.method_names[i] for i in group)
        bar = " " * (6 + left) + "=" * max(1, right - left + 1)
        lines.append(f"{bar}  [{names}]")
    return "\n".join(lines)
