"""Statistical methodology of the paper's evaluation (Demšar-style)."""

from repro.stats.friedman import FriedmanResult, friedman_test, rank_within_block
from repro.stats.nemenyi import (
    CDDiagram,
    compute_cd_diagram,
    critical_difference,
    nemenyi_groups,
    render_cd_diagram,
)

__all__ = [
    "friedman_test",
    "FriedmanResult",
    "rank_within_block",
    "critical_difference",
    "nemenyi_groups",
    "compute_cd_diagram",
    "render_cd_diagram",
    "CDDiagram",
]
