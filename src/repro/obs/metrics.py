"""Metrics primitives: counters, gauges, fixed-bucket histograms, registry.

The observability layer is **opt-in**: the process-wide default registry is
a :class:`NullRegistry` whose instruments are shared no-op singletons, so
instrumented code pays one attribute load and an ``is``/truthiness check —
never allocation, locking, or arithmetic — when metrics are off.  Enabling
metrics (:func:`enable_metrics`, or the :func:`metrics_enabled` context
manager) swaps in a real :class:`MetricsRegistry`; indexes pick the
registry up when :meth:`~repro.baselines.base.ReachabilityIndex.build`
runs, so enable metrics *before* building.

Instruments are memoized by ``(name, labels)``, Prometheus-style: asking
for ``registry.counter("repro_queries_total", method="feline")`` twice
returns the same object.  Histograms use fixed bucket boundaries (latency
and count presets below) and derive p50/p95/p99 by linear interpolation
within the winning bucket, clamped to the observed min/max — the same
estimator Prometheus applies server-side with ``histogram_quantile``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from contextlib import contextmanager
from math import inf

from repro.obs.timing import elapsed_s, now_ns
from repro.obs.trace import TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "LATENCY_BUCKETS_S",
    "COUNT_BUCKETS",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "snapshot_instruments",
    "reset_instruments",
]

# Log-spaced seconds: 1µs .. 10s, the range a pure-Python reachability
# query or index build plausibly spans.
LATENCY_BUCKETS_S: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

# Powers of two for event counts (vertices expanded per search, batch
# sizes, ...).
COUNT_BUCKETS: tuple[float, ...] = tuple(float(2 ** k) for k in range(21))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict[str, str], help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        self.value += amount


class Gauge:
    """A value that can go up and down (e.g. an index size snapshot)."""

    __slots__ = ("name", "labels", "help", "value")

    def __init__(self, name: str, labels: dict[str, str], help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """Fixed-bucket histogram with interpolated percentiles.

    ``buckets`` are the finite upper bounds; an implicit ``+Inf`` bucket
    catches the overflow.  ``bucket_counts[i]`` counts observations
    ``<= bucket_bounds[i]`` exclusively of earlier buckets (i.e. *not*
    cumulative — the exporters cumulate on the way out, as the Prometheus
    text format requires).
    """

    __slots__ = (
        "name", "labels", "help", "bucket_bounds", "bucket_counts",
        "count", "sum", "min", "max",
    )

    def __init__(
        self,
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
        name: str = "",
        labels: dict[str, str] | None = None,
        help: str = "",
    ) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be a sorted, non-empty sequence")
        self.name = name
        self.labels = labels or {}
        self.help = help
        self.bucket_bounds = tuple(float(b) for b in buckets)
        self.bucket_counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.count = 0
        self.sum = 0.0
        self.min = inf
        self.max = -inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bucket_bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @contextmanager
    def time(self):
        """Context manager observing the elapsed wall time, in seconds."""
        start = now_ns()
        try:
            yield self
        finally:
            self.observe(elapsed_s(start))

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, fraction: float) -> float:
        """Estimated value at quantile ``fraction`` (0..1), interpolated.

        Within the winning bucket the distribution is assumed uniform;
        the estimate is clamped to the observed ``[min, max]`` so a
        histogram holding a single value reports that exact value at
        every quantile.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        if self.count == 0:
            return 0.0
        rank = fraction * self.count
        cumulative = 0
        lower = 0.0
        for i, bucket_count in enumerate(self.bucket_counts):
            upper = (
                self.bucket_bounds[i]
                if i < len(self.bucket_bounds)
                else self.max
            )
            if cumulative + bucket_count >= rank and bucket_count > 0:
                within = (rank - cumulative) / bucket_count
                estimate = lower + within * (upper - lower)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
            lower = upper
        return self.max

    @property
    def p50(self) -> float:
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        return self.percentile(0.99)


class _NullInstrument:
    """Shared do-nothing stand-in for every instrument type."""

    __slots__ = ()

    def inc(self, amount: float = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def time(self):
        return self


_NULL_INSTRUMENT = _NullInstrument()


class MetricsRegistry:
    """Holds every live instrument plus the build-phase trace log.

    Instruments are created on first request and memoized by name and
    label set; creation is guarded by a lock so concurrent builders (the
    distributed simulation, future thread pools) can share one registry.
    """

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[tuple, object] = {}
        self._lock = threading.Lock()
        self.trace_log = TraceLog()

    # -- instrument factories -------------------------------------------
    def _get(self, kind: str, name: str, labels: dict[str, str], make):
        key = (kind, name, tuple(sorted(labels.items())))
        instrument = self._instruments.get(key)
        if instrument is None:
            with self._lock:
                instrument = self._instruments.setdefault(key, make())
        return instrument

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(
            "counter", name, labels, lambda: Counter(name, labels, help)
        )

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(
            "gauge", name, labels, lambda: Gauge(name, labels, help)
        )

    def histogram(
        self,
        name: str,
        buckets: tuple[float, ...] = LATENCY_BUCKETS_S,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        return self._get(
            "histogram",
            name,
            labels,
            lambda: Histogram(buckets, name=name, labels=labels, help=help),
        )

    # -- tracing --------------------------------------------------------
    def trace(self, name: str, duration_s: float | None = None, **fields):
        """Append a structured :class:`TraceEvent` to the trace log."""
        return self.trace_log.record(name, duration_s=duration_s, **fields)

    @contextmanager
    def phase(self, name: str, phase: str, **fields):
        """Time a named build phase; emits a trace event on exit.

        Also feeds the ``repro_build_phase_seconds`` histogram so phase
        timings show up in both exporters.
        """
        start = now_ns()
        try:
            yield
        finally:
            elapsed = elapsed_s(start)
            self.trace(name, duration_s=elapsed, phase=phase, **fields)
            self.histogram(
                "repro_build_phase_seconds",
                help="Wall time of individual index-build phases.",
                builder=name,
                phase=phase,
            ).observe(elapsed)

    # -- introspection --------------------------------------------------
    def instruments(self) -> list:
        """Every instrument, in creation order."""
        return list(self._instruments.values())

    def snapshot(self) -> dict:
        """Plain-data view of the registry (tests, ad-hoc inspection)."""
        out: dict[str, object] = {"counters": {}, "gauges": {}, "histograms": {}}
        for (kind, name, labels), inst in self._instruments.items():
            key = name if not labels else f"{name}{dict(labels)}"
            if kind == "counter":
                out["counters"][key] = inst.value
            elif kind == "gauge":
                out["gauges"][key] = inst.value
            else:
                out["histograms"][key] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "p50": inst.p50,
                    "p95": inst.p95,
                    "p99": inst.p99,
                }
        out["traces"] = [event.as_dict() for event in self.trace_log]
        return out


class NullRegistry(MetricsRegistry):
    """The default registry: every instrument is a shared no-op.

    ``enabled`` is ``False``, which instrumented call sites use to skip
    timing work entirely; anything that does call through (third-party
    code holding an instrument handle) still works, it just discards.
    """

    enabled = False

    def counter(self, name: str, help: str = "", **labels: str):
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", **labels: str):
        return _NULL_INSTRUMENT

    def histogram(self, name: str, buckets=LATENCY_BUCKETS_S, help="", **labels):
        return _NULL_INSTRUMENT

    def trace(self, name: str, duration_s: float | None = None, **fields):
        return None

    def phase(self, name: str, phase: str, **fields):
        return _NULL_INSTRUMENT


def snapshot_instruments(registry: MetricsRegistry) -> list[dict]:
    """Serializable cumulative state of every live instrument.

    The worker-telemetry wire format: one plain-data document per
    instrument, shippable over a pipe and re-playable into another
    registry by :class:`repro.obs.distributed.TelemetryMerger` (which
    applies deltas, so re-shipping full snapshots never double counts).
    Zero-valued counters and empty histograms are omitted; gauges always
    ship (an info gauge's value *is* its payload).
    """
    docs: list[dict] = []
    for (kind, name, labels), inst in list(registry._instruments.items()):
        doc: dict = {
            "kind": kind,
            "name": name,
            "labels": dict(labels),
            "help": inst.help,
        }
        if kind == "counter":
            if not inst.value:
                continue
            doc["value"] = inst.value
        elif kind == "gauge":
            doc["value"] = inst.value
        else:
            if not inst.count:
                continue
            doc.update(
                bounds=list(inst.bucket_bounds),
                bucket_counts=list(inst.bucket_counts),
                count=inst.count,
                sum=inst.sum,
                min=inst.min,
                max=inst.max,
            )
        docs.append(doc)
    return docs


def reset_instruments(registry: MetricsRegistry) -> None:
    """Zero every instrument *in place*, keeping existing handles valid.

    A forked worker inherits the coordinator's registry object along
    with the instrument handles its index resolved at build time; this
    resets the inherited totals (they belong to the parent) without
    invalidating those handles, so the worker's subsequent snapshots
    contain only what it observed itself.
    """
    for inst in registry.instruments():
        if isinstance(inst, Histogram):
            inst.bucket_counts = [0] * len(inst.bucket_counts)
            inst.count = 0
            inst.sum = 0.0
            inst.min = inf
            inst.max = -inf
        elif isinstance(inst, Counter):
            inst.value = 0
        elif isinstance(inst, Gauge):
            inst.value = 0.0


_registry: MetricsRegistry = NullRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (a no-op :class:`NullRegistry` by default)."""
    return _registry


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Install ``registry`` as the process-wide registry; returns it."""
    global _registry
    _registry = registry
    return _registry


def enable_metrics(registry: MetricsRegistry | None = None) -> MetricsRegistry:
    """Turn metrics collection on; returns the active registry.

    Call *before* building indexes — instrument handles are resolved at
    :meth:`build` time.
    """
    return set_registry(registry if registry is not None else MetricsRegistry())


def disable_metrics() -> None:
    """Restore the zero-cost no-op registry."""
    set_registry(NullRegistry())


@contextmanager
def metrics_enabled(registry: MetricsRegistry | None = None):
    """Scoped :func:`enable_metrics`; restores the previous registry."""
    previous = get_registry()
    active = enable_metrics(registry)
    try:
        yield active
    finally:
        set_registry(previous)
