"""Distributed tracing and cross-process telemetry stitching.

One HTTP request to the serving tier touches up to four kinds of
process: the asyncio server, the coalescer's executor thread, the shard
coordinator, and forked shard (or pool) workers.  This module is the
glue that makes all of that one observable unit:

* **Trace context** rides in-band: the server mints a 64-bit trace id
  per admitted request (:func:`repro.obs.spans.new_trace_id`), child
  spans inherit it through the ambient parent, and shard RPC frames
  carry ``(trace_id, parent_span_id)`` as an optional fourth element —
  absent entirely when tracing is off, so the default wire format is
  bit-identical to the untraced one.
* **Worker spans piggyback** on RPC responses: a worker runs the forked
  copy of the coordinator's tracer, drains its ring into the response's
  ``aux`` envelope (:func:`build_aux`), and the coordinator re-parents
  them under the originating ``shard.rpc`` span with
  :meth:`~repro.obs.spans.Tracer.adopt` (:func:`ingest_aux`).  Spans
  finished without a trace context (orphans) are dropped at the worker,
  never shipped under the wrong parent; a lost or garbled envelope is
  counted and discarded — piggyback loss never fails the query path.
* **Worker telemetry** ships the same way, at low frequency: cumulative
  :func:`~repro.obs.metrics.snapshot_instruments` documents ride the
  piggyback (rate-limited worker-side) and every supervisor heartbeat.
  :class:`TelemetryMerger` folds them into the coordinator registry as
  *deltas* against the previous snapshot per source, under an extra
  ``shard`` (or ``pool_worker``) label — so ``/metrics`` exposes
  worker-side counters without double counting, and a restarted worker
  (fresh zeroed registry) just resets its baseline.

The stage taxonomy (``repro_stage_seconds{stage=...}``) is derived from
finished span names in :mod:`repro.obs.spans`; :data:`STAGES` lists the
labels.  See docs/OBSERVABILITY.md ("Distributed tracing") for the
protocol diagram.
"""

from __future__ import annotations

import threading
from math import inf

from repro.obs.metrics import get_registry, snapshot_instruments
from repro.obs.spans import format_trace_id, get_tracer

__all__ = [
    "STAGES",
    "PIGGYBACK_MAX_SPANS",
    "TELEMETRY_INTERVAL_S",
    "TelemetryMerger",
    "build_aux",
    "ingest_aux",
    "trace_tree",
    "trace_payload",
    "recent_traces",
    "render_trace_tree",
    "trace_to_chrome",
]

#: The per-stage latency decomposition labels (`repro_stage_seconds`).
STAGES = ("queue", "coalesce", "observer", "cut", "search", "rpc", "worker")

#: Cap on spans one piggyback envelope carries; the overflow count ships
#: as ``dropped_spans`` so truncation is visible, never silent.
PIGGYBACK_MAX_SPANS = 512

#: Minimum seconds between telemetry snapshots on the piggyback channel
#: (heartbeats always carry one — that is the low-frequency floor).
TELEMETRY_INTERVAL_S = 1.0


class TelemetryMerger:
    """Fold cumulative per-worker instrument snapshots into a registry.

    Workers ship *cumulative* snapshots (simple and loss-tolerant: a
    dropped envelope is recovered by the next one).  The merger keeps
    the last applied snapshot per ``(source, instrument)`` and applies
    only the delta, so re-shipping totals never double counts.  A
    negative delta means the worker restarted with a fresh registry
    between snapshots — the current totals are then applied whole.
    :meth:`reset` drops a source's baselines explicitly (the service
    calls it on every respawn).
    """

    def __init__(self) -> None:
        self._last: dict[tuple, dict] = {}
        self._lock = threading.Lock()

    def reset(self, source) -> None:
        """Forget ``source``'s baselines (its next snapshot is fresh)."""
        with self._lock:
            for key in [k for k in self._last if k[0] == source]:
                del self._last[key]

    def apply(self, source, snapshot, registry, **extra_labels) -> int:
        """Merge one snapshot; returns instruments that changed.

        ``extra_labels`` (e.g. ``shard="1"``) are appended to every
        merged series so worker-originated metrics are attributable.
        Malformed documents are skipped one by one — a single bad entry
        never poisons the rest of the snapshot.
        """
        if not isinstance(snapshot, list) or not registry.enabled:
            return 0
        applied = 0
        for doc in snapshot:
            try:
                applied += self._apply_one(source, doc, registry, extra_labels)
            except Exception:  # noqa: BLE001 — per-doc isolation
                continue
        return applied

    def _apply_one(self, source, doc, registry, extra_labels) -> int:
        kind = doc["kind"]
        name = doc["name"]
        labels = {str(k): str(v) for k, v in dict(doc.get("labels") or {}).items()}
        help_ = str(doc.get("help", ""))
        merged = {**labels, **extra_labels}
        key = (source, kind, name, tuple(sorted(labels.items())))
        with self._lock:
            prev = self._last.get(key)
            self._last[key] = doc
        if kind == "counter":
            value = int(doc["value"])
            delta = value - (int(prev["value"]) if prev is not None else 0)
            if delta < 0:  # restarted source without reset(): fresh totals
                delta = value
            if delta:
                registry.counter(name, help=help_, **merged).inc(delta)
            return 1 if delta else 0
        if kind == "gauge":
            registry.gauge(name, help=help_, **merged).set(float(doc["value"]))
            return 1
        if kind != "histogram":
            return 0
        bounds = tuple(float(b) for b in doc["bounds"])
        counts = [int(c) for c in doc["bucket_counts"]]
        count = int(doc["count"])
        total = float(doc["sum"])
        if prev is not None and tuple(float(b) for b in prev["bounds"]) == bounds:
            d_counts = [
                c - int(p) for c, p in zip(counts, prev["bucket_counts"])
            ]
            d_count = count - int(prev["count"])
            d_sum = total - float(prev["sum"])
            if d_count < 0 or any(c < 0 for c in d_counts):
                d_counts, d_count, d_sum = counts, count, total
        else:
            d_counts, d_count, d_sum = counts, count, total
        if d_count <= 0:
            return 0
        hist = registry.histogram(name, buckets=bounds, help=help_, **merged)
        if len(hist.bucket_counts) != len(d_counts):
            return 0  # bucket layout clash with an existing series: drop
        for i, c in enumerate(d_counts):
            hist.bucket_counts[i] += c
        hist.count += d_count
        hist.sum += d_sum
        low = float(doc.get("min", inf))
        high = float(doc.get("max", -inf))
        if low < hist.min:
            hist.min = low
        if high > hist.max:
            hist.max = high
        return 1


# ---------------------------------------------------------------------------
# The piggyback envelope (worker builds, coordinator ingests)
# ---------------------------------------------------------------------------
def build_aux(
    *,
    tracer,
    registry,
    trace_ctx: tuple | None,
    pid: int,
    ship_telemetry: bool,
) -> dict | None:
    """Assemble the ``aux`` envelope a worker attaches to a response.

    Drains the worker's span ring either way — spans finished without a
    request's ``trace_ctx`` are orphans and are *dropped here*, bounded,
    rather than shipped under a wrong parent.  Returns ``None`` when
    there is nothing to ship (the response then stays a plain 3-tuple).
    """
    aux: dict = {}
    if tracer.enabled:
        spans = tracer.spans()
        tracer.clear()
        if trace_ctx is not None and spans:
            aux["trace_id"], aux["parent_id"] = trace_ctx
            aux["spans"] = [s.as_dict() for s in spans[:PIGGYBACK_MAX_SPANS]]
            if len(spans) > PIGGYBACK_MAX_SPANS:
                aux["dropped_spans"] = len(spans) - PIGGYBACK_MAX_SPANS
    if ship_telemetry and registry.enabled:
        snapshot = snapshot_instruments(registry)
        if snapshot:
            aux["telemetry"] = snapshot
    if not aux:
        return None
    aux["pid"] = pid
    return aux


def ingest_aux(
    aux,
    *,
    merger: TelemetryMerger | None = None,
    source=None,
    tracer=None,
    registry=None,
    **extra_labels,
) -> None:
    """Fold one piggyback envelope into the coordinator's tracer/registry.

    Never raises: a malformed envelope is counted
    (``repro_telemetry_ingest_errors_total``) and discarded, because the
    query answer riding the same response must not be lost to a
    telemetry bug.
    """
    try:
        if not isinstance(aux, dict):
            return
        tracer = tracer if tracer is not None else get_tracer()
        spans = aux.get("spans")
        if spans and tracer.enabled:
            tracer.adopt(
                spans,
                trace_id=aux.get("trace_id"),
                parent_id=aux.get("parent_id"),
            )
        snapshot = aux.get("telemetry")
        if snapshot and merger is not None:
            registry = registry if registry is not None else get_registry()
            merger.apply(source, snapshot, registry, **extra_labels)
    except Exception:  # noqa: BLE001 — observability must not fail queries
        try:
            live = registry if registry is not None else get_registry()
            if live.enabled:
                live.counter(
                    "repro_telemetry_ingest_errors_total",
                    help="Malformed piggyback envelopes dropped by the "
                    "coordinator.",
                ).inc()
        except Exception:  # noqa: BLE001 — last resort: stay silent
            pass


# ---------------------------------------------------------------------------
# Trace views (/trace endpoint, `repro trace` CLI)
# ---------------------------------------------------------------------------
def trace_tree(tracer, trace_id: int) -> list[dict]:
    """Nested span trees (list of roots) for one trace id.

    Children sort by start time; a span whose parent is outside the
    trace (or already evicted from the ring) becomes a root rather than
    disappearing.
    """
    spans = tracer.spans_for_trace(trace_id)
    nodes = {s.span_id: {**s.as_dict(), "children": []} for s in spans}
    roots = []
    for s in spans:
        node = nodes[s.span_id]
        parent = nodes.get(s.parent_id)
        if parent is not None:
            parent["children"].append(node)
        else:
            roots.append(node)
    for node in nodes.values():
        node["children"].sort(key=lambda n: n["start_ns"])
    roots.sort(key=lambda n: n["start_ns"])
    return roots


def trace_payload(tracer, trace_id: int) -> dict:
    """The ``/trace?trace_id=`` JSON document: one stitched tree."""
    spans = tracer.spans_for_trace(trace_id)
    return {
        "trace_id": format_trace_id(trace_id),
        "span_count": len(spans),
        "pids": sorted({s.pid for s in spans}),
        "roots": trace_tree(tracer, trace_id),
    }


def recent_traces(tracer, limit: int = 20) -> list[dict]:
    """Distinct traces in the ring, most recently finished first."""
    summary: dict[int, dict] = {}
    for span in tracer.spans():
        tid = span.trace_id
        if tid is None:
            continue
        entry = summary.get(tid)
        if entry is None:
            summary[tid] = {
                "trace_id": format_trace_id(tid),
                "name": span.name,
                "span_count": 1,
                "_start": span.start_ns,
                "_end": span.end_ns or span.start_ns,
            }
            continue
        entry["span_count"] += 1
        if span.start_ns < entry["_start"]:
            entry["_start"] = span.start_ns
            entry["name"] = span.name
        end = span.end_ns or span.start_ns
        if end > entry["_end"]:
            entry["_end"] = end
    ordered = sorted(summary.values(), key=lambda e: e["_end"], reverse=True)
    for entry in ordered:
        del entry["_start"], entry["_end"]
    return ordered[:limit]


def _walk_payload(payload) -> list[dict]:
    flat: list[dict] = []

    def walk(node):
        flat.append(node)
        for child in node.get("children") or []:
            walk(child)

    for root in payload.get("roots") or []:
        walk(root)
    return flat


def render_trace_tree(payload: dict) -> str:
    """Pretty-print a :func:`trace_payload` document for a terminal."""
    pids = ",".join(str(p) for p in payload.get("pids", []))
    lines = [
        f"trace {payload['trace_id']}  "
        f"({payload.get('span_count', 0)} spans, pids {pids})"
    ]
    shown = ("endpoint", "op", "shard", "size", "verdict", "survivors", "attempt")

    def walk(node, depth):
        duration_us = node.get("duration_ns", 0) / 1000.0
        attrs = node.get("attributes") or {}
        extra = " ".join(
            f"{k}={attrs[k]}" for k in shown if k in attrs
        )
        lines.append(
            f"{'  ' * depth}{node['name']:<28} {duration_us:>10.1f} us"
            f"  pid={node.get('pid', '?')}" + (f"  {extra}" if extra else "")
        )
        for child in node.get("children") or []:
            walk(child, depth + 1)

    for root in payload.get("roots") or []:
        walk(root, 0)
    return "\n".join(lines)


def trace_to_chrome(payload: dict, process_name: str = "repro") -> dict:
    """One :func:`trace_payload` tree as a Chrome ``trace_event`` doc.

    Works on the plain JSON payload (no live tracer needed), so the
    ``repro trace`` CLI can export a tree it fetched over HTTP.
    """
    flat = _walk_payload(payload)
    pids: list = []
    for node in flat:
        pid = node.get("pid", 0)
        if pid not in pids:
            pids.append(pid)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {
                "name": process_name
                if pid == pids[0]
                else f"{process_name} worker {pid}",
            },
        }
        for pid in pids
    ]
    for node in flat:
        args = {
            "span_id": node.get("span_id"),
            "parent_id": node.get("parent_id"),
            "trace_id": payload.get("trace_id"),
        }
        attrs = node.get("attributes") or {}
        for key, value in attrs.items():
            if isinstance(value, (bool, int, float, str)) or value is None:
                args[key] = value
            else:
                args[key] = str(value)
        events.append(
            {
                "name": node["name"],
                "cat": "repro",
                "ph": "X",
                "ts": node.get("start_ns", 0) / 1000.0,
                "dur": node.get("duration_ns", 0) / 1000.0,
                "pid": node.get("pid", 0),
                "tid": node.get("thread_id", 0),
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}
