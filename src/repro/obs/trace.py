"""Structured trace events for index-build phases and other milestones.

A trace event is a named, ordered record with an optional duration and
arbitrary scalar fields — "X-order computed in 1.2 ms on 50k vertices".
Events accumulate in a :class:`TraceLog` owned by the metrics registry
and ship out through the JSON-lines exporter, one object per line, so a
build can be replayed phase by phase from the artifact alone.

Sequence numbers, not wall-clock timestamps, order the log: the registry
is process-local and monotonic ordering is what consumers need; durations
are measured with :func:`time.perf_counter` where they matter.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "TraceLog"]


@dataclass(frozen=True)
class TraceEvent:
    """One structured event: sequence number, name, duration, fields."""

    seq: int
    name: str
    duration_s: float | None = None
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Flat dict for the JSON-lines exporter."""
        out: dict = {"seq": self.seq, "name": self.name}
        if self.duration_s is not None:
            out["duration_s"] = self.duration_s
        out.update(self.fields)
        return out


class TraceLog:
    """Append-only, thread-safe event log with a bounded length.

    ``capacity`` caps memory for long-lived services: beyond it the log
    drops the *oldest* events (ring-buffer semantics) while ``total``
    keeps counting, so truncation is detectable.
    """

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._events: list[TraceEvent] = []
        self._lock = threading.Lock()

    def record(
        self, name: str, duration_s: float | None = None, **fields
    ) -> TraceEvent:
        """Append an event; returns it (handy for tests)."""
        with self._lock:
            event = TraceEvent(
                seq=self.total, name=name, duration_s=duration_s, fields=fields
            )
            self.total += 1
            self._events.append(event)
            if len(self._events) > self.capacity:
                del self._events[: len(self._events) - self.capacity]
            return event

    @property
    def truncated(self) -> bool:
        return self.total > len(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self):
        return iter(list(self._events))

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
