"""A stdlib scrape endpoint: ``/metrics``, ``/healthz``, ``/slow``.

**Metrics-only.**  Query traffic is served by the asyncio tier in
:mod:`repro.serve` (which folds these same endpoints into its own
surface); ``ObsServer`` remains for deployments that want a scrape
target without a query server — a sidecar exposing the process-wide
registry.  Endpoints:

* ``GET /metrics`` — the active metrics registry in the Prometheus text
  exposition format (scrape-ready);
* ``GET /healthz`` — ``ok`` with a 200, for load-balancer liveness;
* ``GET /slow`` — the attached :class:`~repro.obs.slowlog.SlowQueryLog`
  as a JSON document (records plus sampling metadata).

No dependencies beyond the standard library, by design — the container
bakes in no web framework, and a scrape target needs nothing fancier.
Start with::

    server = ObsServer(slow_log=log).start()   # port=0 picks a free port
    print(server.url)
    ...
    server.stop()
    server.start()                             # restart rebinds a socket

Lifecycle contract (shared with :class:`repro.serve.ReachServer`):
``start()`` while running raises ``RuntimeError``; ``stop()`` is
idempotent; ``start()`` after ``stop()`` binds a **fresh** socket — with
``port=0`` the port may change, so re-read :attr:`port`.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.slowlog import SlowQueryLog

__all__ = ["ObsServer", "slow_log_payload"]


def slow_log_payload(log: SlowQueryLog | None) -> dict:
    """The ``/slow`` JSON document for a slow-query log (or ``None``).

    Shared by :class:`ObsServer` and :class:`repro.serve.ReachServer`
    so both servers render an identical document.
    """
    if log is None:
        return {"records": [], "observed": 0}
    return {
        "mode": log.mode,
        "capacity": log.capacity,
        "threshold_ns": log.threshold_ns,
        "observed": log.observed,
        "records": log.as_dicts(),
    }


class ObsServer:
    """Serve observability endpoints from a daemon thread.

    Parameters
    ----------
    registry:
        Metrics registry backing ``/metrics``; defaults to the live
        process-wide registry *at scrape time*, so a server started
        before :func:`repro.obs.enable_metrics` still scrapes correctly.
    slow_log:
        The log backing ``/slow``; ``None`` serves an empty document.
    host, port:
        Bind address; ``port=0`` (default) lets the OS pick a free port,
        readable as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        slow_log: SlowQueryLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self.slow_log = slow_log
        self._host = host
        self._requested_port = port
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None
        self._address: tuple[str, int] | None = None
        self._bind()

    def _bind(self) -> None:
        """Bind a fresh listening socket (construction and restart)."""
        obs_server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence per-request stderr
                pass

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = to_prometheus(obs_server.registry)
                    self._reply(200, body, "text/plain; version=0.0.4")
                elif path == "/healthz":
                    self._reply(200, "ok\n", "text/plain")
                elif path == "/slow":
                    doc = slow_log_payload(obs_server.slow_log)
                    body = json.dumps(doc, indent=2)
                    self._reply(200, body + "\n", "application/json")
                else:
                    self._reply(404, "not found\n", "text/plain")

            def _reply(self, status: int, body: str, content_type: str):
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._httpd = ThreadingHTTPServer(
            (self._host, self._requested_port), Handler
        )
        self._httpd.daemon_threads = True
        self._address = self._httpd.server_address[:2]

    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The registry ``/metrics`` serves (live lookup when unset)."""
        return self._registry if self._registry is not None else get_registry()

    def slow_payload(self) -> dict:
        """The ``/slow`` JSON document."""
        return slow_log_payload(self.slow_log)

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``).

        After a restart the port may differ from the previous run when
        constructed with ``port=0`` — re-read it after each ``start()``.
        """
        if self._address is None:
            raise RuntimeError("ObsServer has no bound socket")
        return self._address[1]

    @property
    def url(self) -> str:
        if self._address is None:
            raise RuntimeError("ObsServer has no bound socket")
        return f"http://{self._address[0]}:{self._address[1]}"

    @property
    def running(self) -> bool:
        """Whether the serving thread is active."""
        return self._thread is not None

    # ------------------------------------------------------------------
    def start(self) -> "ObsServer":
        """Begin serving from a daemon thread; returns ``self``.

        Raises ``RuntimeError`` if already running.  After ``stop()``,
        calling ``start()`` again rebinds a fresh socket and resumes —
        explicit restart is part of the lifecycle contract.
        """
        if self._thread is not None:
            raise RuntimeError(
                "ObsServer is already running; stop() it before calling "
                "start() again"
            )
        if self._httpd is None:
            self._bind()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent).

        Closes the listening socket; a later ``start()`` binds a new
        one (the port may change when constructed with ``port=0``).
        """
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "running" if self._thread is not None else "stopped"
        where = self.url if self._address is not None else "unbound"
        return f"<ObsServer {where} {state}>"
