"""A stdlib scrape endpoint: ``/metrics``, ``/healthz``, ``/slow``.

The serving triad's live surface — a background-thread
:class:`http.server.ThreadingHTTPServer` exposing:

* ``GET /metrics`` — the active metrics registry in the Prometheus text
  exposition format (scrape-ready);
* ``GET /healthz`` — ``ok`` with a 200, for load-balancer liveness;
* ``GET /slow`` — the attached :class:`~repro.obs.slowlog.SlowQueryLog`
  as a JSON document (records plus sampling metadata).

No dependencies beyond the standard library, by design — the container
bakes in no web framework, and a reachability service needs nothing
fancier than a scrape target.  Start with::

    server = ObsServer(slow_log=log).start()   # port=0 picks a free port
    print(server.url)
    ...
    server.stop()
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.obs.export import to_prometheus
from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.slowlog import SlowQueryLog

__all__ = ["ObsServer"]


class ObsServer:
    """Serve observability endpoints from a daemon thread.

    Parameters
    ----------
    registry:
        Metrics registry backing ``/metrics``; defaults to the live
        process-wide registry *at scrape time*, so a server started
        before :func:`repro.obs.enable_metrics` still scrapes correctly.
    slow_log:
        The log backing ``/slow``; ``None`` serves an empty document.
    host, port:
        Bind address; ``port=0`` (default) lets the OS pick a free port,
        readable as :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        slow_log: SlowQueryLog | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self.slow_log = slow_log
        obs_server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # silence per-request stderr
                pass

            def do_GET(self):
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = to_prometheus(obs_server.registry)
                    self._reply(200, body, "text/plain; version=0.0.4")
                elif path == "/healthz":
                    self._reply(200, "ok\n", "text/plain")
                elif path == "/slow":
                    body = json.dumps(obs_server.slow_payload(), indent=2)
                    self._reply(200, body + "\n", "application/json")
                else:
                    self._reply(404, "not found\n", "text/plain")

            def _reply(self, status: int, body: str, content_type: str):
                payload = body.encode("utf-8")
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    # ------------------------------------------------------------------
    @property
    def registry(self) -> MetricsRegistry:
        """The registry ``/metrics`` serves (live lookup when unset)."""
        return self._registry if self._registry is not None else get_registry()

    def slow_payload(self) -> dict:
        """The ``/slow`` JSON document."""
        log = self.slow_log
        if log is None:
            return {"records": [], "observed": 0}
        return {
            "mode": log.mode,
            "capacity": log.capacity,
            "threshold_ns": log.threshold_ns,
            "observed": log.observed,
            "records": log.as_dicts(),
        }

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host = self._httpd.server_address[0]
        return f"http://{host}:{self.port}"

    # ------------------------------------------------------------------
    def start(self) -> "ObsServer":
        """Begin serving from a daemon thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("ObsServer is already running")
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Shut the server down and join its thread (idempotent)."""
        if self._thread is None:
            return
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "running" if self._thread is not None else "stopped"
        return f"<ObsServer {self.url} {state}>"
