"""Observability: metrics, timers, trace events, exporters.

The production north star needs more than the ad-hoc ``QueryStats``
counters: latency distributions per method, build-phase timings, and
machine-readable exports.  This package provides them with a strict
zero-cost-when-disabled contract — the process-wide default registry is
a no-op, and instrumented hot paths guard on it with a single cheap
check, so benchmark numbers with metrics off match uninstrumented code.

Typical use::

    from repro import obs

    registry = obs.enable_metrics()        # before building indexes
    oracle = repro.Reachability(edges)
    oracle.reachable_many(pairs)
    print(obs.to_prometheus(registry))     # or obs.write_jsonl(registry, path)

Metric families emitted by the built-in instrumentation:

* ``repro_index_builds_total{method}`` — builds per method (counter);
* ``repro_index_build_seconds{method}`` — build wall time (histogram);
* ``repro_build_phase_seconds{builder,phase}`` — per-phase build time
  (histogram; FELINE phases: ``x-order``, ``y-heuristic``,
  ``level-filter``, ``positive-cut-forest``);
* ``repro_query_latency_seconds{method}`` — scalar query latency
  (histogram; p50/p95/p99 derived);
* ``repro_query_batch_seconds{method}`` / ``repro_query_batch_size{method}``
  — whole-batch latency and size (histograms);
* ``repro_search_expanded_vertices{method}`` — vertices expanded per
  pruned DFS (histogram);
* ``repro_query_stats{method,counter}`` — the ``QueryStats`` counters as
  gauges (published by ``ReachabilityIndex.publish_stats``);
* ``repro_budget_exhausted_total{method,resource,policy}`` /
  ``repro_degraded_total{method,outcome,policy}`` — budget exhaustion
  and degradation outcomes, split by degradation policy.

Beyond metrics, the package provides the serving triad (see
docs/OBSERVABILITY.md):

* **spans** (:mod:`repro.obs.spans`) — hierarchical start/end intervals
  with parent links and a contextvar ambient span; enable with
  :func:`enable_tracing`, export with :func:`write_chrome_trace`
  (Perfetto-loadable) or :func:`write_spans_jsonl`;
* **explain** (:mod:`repro.obs.explain`) — per-query verdict provenance
  (:class:`QueryExplanation`), produced by ``Reachability.explain`` and
  ``ReachabilityIndex.explain``;
* **slow-query log** (:mod:`repro.obs.slowlog`) — a bounded ring buffer
  with threshold or reservoir sampling;
* **scrape endpoint** (:mod:`repro.obs.server`) — a stdlib HTTP server
  exposing ``/metrics``, ``/healthz``, and ``/slow``;
* **distributed stitching** (:mod:`repro.obs.distributed`) — one trace
  per request across the HTTP edge, coalescer, shard coordinator and
  forked workers: trace-context propagation in RPC frames, worker spans
  and telemetry piggybacked on responses, per-stage latency under
  ``repro_stage_seconds{stage=...}``.
"""

from repro.obs.distributed import (
    STAGES,
    TelemetryMerger,
    build_aux,
    ingest_aux,
    recent_traces,
    render_trace_tree,
    trace_payload,
    trace_to_chrome,
    trace_tree,
)
from repro.obs.explain import CUTS, BudgetReport, QueryExplanation
from repro.obs.export import (
    to_jsonl,
    to_prometheus,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    COUNT_BUCKETS,
    LATENCY_BUCKETS_S,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    reset_instruments,
    set_registry,
    snapshot_instruments,
)
from repro.obs.server import ObsServer
from repro.obs.slowlog import SlowQueryLog, SlowQueryRecord
from repro.obs.spans import (
    NullTracer,
    Span,
    Tracer,
    current_span,
    disable_tracing,
    enable_tracing,
    format_trace_id,
    get_tracer,
    new_trace_id,
    parse_trace_id,
    set_tracer,
    spans_to_chrome_trace,
    spans_to_jsonl,
    tracing_enabled,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.timing import Timer, elapsed_ns, elapsed_s, now_ns, timed
from repro.obs.trace import TraceEvent, TraceLog

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullRegistry",
    "LATENCY_BUCKETS_S",
    "COUNT_BUCKETS",
    "get_registry",
    "set_registry",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "Timer",
    "timed",
    "now_ns",
    "elapsed_ns",
    "elapsed_s",
    "TraceEvent",
    "TraceLog",
    "to_jsonl",
    "write_jsonl",
    "to_prometheus",
    "write_prometheus",
    # spans
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "spans_to_chrome_trace",
    "write_chrome_trace",
    "new_trace_id",
    "format_trace_id",
    "parse_trace_id",
    # distributed stitching
    "STAGES",
    "TelemetryMerger",
    "build_aux",
    "ingest_aux",
    "trace_tree",
    "trace_payload",
    "recent_traces",
    "render_trace_tree",
    "trace_to_chrome",
    "snapshot_instruments",
    "reset_instruments",
    # explain
    "CUTS",
    "BudgetReport",
    "QueryExplanation",
    # slow-query log + serving
    "SlowQueryRecord",
    "SlowQueryLog",
    "ObsServer",
]
