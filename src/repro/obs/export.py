"""Exporters: JSON-lines and the Prometheus text exposition format.

Two consumers, two formats:

* **JSON-lines** (:func:`to_jsonl` / :func:`write_jsonl`) — one JSON
  object per line, ``type`` discriminated (``counter`` / ``gauge`` /
  ``histogram`` / ``trace``), for offline analysis of a bench run.
  Histogram lines carry the derived p50/p95/p99 so a consumer needs no
  bucket math.
* **Prometheus text format** (:func:`to_prometheus` /
  :func:`write_prometheus`) — the ``# HELP`` / ``# TYPE`` exposition
  format, scrape-ready.  Histogram buckets are emitted *cumulatively*
  with the mandatory ``+Inf`` bound and ``_sum`` / ``_count`` series, as
  the format requires.
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["to_jsonl", "write_jsonl", "to_prometheus", "write_prometheus"]

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


# ---------------------------------------------------------------------------
# JSON lines
# ---------------------------------------------------------------------------
def to_jsonl(registry: MetricsRegistry) -> str:
    """Serialize every instrument and trace event, one JSON object per line."""
    lines: list[str] = []
    for inst in registry.instruments():
        if isinstance(inst, Counter):
            record: dict = {"type": "counter", "value": inst.value}
        elif isinstance(inst, Gauge):
            record = {"type": "gauge", "value": inst.value}
        elif isinstance(inst, Histogram):
            record = {
                "type": "histogram",
                "count": inst.count,
                "sum": inst.sum,
                "min": inst.min if inst.count else None,
                "max": inst.max if inst.count else None,
                "p50": inst.p50,
                "p95": inst.p95,
                "p99": inst.p99,
                "buckets": [
                    {"le": bound, "count": count}
                    for bound, count in zip(
                        list(inst.bucket_bounds) + [float("inf")],
                        inst.bucket_counts,
                    )
                    if count
                ],
            }
        else:  # pragma: no cover - registry only stores the three kinds
            continue
        record["name"] = inst.name
        if inst.labels:
            record["labels"] = dict(inst.labels)
        lines.append(json.dumps(record, default=str))
    for event in registry.trace_log:
        lines.append(json.dumps({"type": "trace", **event.as_dict()}, default=str))
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`to_jsonl` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(to_jsonl(registry), encoding="utf-8")
    return path


# ---------------------------------------------------------------------------
# Prometheus text format
# ---------------------------------------------------------------------------
def _metric_name(name: str) -> str:
    """Coerce ``name`` into the Prometheus metric-name alphabet."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _label_str(labels: dict[str, str], extra: dict[str, str] | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    parts = []
    for key, value in merged.items():
        text = str(value)
        for raw, escaped in _LABEL_ESCAPES.items():
            text = text.replace(raw, escaped)
        parts.append(f'{_metric_name(key)}="{text}"')
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    # Group instruments by (kind, name): HELP/TYPE headers are emitted
    # once per family even when many label sets exist.
    families: dict[tuple[str, str], list] = {}
    for inst in registry.instruments():
        if isinstance(inst, Counter):
            kind = "counter"
        elif isinstance(inst, Gauge):
            kind = "gauge"
        elif isinstance(inst, Histogram):
            kind = "histogram"
        else:  # pragma: no cover
            continue
        families.setdefault((kind, inst.name), []).append(inst)

    lines: list[str] = []
    for (kind, raw_name), instruments in families.items():
        name = _metric_name(raw_name)
        help_text = next((i.help for i in instruments if i.help), "")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for inst in instruments:
            if kind in ("counter", "gauge"):
                lines.append(
                    f"{name}{_label_str(inst.labels)} {_format_value(inst.value)}"
                )
                continue
            cumulative = 0
            bounds = list(inst.bucket_bounds) + [float("inf")]
            for bound, bucket_count in zip(bounds, inst.bucket_counts):
                cumulative += bucket_count
                label = _label_str(inst.labels, {"le": _format_value(bound)})
                lines.append(f"{name}_bucket{label} {cumulative}")
            base = _label_str(inst.labels)
            lines.append(f"{name}_sum{base} {_format_value(inst.sum)}")
            lines.append(f"{name}_count{base} {inst.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(registry: MetricsRegistry, path: str | Path) -> Path:
    """Write :func:`to_prometheus` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(to_prometheus(registry), encoding="utf-8")
    return path
