"""Per-query verdict provenance: which cut answered, and at what cost.

FELINE's value proposition is *which* O(1) cut answers a query — the
negative coordinate cut, the level filter, the positive-cut interval —
versus how far the pruned DFS of Algorithm 3 had to go.  The aggregate
``QueryStats`` counters show the distribution; a
:class:`QueryExplanation` answers the per-query question ("why was *this*
query slow / answered true?") that GRAIL's and FERRARI's evaluations were
built around.

Produced by :meth:`repro.baselines.base.ReachabilityIndex.explain` (and
:meth:`repro.Reachability.explain` on the facade); the generic machinery
classifies the verdict from the index's own statistics counters, and each
index family enriches :attr:`QueryExplanation.details` through the
``_explain_details`` hook — FELINE adds the coordinates, levels and tree
intervals it consulted.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CUTS", "BudgetReport", "QueryExplanation"]

#: Every value :attr:`QueryExplanation.cut` can take.  ``negative-cut``
#: means the O(1) coordinate/label cut (for FELINE: ``i(u) ⋠ i(v)``);
#: ``level-filter`` and ``negative-cut-reversed`` are FELINE refinements
#: of it; ``positive-cut`` the O(1) positive answer;
#: ``observer-positive`` / ``observer-negative`` mean the attached
#: O'Reach-style observer layer decided *before* the family's own cuts
#: ran (see :mod:`repro.perf.observers`); ``search`` means the pruned
#: online search (Algorithm 3) had to run; ``same-scc`` is the facade's
#: condensation shortcut for two vertices in one component.
CUTS = (
    "equal",
    "same-scc",
    "observer-positive",
    "observer-negative",
    "negative-cut",
    "negative-cut-reversed",
    "level-filter",
    "positive-cut",
    "search",
)


@dataclass(frozen=True)
class BudgetReport:
    """How a :class:`~repro.resilience.budget.QueryBudget` was consumed.

    ``outcome`` is ``"completed"`` when the search finished within
    budget, otherwise the degradation that replaced the answer
    (``"raised"``, ``"unknown"``, ``"fallback_true"``,
    ``"fallback_false"``, ``"fallback_unknown"``).
    """

    policy: str
    max_steps: int | None
    deadline_s: float | None
    steps_used: int
    exhausted: bool
    outcome: str

    def as_dict(self) -> dict:
        return {
            "policy": self.policy,
            "max_steps": self.max_steps,
            "deadline_s": self.deadline_s,
            "steps_used": self.steps_used,
            "exhausted": self.exhausted,
            "outcome": self.outcome,
        }


@dataclass
class QueryExplanation:
    """Structured provenance for one reachability query.

    Attributes
    ----------
    method, u, v:
        The index method and the (index-space) query pair.
    verdict:
        ``True`` / ``False``, or :data:`~repro.resilience.budget.UNKNOWN`
        when a budget degraded the answer.
    cut:
        Which mechanism produced the verdict — one of :data:`CUTS`.
    expanded, pruned:
        Vertices expanded by the online search and branches cut by the
        index filters during it (both 0 when an O(1) cut fired).
    elapsed_ns:
        Wall time of the explained query, monotonic and clamped >= 0.
    details:
        Per-method enrichment: FELINE puts the coordinates ``i(u)`` /
        ``i(v)``, levels, and tree intervals it consulted here.
    budget:
        A :class:`BudgetReport` when the query ran under a
        ``QueryBudget``, else ``None``.
    """

    method: str
    u: int
    v: int
    verdict: object
    cut: str
    expanded: int = 0
    pruned: int = 0
    elapsed_ns: int = 0
    details: dict = field(default_factory=dict)
    budget: BudgetReport | None = None

    def as_dict(self) -> dict:
        """Plain-data view (JSON-ready; ``UNKNOWN`` renders as a string)."""
        verdict = self.verdict if isinstance(self.verdict, bool) else str(
            self.verdict
        )
        out: dict = {
            "method": self.method,
            "u": self.u,
            "v": self.v,
            "verdict": verdict,
            "cut": self.cut,
            "expanded": self.expanded,
            "pruned": self.pruned,
            "elapsed_ns": self.elapsed_ns,
        }
        if self.details:
            out["details"] = {
                key: (value if isinstance(value, (bool, int, float, str))
                      else str(value))
                for key, value in self.details.items()
            }
        if self.budget is not None:
            out["budget"] = self.budget.as_dict()
        return out

    def render(self) -> str:
        """Human-readable multi-line rendering (the ``repro explain`` CLI)."""
        verdict = (
            "reachable" if self.verdict is True
            else "not reachable" if self.verdict is False
            else str(self.verdict)
        )
        lines = [
            f"r({self.u}, {self.v}) on {self.method}: {verdict}",
            f"  answered by: {_CUT_PROSE.get(self.cut, self.cut)}",
        ]
        for key, value in self.details.items():
            lines.append(f"  {key}: {value}")
        if self.cut == "search" or self.expanded or self.pruned:
            lines.append(
                f"  search: {self.expanded} vertices expanded, "
                f"{self.pruned} branches pruned"
            )
        if self.budget is not None:
            b = self.budget
            limit = []
            if b.max_steps is not None:
                limit.append(f"max_steps={b.max_steps}")
            if b.deadline_s is not None:
                limit.append(f"deadline_s={b.deadline_s}")
            lines.append(
                f"  budget: {', '.join(limit)} policy={b.policy} "
                f"steps_used={b.steps_used} outcome={b.outcome}"
            )
        lines.append(f"  elapsed: {self.elapsed_ns / 1000.0:.1f} us")
        return "\n".join(lines)


_CUT_PROSE = {
    "equal": "reflexivity (u == v), O(1)",
    "same-scc": "same strongly connected component, O(1)",
    "observer-positive":
        "observer layer: a supporting vertex connects u to v, O(1)",
    "observer-negative":
        "observer layer: topological interval or supporting-vertex "
        "contrapositive, O(1)",
    "negative-cut": "negative coordinate cut (Theorem 1), O(1)",
    "negative-cut-reversed":
        "negative cut on the reversed index (FELINE-B), O(1)",
    "level-filter": "topological level filter (§3.4.2), O(1)",
    "positive-cut": "positive-cut interval containment (§3.4.1), O(1)",
    "search": "refined online search (Algorithm 3)",
}
