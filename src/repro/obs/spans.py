"""Hierarchical spans: start/end intervals with parent links and attributes.

Where :mod:`repro.obs.trace` records flat build milestones, a *span* is a
timed interval in a tree: an index build is a span, each build phase a
child span, a batch query a span with one child per worker dispatch.  The
tree is reconstructed from ``parent_id`` links; the *ambient* current span
lives in a :mod:`contextvars` context variable, so nesting works across
helper functions (and per-``contextvars``-semantics, across threads that
copy the context) without threading span objects through every signature.

The subsystem follows the same zero-cost-when-disabled contract as the
metrics registry: the process-wide default tracer is a :class:`NullTracer`
whose :meth:`~Tracer.span` returns one shared no-op context manager —
instrumented code pays an attribute load and a truthiness check, never an
allocation.  Enable with :func:`enable_tracing` (or the scoped
:func:`tracing_enabled`) *before* building indexes, mirroring
:func:`repro.obs.enable_metrics`.

Spans are *distributed*-trace aware: every span carries the ``pid`` of
the process that recorded it and an optional 64-bit ``trace_id`` that
groups all the work of one external request.  A trace id is minted at
the request edge (:func:`new_trace_id`), inherited by child spans
through the ambient parent, carried across process boundaries inside
shard RPC frames, and stitched back together with :meth:`Tracer.adopt`
(see :mod:`repro.obs.distributed`).  Span timestamps come from
``CLOCK_MONOTONIC`` which is system-wide on Linux, so spans recorded in
forked workers align on the coordinator's timeline without offset
correction.

Finished spans export two ways:

* :func:`spans_to_jsonl` — one JSON object per span, for offline joins
  against the metrics JSONL;
* :func:`spans_to_chrome_trace` — the Chrome ``trace_event`` JSON format
  (``ph: "X"`` complete events, microsecond timestamps), which
  https://ui.perfetto.dev and ``chrome://tracing`` open directly;
  adopted worker spans render as their own process track.
"""

from __future__ import annotations

import json
import os
import random
import threading
from contextvars import ContextVar
from pathlib import Path

from repro.obs.timing import elapsed_ns, now_ns

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
    "new_trace_id",
    "format_trace_id",
    "parse_trace_id",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "spans_to_chrome_trace",
    "write_chrome_trace",
]

#: This process's pid, refreshed after fork so spans recorded in shard
#: workers and pool workers are attributed to the right process.
_PID = os.getpid()


def _refresh_pid() -> None:
    global _PID
    _PID = os.getpid()


os.register_at_fork(after_in_child=_refresh_pid)


def new_trace_id() -> int:
    """Mint a 64-bit non-zero trace id for one external request."""
    return random.getrandbits(64) or 1


def format_trace_id(trace_id: int) -> str:
    """Canonical wire form: 16 lowercase hex chars (``%016x``)."""
    return f"{trace_id:016x}"


def parse_trace_id(text) -> int:
    """Parse a trace id from its canonical 16-hex-char form, a ``0x``
    prefixed hex string, or a plain decimal; raises ``ValueError``."""
    if isinstance(text, int):
        return text
    s = str(text).strip().lower()
    if s.startswith("0x"):
        return int(s, 16)
    if len(s) == 16:
        return int(s, 16)
    return int(s, 10)

#: The ambient span: children created while it is active parent to it.
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


class Span:
    """One timed interval in the trace tree.

    Created by :meth:`Tracer.span`; use as a context manager.  Attributes
    are arbitrary scalar fields (``sp.set_attribute("verdict", True)``)
    that ride along into both exporters.  ``end_ns`` is ``None`` while
    the span is open; ``duration_ns`` is clamped non-negative (see
    :func:`repro.obs.timing.elapsed_ns`).
    """

    __slots__ = (
        "span_id", "parent_id", "trace_id", "name", "start_ns", "end_ns",
        "attributes", "thread_id", "pid", "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attributes: dict,
        trace_id: int | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.trace_id = trace_id
        self.name = name
        self.attributes = attributes
        self.start_ns = now_ns()
        self.end_ns: int | None = None
        self.thread_id = threading.get_ident()
        self.pid = _PID
        self._tracer = tracer
        self._token = None

    def set_attribute(self, key: str, value) -> "Span":
        """Attach one attribute; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    def end(self) -> "Span":
        """Close the span and hand it to the tracer (idempotent)."""
        if self.end_ns is None:
            self.end_ns = self.start_ns + elapsed_ns(self.start_ns)
            self._tracer._finish(self)
        return self

    @property
    def duration_ns(self) -> int:
        """Span length so far (live while open), never negative."""
        if self.end_ns is None:
            return elapsed_ns(self.start_ns)
        return self.end_ns - self.start_ns

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.end()
        return False

    def as_dict(self) -> dict:
        """Flat dict for the JSONL exporter."""
        out: dict = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
            "pid": self.pid,
        }
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out

    def __repr__(self) -> str:
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"<Span #{self.span_id} {self.name!r} {state}>"


class _NullSpan:
    """Shared no-op span: what the disabled tracer hands out."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> "_NullSpan":
        return self

    def end(self) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()

#: Span name → stage label of the ``repro_stage_seconds`` family.  The
#: per-stage latency decomposition is derived from finished spans, so it
#: exists exactly when tracing is on and costs nothing otherwise.
_STAGE_OF_SPAN = {
    "serve.queue": "queue",
    "serve.flush": "coalesce",
    "engine.observer": "observer",
    "engine.cut": "cut",
    "engine.search": "search",
    "shard.rpc": "rpc",
}


def _stage_of(name: str) -> str | None:
    stage = _STAGE_OF_SPAN.get(name)
    if stage is None and name.startswith("worker."):
        return "worker"
    return stage


#: Cap on spans adopted from one remote envelope: bounds the ring-buffer
#: churn a single piggyback can cause.
_ADOPT_MAX = 2048


class Tracer:
    """Collects finished spans in a bounded ring buffer.

    ``capacity`` caps memory for long-lived services: beyond it the
    oldest finished spans are dropped while ``total`` keeps counting, so
    truncation is detectable (same semantics as
    :class:`repro.obs.trace.TraceLog`).
    """

    enabled = True

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0

    def span(self, name: str, *, trace_id: int | None = None, **attributes) -> Span:
        """Open a span parented to the ambient current span.

        ``trace_id`` stamps the span with an explicit trace (the request
        edge does this after :func:`new_trace_id`); otherwise the span
        inherits its parent's trace, so one id flows through the whole
        tree without threading it through every signature.

        Use as a context manager — entering makes the new span ambient,
        exiting restores the parent and records the finished span::

            with tracer.span("query", method="feline") as sp:
                ...
                sp.set_attribute("verdict", answer)
        """
        parent = _CURRENT_SPAN.get()
        if trace_id is None and parent is not None:
            trace_id = parent.trace_id
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            self,
            span_id,
            parent.span_id if parent is not None else None,
            name,
            attributes,
            trace_id=trace_id,
        )

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.total += 1
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[: len(self._spans) - self.capacity]
        stage = _stage_of(span.name)
        if stage is not None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
            if registry.enabled:
                registry.histogram(
                    "repro_stage_seconds",
                    help="Per-stage request latency decomposition, derived "
                    "from finished spans (tracing must be enabled).",
                    stage=stage,
                ).observe(span.duration_ns * 1e-9)

    def adopt(
        self,
        span_dicts,
        *,
        trace_id: int | None = None,
        parent_id: int | None = None,
    ) -> list[Span]:
        """Stitch spans shipped from another process into this ring.

        ``span_dicts`` are :meth:`Span.as_dict` documents (piggybacked on
        an RPC response).  Remote span ids are remapped into this
        tracer's id space — internal parent/child edges are preserved,
        remote *roots* (whose parent was not shipped) re-parent to
        ``parent_id`` (the coordinator-side ``shard.rpc`` span), and
        ``trace_id``, when given, overrides whatever the remote recorded
        so the whole tree shares the request's trace.  Malformed entries
        are skipped; at most ``_ADOPT_MAX`` spans are taken per call.
        Returns the adopted spans.
        """
        entries = []
        for doc in list(span_dicts)[:_ADOPT_MAX]:
            if not isinstance(doc, dict):
                continue
            name = doc.get("name")
            start = doc.get("start_ns")
            duration = doc.get("duration_ns")
            if (
                not isinstance(name, str)
                or not isinstance(start, int)
                or not isinstance(duration, int)
                or duration < 0
            ):
                continue
            entries.append(doc)
        if not entries:
            return []
        with self._lock:
            base = self._next_id
            self._next_id += len(entries)
        id_map = {
            doc.get("span_id"): base + i for i, doc in enumerate(entries)
        }
        adopted = []
        for doc in entries:
            attributes = doc.get("attributes")
            span = Span(
                self,
                id_map[doc.get("span_id")],
                None,
                doc["name"],
                dict(attributes) if isinstance(attributes, dict) else {},
            )
            remote_parent = doc.get("parent_id")
            span.parent_id = id_map.get(remote_parent, parent_id)
            span.trace_id = (
                trace_id if trace_id is not None else doc.get("trace_id")
            )
            span.start_ns = doc["start_ns"]
            span.end_ns = doc["start_ns"] + doc["duration_ns"]
            thread_id = doc.get("thread_id")
            if isinstance(thread_id, int):
                span.thread_id = thread_id
            pid = doc.get("pid")
            if isinstance(pid, int):
                span.pid = pid
            adopted.append(span)
        # Appended directly (not via _finish): the remote already counted
        # these into its stage histograms before shipping.
        with self._lock:
            self.total += len(adopted)
            self._spans.extend(adopted)
            if len(self._spans) > self.capacity:
                del self._spans[: len(self._spans) - self.capacity]
        return adopted

    def spans_for_trace(self, trace_id: int) -> list[Span]:
        """Finished spans of one trace, oldest first."""
        return [s for s in self.spans() if s.trace_id == trace_id]

    @property
    def truncated(self) -> bool:
        return self.total > len(self._spans)

    def spans(self) -> list[Span]:
        """Finished spans, oldest first."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class NullTracer(Tracer):
    """The default tracer: disabled, hands out one shared no-op span."""

    enabled = False

    def span(self, name: str, *, trace_id: int | None = None, **attributes):
        return _NULL_SPAN

    def adopt(self, span_dicts, *, trace_id=None, parent_id=None) -> list:
        return []

    def _finish(self, span) -> None:  # pragma: no cover - nothing finishes
        pass


_tracer: Tracer = NullTracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op :class:`NullTracer` by default)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return _tracer


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Turn span collection on; returns the active tracer.

    Like :func:`repro.obs.enable_metrics`, call *before* building
    indexes — the query hot path resolves its tracer handle at
    :meth:`~repro.baselines.base.ReachabilityIndex.build` time.
    """
    return set_tracer(tracer if tracer is not None else Tracer())


def disable_tracing() -> None:
    """Restore the zero-cost no-op tracer."""
    set_tracer(NullTracer())


class tracing_enabled:
    """Scoped :func:`enable_tracing`; restores the previous tracer.

    >>> with tracing_enabled() as tracer:
    ...     with tracer.span("work"):
    ...         pass
    >>> len(tracer)
    1
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = get_tracer()
        return enable_tracing(self._tracer)

    def __exit__(self, *exc) -> bool:
        set_tracer(self._previous)
        return False


def current_span() -> Span | None:
    """The ambient span, or ``None`` outside any ``with tracer.span(...)``."""
    return _CURRENT_SPAN.get()


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def spans_to_jsonl(tracer: Tracer) -> str:
    """Serialize every finished span, one JSON object per line."""
    lines = [
        json.dumps(span.as_dict(), default=str) for span in tracer.spans()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write :func:`spans_to_jsonl` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(spans_to_jsonl(tracer), encoding="utf-8")
    return path


def spans_to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> str:
    """Render finished spans as Chrome ``trace_event`` JSON.

    Emits ``ph: "X"`` (complete) events with microsecond timestamps —
    the subset every viewer supports.  Load the file directly in
    https://ui.perfetto.dev or ``chrome://tracing``; the span hierarchy
    appears as stacked slices per thread track, adopted worker spans get
    their own process track (named after their pid), and span attributes
    show in the ``args`` panel on click.
    """
    spans = tracer.spans()
    pids: list[int] = []
    for span in spans:
        if span.pid not in pids:
            pids.append(span.pid)
    if not pids:
        pids = [_PID]
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {
                "name": process_name
                if pid == pids[0]
                else f"{process_name} worker {pid}",
            },
        }
        for pid in pids
    ]
    for span in spans:
        args: dict = {
            "span_id": span.span_id,
            "parent_id": span.parent_id,
            **{k: _json_safe(v) for k, v in span.attributes.items()},
        }
        if span.trace_id is not None:
            args["trace_id"] = format_trace_id(span.trace_id)
        event: dict = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": span.pid,
            "tid": span.thread_id,
            "args": args,
        }
        events.append(event)
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, default=str
    )


def _json_safe(value):
    """Coerce attribute values the ``args`` panel can display."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def write_chrome_trace(
    tracer: Tracer, path: str | Path, process_name: str = "repro"
) -> Path:
    """Write :func:`spans_to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.write_text(
        spans_to_chrome_trace(tracer, process_name=process_name),
        encoding="utf-8",
    )
    return path
