"""Hierarchical spans: start/end intervals with parent links and attributes.

Where :mod:`repro.obs.trace` records flat build milestones, a *span* is a
timed interval in a tree: an index build is a span, each build phase a
child span, a batch query a span with one child per worker dispatch.  The
tree is reconstructed from ``parent_id`` links; the *ambient* current span
lives in a :mod:`contextvars` context variable, so nesting works across
helper functions (and per-``contextvars``-semantics, across threads that
copy the context) without threading span objects through every signature.

The subsystem follows the same zero-cost-when-disabled contract as the
metrics registry: the process-wide default tracer is a :class:`NullTracer`
whose :meth:`~Tracer.span` returns one shared no-op context manager —
instrumented code pays an attribute load and a truthiness check, never an
allocation.  Enable with :func:`enable_tracing` (or the scoped
:func:`tracing_enabled`) *before* building indexes, mirroring
:func:`repro.obs.enable_metrics`.

Finished spans export two ways:

* :func:`spans_to_jsonl` — one JSON object per span, for offline joins
  against the metrics JSONL;
* :func:`spans_to_chrome_trace` — the Chrome ``trace_event`` JSON format
  (``ph: "X"`` complete events, microsecond timestamps), which
  https://ui.perfetto.dev and ``chrome://tracing`` open directly.
"""

from __future__ import annotations

import json
import threading
from contextvars import ContextVar
from pathlib import Path

from repro.obs.timing import elapsed_ns, now_ns

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "get_tracer",
    "set_tracer",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "current_span",
    "spans_to_jsonl",
    "write_spans_jsonl",
    "spans_to_chrome_trace",
    "write_chrome_trace",
]

#: The ambient span: children created while it is active parent to it.
_CURRENT_SPAN: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None
)


class Span:
    """One timed interval in the trace tree.

    Created by :meth:`Tracer.span`; use as a context manager.  Attributes
    are arbitrary scalar fields (``sp.set_attribute("verdict", True)``)
    that ride along into both exporters.  ``end_ns`` is ``None`` while
    the span is open; ``duration_ns`` is clamped non-negative (see
    :func:`repro.obs.timing.elapsed_ns`).
    """

    __slots__ = (
        "span_id", "parent_id", "name", "start_ns", "end_ns",
        "attributes", "thread_id", "_tracer", "_token",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: int,
        parent_id: int | None,
        name: str,
        attributes: dict,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = attributes
        self.start_ns = now_ns()
        self.end_ns: int | None = None
        self.thread_id = threading.get_ident()
        self._tracer = tracer
        self._token = None

    def set_attribute(self, key: str, value) -> "Span":
        """Attach one attribute; returns ``self`` for chaining."""
        self.attributes[key] = value
        return self

    def end(self) -> "Span":
        """Close the span and hand it to the tracer (idempotent)."""
        if self.end_ns is None:
            self.end_ns = self.start_ns + elapsed_ns(self.start_ns)
            self._tracer._finish(self)
        return self

    @property
    def duration_ns(self) -> int:
        """Span length so far (live while open), never negative."""
        if self.end_ns is None:
            return elapsed_ns(self.start_ns)
        return self.end_ns - self.start_ns

    def __enter__(self) -> "Span":
        self._token = _CURRENT_SPAN.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT_SPAN.reset(self._token)
            self._token = None
        if exc_type is not None:
            self.attributes.setdefault("error", exc_type.__name__)
        self.end()
        return False

    def as_dict(self) -> dict:
        """Flat dict for the JSONL exporter."""
        out: dict = {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_ns": self.start_ns,
            "duration_ns": self.duration_ns,
            "thread_id": self.thread_id,
        }
        if self.attributes:
            out["attributes"] = dict(self.attributes)
        return out

    def __repr__(self) -> str:
        state = "open" if self.end_ns is None else f"{self.duration_ns}ns"
        return f"<Span #{self.span_id} {self.name!r} {state}>"


class _NullSpan:
    """Shared no-op span: what the disabled tracer hands out."""

    __slots__ = ()

    def set_attribute(self, key: str, value) -> "_NullSpan":
        return self

    def end(self) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class Tracer:
    """Collects finished spans in a bounded ring buffer.

    ``capacity`` caps memory for long-lived services: beyond it the
    oldest finished spans are dropped while ``total`` keeps counting, so
    truncation is detectable (same semantics as
    :class:`repro.obs.trace.TraceLog`).
    """

    enabled = True

    def __init__(self, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.total = 0
        self._spans: list[Span] = []
        self._lock = threading.Lock()
        self._next_id = 0

    def span(self, name: str, **attributes) -> Span:
        """Open a span parented to the ambient current span.

        Use as a context manager — entering makes the new span ambient,
        exiting restores the parent and records the finished span::

            with tracer.span("query", method="feline") as sp:
                ...
                sp.set_attribute("verdict", answer)
        """
        parent = _CURRENT_SPAN.get()
        with self._lock:
            span_id = self._next_id
            self._next_id += 1
        return Span(
            self,
            span_id,
            parent.span_id if parent is not None else None,
            name,
            attributes,
        )

    def _finish(self, span: Span) -> None:
        with self._lock:
            self.total += 1
            self._spans.append(span)
            if len(self._spans) > self.capacity:
                del self._spans[: len(self._spans) - self.capacity]

    @property
    def truncated(self) -> bool:
        return self.total > len(self._spans)

    def spans(self) -> list[Span]:
        """Finished spans, oldest first."""
        return list(self._spans)

    def __len__(self) -> int:
        return len(self._spans)

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()


class NullTracer(Tracer):
    """The default tracer: disabled, hands out one shared no-op span."""

    enabled = False

    def span(self, name: str, **attributes):
        return _NULL_SPAN

    def _finish(self, span) -> None:  # pragma: no cover - nothing finishes
        pass


_tracer: Tracer = NullTracer()


def get_tracer() -> Tracer:
    """The process-wide tracer (a no-op :class:`NullTracer` by default)."""
    return _tracer


def set_tracer(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-wide tracer; returns it."""
    global _tracer
    _tracer = tracer
    return _tracer


def enable_tracing(tracer: Tracer | None = None) -> Tracer:
    """Turn span collection on; returns the active tracer.

    Like :func:`repro.obs.enable_metrics`, call *before* building
    indexes — the query hot path resolves its tracer handle at
    :meth:`~repro.baselines.base.ReachabilityIndex.build` time.
    """
    return set_tracer(tracer if tracer is not None else Tracer())


def disable_tracing() -> None:
    """Restore the zero-cost no-op tracer."""
    set_tracer(NullTracer())


class tracing_enabled:
    """Scoped :func:`enable_tracing`; restores the previous tracer.

    >>> with tracing_enabled() as tracer:
    ...     with tracer.span("work"):
    ...         pass
    >>> len(tracer)
    1
    """

    def __init__(self, tracer: Tracer | None = None) -> None:
        self._tracer = tracer
        self._previous: Tracer | None = None

    def __enter__(self) -> Tracer:
        self._previous = get_tracer()
        return enable_tracing(self._tracer)

    def __exit__(self, *exc) -> bool:
        set_tracer(self._previous)
        return False


def current_span() -> Span | None:
    """The ambient span, or ``None`` outside any ``with tracer.span(...)``."""
    return _CURRENT_SPAN.get()


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------
def spans_to_jsonl(tracer: Tracer) -> str:
    """Serialize every finished span, one JSON object per line."""
    lines = [
        json.dumps(span.as_dict(), default=str) for span in tracer.spans()
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_spans_jsonl(tracer: Tracer, path: str | Path) -> Path:
    """Write :func:`spans_to_jsonl` output to ``path``; returns the path."""
    path = Path(path)
    path.write_text(spans_to_jsonl(tracer), encoding="utf-8")
    return path


def spans_to_chrome_trace(tracer: Tracer, process_name: str = "repro") -> str:
    """Render finished spans as Chrome ``trace_event`` JSON.

    Emits ``ph: "X"`` (complete) events with microsecond timestamps —
    the subset every viewer supports.  Load the file directly in
    https://ui.perfetto.dev or ``chrome://tracing``; the span hierarchy
    appears as stacked slices per thread track, and span attributes show
    in the ``args`` panel on click.
    """
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": process_name},
        }
    ]
    for span in tracer.spans():
        event: dict = {
            "name": span.name,
            "cat": "repro",
            "ph": "X",
            "ts": span.start_ns / 1000.0,
            "dur": span.duration_ns / 1000.0,
            "pid": 1,
            "tid": span.thread_id,
            "args": {
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                **{k: _json_safe(v) for k, v in span.attributes.items()},
            },
        }
        events.append(event)
    return json.dumps(
        {"traceEvents": events, "displayTimeUnit": "ms"}, default=str
    )


def _json_safe(value):
    """Coerce attribute values the ``args`` panel can display."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def write_chrome_trace(
    tracer: Tracer, path: str | Path, process_name: str = "repro"
) -> Path:
    """Write :func:`spans_to_chrome_trace` output to ``path``."""
    path = Path(path)
    path.write_text(
        spans_to_chrome_trace(tracer, process_name=process_name),
        encoding="utf-8",
    )
    return path
