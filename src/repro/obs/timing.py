"""Monotonic timing helpers: nanosecond clock, :class:`Timer`, :func:`timed`.

Every duration the observability layer records — span lengths, timer
readings, histogram ``time()`` blocks — flows through the two helpers at
the top of this module, :func:`now_ns` and :func:`elapsed_ns`.  That
single choke point buys two guarantees:

* one well-defined clock (:func:`time.perf_counter_ns` — monotonic,
  integer, no float rounding on long uptimes), and
* **non-negative durations**: ``elapsed_ns`` clamps to zero, so a clock
  quirk (VM suspend/resume, NTP-adjusted fallback clocks on exotic
  platforms, counter wrap in a foreign process) can never push a negative
  duration into a histogram bucket or a span export and corrupt
  percentiles downstream.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter_ns

__all__ = ["now_ns", "elapsed_ns", "elapsed_s", "Timer", "timed"]

#: Nanoseconds per second, for the few places that convert to float seconds.
NS_PER_S = 1_000_000_000


def now_ns() -> int:
    """The monotonic clock, in integer nanoseconds.

    The single clock source for spans, timers, and histogram timing —
    pair with :func:`elapsed_ns` rather than subtracting by hand.
    """
    return perf_counter_ns()


def elapsed_ns(start_ns: int) -> int:
    """Nanoseconds since ``start_ns`` (a :func:`now_ns` reading), >= 0.

    Negative differences are clamped to zero so clock quirks cannot
    corrupt histograms or span durations.
    """
    delta = perf_counter_ns() - start_ns
    return delta if delta > 0 else 0


def elapsed_s(start_ns: int) -> float:
    """Seconds since ``start_ns``, clamped to >= 0 (see :func:`elapsed_ns`)."""
    return elapsed_ns(start_ns) / NS_PER_S


class Timer:
    """A stopwatch over the monotonic clock.

    >>> t = Timer().start()
    >>> elapsed = t.stop()   # seconds, >= 0
    >>> t.elapsed == elapsed
    True

    While running, ``elapsed`` reads the live value without stopping.
    ``start()`` returns ``self`` so construction chains; calling it again
    restarts the measurement.  Readings are clamped non-negative
    (see :func:`elapsed_ns`).
    """

    __slots__ = ("_start_ns", "_elapsed", "running")

    def __init__(self) -> None:
        self._start_ns = 0
        self._elapsed = 0.0
        self.running = False

    def start(self) -> "Timer":
        self._start_ns = now_ns()
        self.running = True
        return self

    def stop(self) -> float:
        """Stop and return the elapsed seconds."""
        if not self.running:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = elapsed_s(self._start_ns)
        self.running = False
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Seconds measured so far (live while running, frozen after stop)."""
        if self.running:
            return elapsed_s(self._start_ns)
        return self._elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


@contextmanager
def timed(observe):
    """Time a block and pass the elapsed seconds to ``observe``.

    ``observe`` is any callable taking one float — typically a bound
    ``Histogram.observe`` — called even when the block raises, so error
    paths stay visible in latency distributions:

    >>> from repro.obs.metrics import Histogram
    >>> h = Histogram()
    >>> with timed(h.observe):
    ...     _ = sum(range(10))
    >>> h.count
    1
    """
    start = now_ns()
    try:
        yield
    finally:
        observe(elapsed_s(start))
