"""Monotonic timing helpers: :class:`Timer` and :func:`timed`.

Thin wrappers over :func:`time.perf_counter` so instrumented code never
spells out the start/stop arithmetic — and so tests can assert on one
well-defined behaviour (monotonic, reentrant-safe, exception-safe).
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = ["Timer", "timed"]


class Timer:
    """A stopwatch over the monotonic clock.

    >>> t = Timer().start()
    >>> elapsed = t.stop()   # seconds, >= 0
    >>> t.elapsed == elapsed
    True

    While running, ``elapsed`` reads the live value without stopping.
    ``start()`` returns ``self`` so construction chains; calling it again
    restarts the measurement.
    """

    __slots__ = ("_start", "_elapsed", "running")

    def __init__(self) -> None:
        self._start = 0.0
        self._elapsed = 0.0
        self.running = False

    def start(self) -> "Timer":
        self._start = perf_counter()
        self.running = True
        return self

    def stop(self) -> float:
        """Stop and return the elapsed seconds."""
        if not self.running:
            raise RuntimeError("Timer.stop() called before start()")
        self._elapsed = perf_counter() - self._start
        self.running = False
        return self._elapsed

    @property
    def elapsed(self) -> float:
        """Seconds measured so far (live while running, frozen after stop)."""
        if self.running:
            return perf_counter() - self._start
        return self._elapsed

    def __enter__(self) -> "Timer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False


@contextmanager
def timed(observe):
    """Time a block and pass the elapsed seconds to ``observe``.

    ``observe`` is any callable taking one float — typically a bound
    ``Histogram.observe`` — called even when the block raises, so error
    paths stay visible in latency distributions:

    >>> from repro.obs.metrics import Histogram
    >>> h = Histogram()
    >>> with timed(h.observe):
    ...     _ = sum(range(10))
    >>> h.count
    1
    """
    start = perf_counter()
    try:
        yield
    finally:
        observe(perf_counter() - start)
