"""Bounded slow-query log: the serving triad's second leg.

A :class:`SlowQueryLog` is a thread-safe ring buffer of
:class:`SlowQueryRecord` entries, attachable to any index
(:meth:`repro.baselines.base.ReachabilityIndex.attach_slow_log`), the
facade (:meth:`repro.Reachability.enable_slow_log`), or the simulated
cluster.  Two sampling modes:

* ``mode="threshold"`` (default) — record every query at or above
  ``threshold_ns``; the classic slow-query log.
* ``mode="reservoir"`` — uniform reservoir sampling (Vitter's
  algorithm R) over *all* queries, for latency forensics on workloads
  where nothing crosses a fixed threshold.

The buffer is bounded (``capacity`` records, oldest evicted in threshold
mode) and the ``observed`` counter keeps running, so sampling pressure is
visible.  Records ship as JSON through the ``/slow`` endpoint of
:class:`repro.obs.server.ObsServer`.
"""

from __future__ import annotations

import random
import threading
from collections import deque
from dataclasses import dataclass

from repro.obs.spans import format_trace_id

__all__ = ["SlowQueryRecord", "SlowQueryLog"]


@dataclass(frozen=True)
class SlowQueryRecord:
    """One logged query: who, what, how slow, and how it was answered.

    ``trace_id`` carries the request's distributed trace (when tracing
    was on), so a slow entry joins its ``/trace`` tree; ``shard`` is the
    owning shard for queries the shard tier routed to one worker.
    """

    seq: int
    method: str
    u: int
    v: int
    verdict: object
    elapsed_ns: int
    cut: str | None = None
    trace_id: int | None = None
    shard: int | None = None

    def as_dict(self) -> dict:
        """JSON-ready view (``UNKNOWN`` verdicts render as a string)."""
        verdict = self.verdict if isinstance(self.verdict, bool) else str(
            self.verdict
        )
        out: dict = {
            "seq": self.seq,
            "method": self.method,
            "u": self.u,
            "v": self.v,
            "verdict": verdict,
            "elapsed_ns": self.elapsed_ns,
            "elapsed_us": self.elapsed_ns / 1000.0,
        }
        if self.cut is not None:
            out["cut"] = self.cut
        if self.trace_id is not None:
            out["trace_id"] = format_trace_id(self.trace_id)
        if self.shard is not None:
            out["shard"] = self.shard
        return out


class SlowQueryLog:
    """Ring buffer of slow (or sampled) queries.

    Parameters
    ----------
    capacity:
        Maximum records retained.
    threshold_ns:
        Threshold-mode cutoff: queries faster than this are not logged.
        The default (1 ms) is far above any cut-answered query, so a
        default log captures exactly the pathological searches.
    mode:
        ``"threshold"`` or ``"reservoir"`` (see module docstring).
    seed:
        Reservoir-mode RNG seed, for reproducible sampling in tests.
    """

    def __init__(
        self,
        capacity: int = 128,
        threshold_ns: int = 1_000_000,
        mode: str = "threshold",
        seed: int = 0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if mode not in ("threshold", "reservoir"):
            raise ValueError(
                f"unknown slow-log mode {mode!r}; "
                "use 'threshold' or 'reservoir'"
            )
        self.capacity = capacity
        self.threshold_ns = threshold_ns
        self.mode = mode
        #: Queries offered to the log (recorded or not) since creation.
        self.observed = 0
        self._records: deque[SlowQueryRecord] | list[SlowQueryRecord]
        if mode == "threshold":
            self._records = deque(maxlen=capacity)
        else:
            self._records = []
        self._rng = random.Random(seed)
        self._lock = threading.Lock()

    def record(
        self,
        u: int,
        v: int,
        verdict,
        elapsed_ns: int,
        method: str,
        cut: str | None = None,
        trace_id: int | None = None,
        shard: int | None = None,
    ) -> SlowQueryRecord | None:
        """Offer one query; returns the stored record or ``None``.

        Threshold mode drops fast queries; reservoir mode keeps a uniform
        sample of everything offered.  Thread-safe — the cluster's worker
        dispatches and a scrape can race this.
        """
        with self._lock:
            self.observed += 1
            seq = self.observed
            if self.mode == "threshold":
                if elapsed_ns < self.threshold_ns:
                    return None
                rec = SlowQueryRecord(
                    seq, method, u, v, verdict, elapsed_ns, cut,
                    trace_id=trace_id, shard=shard,
                )
                self._records.append(rec)
                return rec
            # Reservoir (algorithm R): the first `capacity` fill the
            # buffer; afterwards each new query replaces a uniformly
            # random slot with probability capacity/seq.
            rec = SlowQueryRecord(
                seq, method, u, v, verdict, elapsed_ns, cut,
                trace_id=trace_id, shard=shard,
            )
            if len(self._records) < self.capacity:
                self._records.append(rec)
                return rec
            slot = self._rng.randrange(seq)
            if slot < self.capacity:
                self._records[slot] = rec
                return rec
            return None

    def records(self) -> list[SlowQueryRecord]:
        """Retained records, insertion order (threshold) or slot order."""
        with self._lock:
            return list(self._records)

    def slowest(self, limit: int = 10) -> list[SlowQueryRecord]:
        """The ``limit`` slowest retained records, slowest first."""
        return sorted(
            self.records(), key=lambda r: r.elapsed_ns, reverse=True
        )[:limit]

    def as_dicts(self) -> list[dict]:
        """Every retained record as a JSON-ready dict (the ``/slow`` body)."""
        return [rec.as_dict() for rec in self.records()]

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def __len__(self) -> int:
        return len(self._records)

    def __repr__(self) -> str:
        return (
            f"<SlowQueryLog mode={self.mode!r} {len(self)}/{self.capacity} "
            f"records, {self.observed} observed>"
        )
