"""The fault-tolerant multi-process shard service.

:class:`ShardService` is the real deployment that
:class:`repro.core.distributed.SimulatedCluster` simulates: the input
graph is condensed, partitioned into X-rank slabs (see
:mod:`repro.shard.plan`), and each slab is served by an actual forked
worker process owning its own FELINE index.  The coordinator keeps the
global FELINE coordinates (O(1) cuts), the SCARAB backbone routing
index, and a replica of the condensed DAG for degraded-mode fallback.

The headline is fault tolerance, not distribution:

* **Supervision.**  A supervisor thread heartbeats every worker and
  restarts dead or wedged ones; restarts re-fork from the coordinator's
  prebuilt plan, so failover is a fork, not an index rebuild.
* **Deadline propagation.**  A per-query deadline (from
  ``QueryBudget.deadline_s`` or ``ShardConfig.default_deadline_ms``)
  bounds every blocking step end-to-end — RPC waits, worker-side search
  budgets, the backbone gateway product — so an admitted query returns
  within its deadline, correct or honestly :data:`UNKNOWN`, even while
  workers are being murdered.
* **Failover.**  Shard RPCs are idempotent (pure functions of the
  immutable plan), so a failed dispatch is retried through
  :class:`~repro.resilience.retry.RetryPolicy` backoff with hedged
  re-dispatch to a freshly restarted worker (a wedged-but-alive worker
  is SIGKILLed first — fencing — since a stale answer must never race a
  retried one; sequence matching guards the wire besides).
* **Degradation.**  On unrecoverable shard loss the query degrades per
  ``ShardConfig.on_shard_loss``: a node-bounded bidirectional BFS on
  the coordinator's DAG replica (``"fallback"``), or an immediate
  :data:`UNKNOWN` (``"unknown"``).  Never a hang, never a wrong
  ``True``/``False``.

The service quacks like :class:`repro.Reachability` where it matters —
``reachable`` / ``reachable_many`` with an optional budget, ``graph``,
``stats`` — so :class:`repro.serve.ReachServer` serves it unchanged.
"""

from __future__ import annotations

import multiprocessing
import threading
from collections.abc import Iterable
from dataclasses import dataclass, field
from time import monotonic

from repro.exceptions import (
    InvalidVertexError,
    QueryBudgetExceeded,
    ReproError,
    WorkerError,
)
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.graph.traversal import bounded_bidirectional_reachable
from repro.obs.distributed import TelemetryMerger, ingest_aux
from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer, new_trace_id
from repro.obs.timing import elapsed_ns, now_ns
from repro.resilience import chaos
from repro.resilience.budget import UNKNOWN, QueryBudget
from repro.resilience.retry import RetryPolicy
from repro.shard.plan import ShardPlan, build_shard_plan
from repro.shard.rpc import WorkerChannel
from repro.shard.worker import worker_main

__all__ = ["ShardConfig", "ShardService", "ShardServiceStats", "ShardLostError"]

ON_SHARD_LOSS = ("fallback", "unknown")


class ShardLostError(ReproError):
    """A shard is unrecoverable for this query (halted, or every retry
    within the deadline failed); the caller degrades per policy."""

    def __init__(self, message: str, shard_id: int) -> None:
        super().__init__(message)
        self.shard_id = shard_id


class _DeadlineExceeded(Exception):
    """Internal: the per-query deadline ran out mid-protocol."""


@dataclass(frozen=True)
class ShardConfig:
    """Configuration of a :class:`ShardService`.

    Parameters
    ----------
    num_shards:
        Worker processes (clamped to the condensed vertex count).
    index_budget_bytes:
        FERRARI-style per-shard index budget: each shard builds the
        richest FELINE tier that fits (``None`` = unrestricted).
    observers:
        O'Reach-style supporting vertices per shard (``0`` = none);
        each worker's index gets an observer pre-pass built on its own
        slab, inherited copy-on-write through the fork (see
        :mod:`repro.perf.observers`).
    kernel:
        Search-kernel backend for every per-shard index and the
        coordinator's backbone index (``None`` = auto; see
        :mod:`repro.perf.kernels`).
    shared_pages:
        Move each shard index's read-only numpy pages into a
        :class:`~repro.perf.shm.SharedIndexPages` arena before the
        workers fork, so restarted workers re-map one physical copy
        instead of COW-duplicating (graceful COW fallback when shared
        memory is unavailable).
    rpc_timeout_s:
        Per-attempt RPC cap; the effective cap is the minimum of this
        and the query's remaining deadline.
    default_deadline_ms:
        Deadline applied to queries that carry no budget (``None`` =
        only ``rpc_timeout_s`` bounds each step).
    on_shard_loss:
        ``"fallback"`` (bounded biBFS on the coordinator's DAG replica)
        or ``"unknown"`` (degrade immediately on the wire).
    fallback_nodes:
        Node cap of the degraded-mode bidirectional BFS.
    max_attempts, retry_base_delay_s, retry_seed:
        The :class:`~repro.resilience.retry.RetryPolicy` curve for
        failed shard RPCs (backoff is recorded, not slept, by default —
        restart latency already paces the retries).
    supervise, heartbeat_interval_s, heartbeat_timeout_s,
    heartbeat_miss_limit:
        The supervisor loop: probe cadence, per-probe timeout, and how
        many consecutive missed heartbeats declare a worker wedged
        (it is then SIGKILLed and restarted).
    """

    num_shards: int = 2
    index_budget_bytes: int | None = None
    observers: int = 0
    kernel: str | None = None
    shared_pages: bool = True
    rpc_timeout_s: float = 1.0
    default_deadline_ms: float | None = None
    on_shard_loss: str = "fallback"
    fallback_nodes: int = 4096
    max_attempts: int = 3
    retry_base_delay_s: float = 0.002
    retry_seed: int = 0
    supervise: bool = True
    heartbeat_interval_s: float = 0.25
    heartbeat_timeout_s: float = 0.5
    heartbeat_miss_limit: int = 2

    def __post_init__(self) -> None:
        if self.num_shards < 1:
            raise ReproError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.observers < 0:
            raise ReproError(
                f"observers must be >= 0, got {self.observers}"
            )
        if self.kernel is not None:
            from repro.perf.kernels import resolve_backend

            resolve_backend(self.kernel)  # fail at config time, not fork time
        if self.rpc_timeout_s <= 0:
            raise ReproError(
                f"rpc_timeout_s must be > 0, got {self.rpc_timeout_s}"
            )
        if self.default_deadline_ms is not None and self.default_deadline_ms <= 0:
            raise ReproError(
                f"default_deadline_ms must be > 0, got {self.default_deadline_ms}"
            )
        if self.on_shard_loss not in ON_SHARD_LOSS:
            raise ReproError(
                f"unknown on_shard_loss {self.on_shard_loss!r}; "
                f"use one of {', '.join(ON_SHARD_LOSS)}"
            )
        if self.fallback_nodes < 1:
            raise ReproError(
                f"fallback_nodes must be >= 1, got {self.fallback_nodes}"
            )
        if self.max_attempts < 1:
            raise ReproError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.heartbeat_miss_limit < 1:
            raise ReproError(
                f"heartbeat_miss_limit must be >= 1, "
                f"got {self.heartbeat_miss_limit}"
            )


@dataclass
class ShardServiceStats:
    """Coordinator-side counters (mirrored to obs metrics when enabled).

    ``failover_latencies_s`` keeps the most recent failover recovery
    times (failure detection → successful retried dispatch), the number
    the chaos drill reports percentiles over.
    """

    queries: int = 0
    local_queries: int = 0
    cross_queries: int = 0
    negative_cuts: int = 0
    positive_cuts: int = 0
    rpc_failures: int = 0
    failovers: int = 0
    restarts: int = 0
    heartbeat_misses: int = 0
    degraded_fallback: int = 0
    degraded_unknown: int = 0
    deadline_unknowns: int = 0
    unknowns: int = 0
    failover_latencies_s: list[float] = field(default_factory=list)

    _MAX_LATENCIES = 4096

    def record_failover(self, latency_s: float) -> None:
        self.failovers += 1
        if len(self.failover_latencies_s) < self._MAX_LATENCIES:
            self.failover_latencies_s.append(latency_s)

    def as_dict(self) -> dict:
        doc = {
            key: value
            for key, value in self.__dict__.items()
            if not key.startswith("_") and key != "failover_latencies_s"
        }
        doc["failover_latencies_s"] = list(self.failover_latencies_s)
        return doc


class ShardService:
    """Serve reachability queries from supervised shard worker processes.

    Examples
    --------
    >>> from repro.graph.generators import random_dag
    >>> service = ShardService(random_dag(300, avg_degree=2.0, seed=3),
    ...                        ShardConfig(num_shards=2, supervise=False))
    >>> with service:
    ...     answer = service.reachable(0, 299)
    >>> answer in (True, False)
    True
    """

    #: Cap on one ``local_many`` sub-batch: bounds a single RPC frame
    #: and the worker's time-to-first-reply under a deadline envelope.
    _LOCAL_MANY_CHUNK = 1024

    def __init__(
        self,
        graph: DiGraph | Iterable[tuple[int, int]],
        config: ShardConfig | None = None,
    ) -> None:
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ReproError(
                "ShardService needs the fork start method (workers inherit "
                "the shard plan copy-on-write); this platform has none"
            )
        if not isinstance(graph, DiGraph):
            graph = DiGraph.from_edges(graph)
        self.graph = graph
        self.config = config if config is not None else ShardConfig()
        self.condensation = condense(graph)
        self.plan: ShardPlan = build_shard_plan(
            self.condensation.dag,
            self.config.num_shards,
            self.config.index_budget_bytes,
            observers=self.config.observers,
        )
        if self.config.kernel is not None:
            self.plan.backbone_index.set_kernel(self.config.kernel)
        for state in self.plan.shards:
            if self.config.kernel is not None:
                state.index.set_kernel(self.config.kernel)
            if self.config.shared_pages:
                # Pre-fork, so every worker (including restarts) maps the
                # one shared physical copy of the read-only index pages.
                state.index.enable_shared_pages()
        self.stats = ShardServiceStats()
        self.retry_policy = RetryPolicy(
            max_attempts=self.config.max_attempts,
            base_delay_s=self.config.retry_base_delay_s,
            seed=self.config.retry_seed,
        )
        self._ctx = multiprocessing.get_context("fork")
        self._channels: list[WorkerChannel | None] = [None] * self.num_shards
        self._restart_locks = [threading.Lock() for _ in range(self.num_shards)]
        self._lost: set[int] = set()
        self._closed = False
        self._hb_misses = [0] * self.num_shards
        self.slow_log = None
        # Worker telemetry lands here; the per-shard sinks are prebuilt
        # so the RPC hot path allocates no closure per call.
        self._telemetry = TelemetryMerger()
        self._aux_sinks = [
            (lambda aux, _sid=shard_id: self._ingest_aux(_sid, aux))
            for shard_id in range(self.num_shards)
        ]
        for shard_id in range(self.num_shards):
            self._channels[shard_id] = self._spawn(shard_id)
        self._stop_supervisor = threading.Event()
        self._supervisor: threading.Thread | None = None
        if self.config.supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="repro-shard-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    # -- basics ---------------------------------------------------------
    @property
    def num_shards(self) -> int:
        return self.plan.num_shards

    def worker_pids(self) -> list[int | None]:
        """Current worker pids (``None`` for halted shards) — the chaos
        suite's target list."""
        return [
            channel.pid if channel is not None and channel.alive() else None
            for channel in self._channels
        ]

    def alive_workers(self) -> int:
        return sum(1 for pid in self.worker_pids() if pid is not None)

    def __repr__(self) -> str:
        return (
            f"<ShardService shards={self.num_shards} "
            f"alive={self.alive_workers()} "
            f"|V|={self.graph.num_vertices} |E|={self.graph.num_edges}>"
        )

    def attach_slow_log(self, log) -> object:
        """Attach a :class:`~repro.obs.slowlog.SlowQueryLog`; returns it.

        Routed queries record per-pair entries carrying their
        ``trace_id`` (when tracing is on) and the owning shard;
        ``local_many`` sub-batches record each pair with the sub-batch
        RPC's wall time (the per-pair cost is not observable
        coordinator-side — the entry identifies the slow *batch*).
        """
        self.slow_log = log
        return log

    def _ingest_aux(self, shard_id: int, aux) -> None:
        """Fold one worker piggyback envelope in; never raises."""
        ingest_aux(
            aux,
            merger=self._telemetry,
            source=shard_id,
            shard=str(shard_id),
        )

    # -- worker lifecycle ----------------------------------------------
    def _spawn(self, shard_id: int) -> WorkerChannel:
        # A fresh worker starts from a zeroed registry: drop the merger's
        # baseline so its first snapshot is applied whole.
        self._telemetry.reset(shard_id)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=worker_main,
            args=(self.plan.shards[shard_id], child_conn),
            name=f"repro-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()  # the parent's copy of the child end
        return WorkerChannel(parent_conn, process, shard_id)

    def _count(self, name: str, help: str, **labels) -> None:
        registry = get_registry()
        if registry.enabled:
            registry.counter(name, help=help, **labels).inc()

    def _replace_worker(
        self, shard_id: int, failed: WorkerChannel | None, reason: str
    ) -> WorkerChannel | None:
        """Restart the worker for ``shard_id`` (fencing a live one with
        SIGKILL first); returns the current channel, ``None`` if halted.

        Passing the channel the caller saw fail makes the replacement
        idempotent under races: if another thread already swapped in a
        fresh worker, that one is returned untouched.
        """
        with self._restart_locks[shard_id]:
            if shard_id in self._lost or self._closed:
                return None
            current = self._channels[shard_id]
            if failed is not None and current is not failed:
                return current  # somebody else already failed it over
            if current is not None:
                if current.process.is_alive() and current.pid is not None:
                    chaos.kill_process(current.pid)  # fence the old worker
                current.process.join(timeout=2.0)
                current.close()
            channel = self._spawn(shard_id)
            self._channels[shard_id] = channel
            self._hb_misses[shard_id] = 0
            self.stats.restarts += 1
            self._count(
                "repro_shard_worker_restarts_total",
                "Shard worker processes restarted by the supervisor or a "
                "failover, by reason.",
                shard=str(shard_id),
                reason=reason,
            )
            return channel

    def halt_worker(self, shard_id: int) -> None:
        """Kill a shard *permanently* (no restarts): unrecoverable loss.

        Queries touching the shard degrade per ``on_shard_loss`` until
        :meth:`revive_worker`.  This is the degraded-mode drill switch.
        """
        with self._restart_locks[shard_id]:
            self._lost.add(shard_id)
            channel = self._channels[shard_id]
            self._channels[shard_id] = None
        if channel is not None:
            if channel.process.is_alive() and channel.pid is not None:
                chaos.kill_process(channel.pid)
            channel.process.join(timeout=2.0)
            channel.close()

    def revive_worker(self, shard_id: int) -> None:
        """Bring a halted shard back (fresh fork of its prebuilt state)."""
        with self._restart_locks[shard_id]:
            if shard_id not in self._lost:
                return
            self._lost.discard(shard_id)
            self._channels[shard_id] = self._spawn(shard_id)
            self._hb_misses[shard_id] = 0
            self.stats.restarts += 1

    def _supervise(self) -> None:
        config = self.config
        while not self._stop_supervisor.wait(config.heartbeat_interval_s):
            if self._closed:
                return
            registry = get_registry()
            if registry.enabled:
                registry.gauge(
                    "repro_shard_workers_alive",
                    help="Shard workers currently alive.",
                ).set(self.alive_workers())
            for shard_id in range(self.num_shards):
                if self._closed:
                    return
                if shard_id in self._lost:
                    continue
                channel = self._channels[shard_id]
                if channel is None or not channel.process.is_alive():
                    self._replace_worker(shard_id, channel, reason="death")
                    continue
                try:
                    answer = channel.try_request(
                        "ping", None, config.heartbeat_timeout_s,
                        on_aux=self._aux_sinks[shard_id],
                    )
                except WorkerError:
                    answer = "miss"
                if answer is None:
                    continue  # channel busy serving a query: that's alive
                if answer == "pong":
                    self._hb_misses[shard_id] = 0
                    continue
                self._hb_misses[shard_id] += 1
                self.stats.heartbeat_misses += 1
                self._count(
                    "repro_shard_heartbeat_misses_total",
                    "Heartbeat probes that timed out or errored.",
                    shard=str(shard_id),
                )
                if self._hb_misses[shard_id] >= config.heartbeat_miss_limit:
                    self._replace_worker(shard_id, channel, reason="heartbeat")

    # -- RPC with failover ---------------------------------------------
    @staticmethod
    def _remaining_s(deadline_at: float | None) -> float | None:
        if deadline_at is None:
            return None
        return deadline_at - monotonic()

    def _rpc(
        self,
        shard_id: int,
        op: str,
        payload,
        deadline_at: float | None,
        timeout_s: float | None = None,
    ):
        """One idempotent shard RPC, retried with hedged re-dispatch.

        ``timeout_s`` overrides the per-attempt transport timeout
        (``ShardConfig.rpc_timeout_s``) — batched ops scale it with the
        sub-batch size so a legitimate long reply is not mistaken for a
        dead worker.  Raises :class:`ShardLostError` when the shard is
        halted or every attempt within the retry/deadline envelope
        failed, and :class:`_DeadlineExceeded` when the query's clock
        ran out.
        """
        policy = self.retry_policy
        first_failure: float | None = None
        tracer = get_tracer()
        for attempt in range(policy.max_attempts):
            if shard_id in self._lost:
                raise ShardLostError(
                    f"shard {shard_id} is halted", shard_id=shard_id
                )
            remaining = self._remaining_s(deadline_at)
            if remaining is not None and remaining <= 0:
                raise _DeadlineExceeded()
            channel = self._channels[shard_id]
            if channel is None or not channel.alive():
                channel = self._replace_worker(
                    shard_id, channel, reason="death"
                )
                if channel is None:
                    raise ShardLostError(
                        f"shard {shard_id} is halted", shard_id=shard_id
                    )
            timeout = (
                timeout_s if timeout_s is not None
                else self.config.rpc_timeout_s
            )
            if remaining is not None:
                timeout = min(timeout, remaining)
            try:
                if tracer.enabled:
                    with tracer.span(
                        "shard.rpc", shard=shard_id, op=op, attempt=attempt
                    ) as rpc_span:
                        result = channel.request(
                            op, payload, timeout,
                            trace_ctx=(rpc_span.trace_id, rpc_span.span_id),
                            on_aux=self._aux_sinks[shard_id],
                        )
                else:
                    result = channel.request(
                        op, payload, timeout,
                        on_aux=self._aux_sinks[shard_id],
                    )
            except WorkerError:
                self.stats.rpc_failures += 1
                self._count(
                    "repro_shard_rpc_total",
                    "Shard RPC attempts, by op and outcome.",
                    op=op, outcome="error",
                )
                if first_failure is None:
                    first_failure = monotonic()
                if attempt + 1 >= policy.max_attempts:
                    raise ShardLostError(
                        f"shard {shard_id}: {op} failed after "
                        f"{policy.max_attempts} attempts",
                        shard_id=shard_id,
                    ) from None
                # Hedged re-dispatch: fence whatever worker just failed
                # us (kill if wedged-alive) and retry on a fresh fork.
                policy.backoff(attempt)
                self._replace_worker(shard_id, channel, reason="failover")
                continue
            self._count(
                "repro_shard_rpc_total",
                "Shard RPC attempts, by op and outcome.",
                op=op, outcome="ok",
            )
            if first_failure is not None:
                latency = monotonic() - first_failure
                self.stats.record_failover(latency)
                self._count(
                    "repro_shard_failovers_total",
                    "Queries re-dispatched to a restarted worker.",
                    shard=str(shard_id),
                )
                registry = get_registry()
                if registry.enabled:
                    registry.histogram(
                        "repro_shard_failover_seconds",
                        help="Failure detection to successful retried "
                        "dispatch.",
                    ).observe(latency)
            return result
        raise ShardLostError(  # pragma: no cover - loop always returns/raises
            f"shard {shard_id}: retry loop exhausted", shard_id=shard_id
        )

    # -- the query protocol --------------------------------------------
    def _map_vertex(self, vertex: int) -> int:
        if vertex < 0 or vertex >= self.graph.num_vertices:
            raise InvalidVertexError(vertex, self.graph.num_vertices)
        return self.condensation.scc_of[vertex]

    def _degrade(self, cu: int, cv: int, deadline_at: float | None, mode: str):
        """Answer from the coordinator after shard loss or deadline."""
        self._count(
            "repro_shard_degraded_total",
            "Queries the shard tier could not answer normally, by mode.",
            mode=mode,
        )
        if mode == "deadline":
            self.stats.deadline_unknowns += 1
            self.stats.unknowns += 1
            return UNKNOWN
        if mode == "unknown":
            self.stats.degraded_unknown += 1
            self.stats.unknowns += 1
            return UNKNOWN
        # mode == "fallback": node-bounded biBFS on the DAG replica —
        # exact when it concludes, honestly unknown when the bound hits.
        self.stats.degraded_fallback += 1
        remaining = self._remaining_s(deadline_at)
        if remaining is not None and remaining <= 0:
            self.stats.deadline_unknowns += 1
            self.stats.unknowns += 1
            return UNKNOWN
        answer = bounded_bidirectional_reachable(
            self.plan.dag, cu, cv, self.config.fallback_nodes
        )
        if answer is None:
            self.stats.unknowns += 1
            return UNKNOWN
        return answer

    def _backbone_product(
        self,
        out_gateways,
        in_gateways,
        deadline_at: float | None,
    ):
        """``∃ b1 ∈ Out(u), b2 ∈ In(v): r*(b1, b2)`` on the coordinator.

        Deadline-aware: each base query is budgeted with the remaining
        time and the loop stops the moment the clock runs out.  A
        ``False`` is only definitive when *no* base query degraded.
        """
        index = self.plan.backbone_index
        any_unknown = False
        for b1 in out_gateways:
            for b2 in in_gateways:
                budget = None
                if deadline_at is not None:
                    remaining = deadline_at - monotonic()
                    if remaining <= 0:
                        raise _DeadlineExceeded()
                    budget = QueryBudget(
                        deadline_s=remaining, policy="unknown"
                    )
                answer = index.query(b1, b2, budget=budget)
                if answer is True:
                    return True
                if answer is UNKNOWN:
                    any_unknown = True
        return UNKNOWN if any_unknown else False

    def _cut_classify(self, cu: int, cv: int) -> bool | None:
        """Coordinator-side O(1) cuts; ``None`` means a shard must run.

        Shared by the scalar and batch paths so the grouped
        :meth:`query_many` counts cuts exactly like a per-pair loop.
        """
        stats = self.stats
        if cu == cv:
            return True
        coords = self.plan.coords
        if coords.x[cu] > coords.x[cv] or coords.y[cu] > coords.y[cv]:
            stats.negative_cuts += 1
            return False
        levels = coords.levels
        if levels is not None and levels[cu] >= levels[cv]:
            stats.negative_cuts += 1
            return False
        intervals = coords.tree_intervals
        if intervals is not None and intervals.contains(cu, cv):
            stats.positive_cuts += 1
            return True
        return None

    def _query_condensed(self, cu: int, cv: int, deadline_at: float | None):
        stats = self.stats
        verdict = self._cut_classify(cu, cv)
        if verdict is not None:
            return verdict

        owner_u = self.plan.owner_of[cu]
        owner_v = self.plan.owner_of[cv]
        try:
            if owner_u == owner_v:
                stats.local_queries += 1
                remaining = self._remaining_s(deadline_at)
                if remaining is not None and remaining <= 0:
                    raise _DeadlineExceeded()
                budget_ms = (
                    remaining * 1000.0 if remaining is not None else None
                )
                answer = self._rpc(
                    owner_u, "local", (cu, cv, budget_ms), deadline_at
                )
                if answer is None:
                    return self._degrade(cu, cv, deadline_at, "deadline")
                return answer

            stats.cross_queries += 1
            direct, out_gateways = self._rpc(
                owner_u, "route_out", (cu, cv), deadline_at
            )
            if direct:
                return True
            if not out_gateways:
                return False
            in_gateways = self._rpc(
                owner_v, "route_in", (cv,), deadline_at
            )
            if not in_gateways:
                return False
            answer = self._backbone_product(
                out_gateways, in_gateways, deadline_at
            )
            if answer is UNKNOWN:
                return self._degrade(cu, cv, deadline_at, "deadline")
            return answer
        except _DeadlineExceeded:
            return self._degrade(cu, cv, deadline_at, "deadline")
        except ShardLostError:
            return self._degrade(
                cu, cv, deadline_at, self.config.on_shard_loss
            )

    def query(self, u: int, v: int, deadline_ms: float | None = None):
        """Answer ``r(u, v)`` through the shard protocol (ternary).

        ``deadline_ms`` (default ``ShardConfig.default_deadline_ms``)
        bounds the whole query; on expiry the answer is
        :data:`UNKNOWN`, never a guess and never a hang.
        """
        if self._closed:
            raise ReproError("ShardService is closed")
        cu, cv = self._map_vertex(u), self._map_vertex(v)
        self.stats.queries += 1
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        deadline_at = (
            monotonic() + deadline_ms / 1000.0
            if deadline_ms is not None
            else None
        )
        tracer = get_tracer()
        slow = self.slow_log
        if not tracer.enabled and slow is None:
            return self._query_condensed(cu, cv, deadline_at)
        span = (
            tracer.span("shard.query", u=u, v=v, shards=self.num_shards)
            if tracer.enabled
            else None
        )
        if span is not None:
            if span.trace_id is None:
                # No ambient trace (direct service use, not behind the
                # HTTP edge): this query is its own request edge.
                span.trace_id = new_trace_id()
            span.__enter__()
        start = now_ns() if slow is not None else 0
        try:
            answer = self._query_condensed(cu, cv, deadline_at)
            if span is not None:
                span.set_attribute(
                    "verdict", "unknown" if answer is UNKNOWN else answer
                )
            if slow is not None:
                owner_u = self.plan.owner_of[cu]
                owner_v = self.plan.owner_of[cv]
                slow.record(
                    u, v, answer, elapsed_ns(start), "shard",
                    trace_id=span.trace_id if span is not None else None,
                    shard=int(owner_u) if owner_u == owner_v else None,
                )
            return answer
        finally:
            if span is not None:
                span.__exit__(None, None, None)

    def _local_many(
        self,
        shard_id: int,
        idxs: list[int],
        condensed: list[tuple[int, int]],
        deadline_ms: float | None,
        answers: list,
        pairs=None,
        trace_id: int | None = None,
    ) -> None:
        """One ``local_many`` RPC for a same-shard sub-batch.

        ``deadline_ms`` is the *per-pair* allowance (the worker applies
        it to each pair, like a run of ``local`` calls); the RPC's own
        envelope and transport timeout scale with the sub-batch size so
        a full batch is never cheated out of its per-pair budgets.
        Fills ``answers`` in place at ``idxs``; any failure degrades
        every pair of the sub-batch, exactly like the scalar path.
        With a slow log attached (and ``pairs`` given) every pair is
        recorded with the sub-batch RPC's wall time — the per-pair cost
        is not observable coordinator-side, so the entry identifies the
        slow *batch* — tagged with the owning shard and ``trace_id``.
        """
        self.stats.local_queries += len(idxs)
        chunk_pairs = [condensed[i] for i in idxs]
        deadline_at = (
            monotonic() + (deadline_ms / 1000.0) * len(idxs)
            if deadline_ms is not None
            else None
        )
        slow = self.slow_log if pairs is not None else None
        start = now_ns() if slow is not None else 0
        try:
            results = self._rpc(
                shard_id,
                "local_many",
                (chunk_pairs, deadline_ms),
                deadline_at,
                timeout_s=self.config.rpc_timeout_s * len(idxs),
            )
            if not isinstance(results, list) or len(results) != len(idxs):
                raise ShardLostError(
                    f"shard {shard_id}: malformed local_many reply",
                    shard_id=shard_id,
                )
        except _DeadlineExceeded:
            for i in idxs:
                cu, cv = condensed[i]
                answers[i] = self._degrade(cu, cv, deadline_at, "deadline")
        except ShardLostError:
            mode = self.config.on_shard_loss
            for i in idxs:
                cu, cv = condensed[i]
                answers[i] = self._degrade(cu, cv, deadline_at, mode)
        else:
            for i, result in zip(idxs, results):
                if result is None:
                    cu, cv = condensed[i]
                    answers[i] = self._degrade(cu, cv, deadline_at, "deadline")
                else:
                    answers[i] = result
        if slow is not None:
            elapsed = elapsed_ns(start)
            for i in idxs:
                u, v = pairs[i]
                slow.record(
                    u, v, answers[i], elapsed, "shard.local_many",
                    trace_id=trace_id, shard=shard_id,
                )

    def query_many(self, pairs, deadline_ms: float | None = None) -> list:
        """Answer a batch of ``(u, v)`` pairs through the shard protocol.

        The coordinator cuts classify every pair first; surviving
        same-shard pairs are grouped per owning shard and shipped as
        chunked ``local_many`` sub-batches — **one RPC per (shard,
        sub-batch)** instead of one per pair — while cross-shard pairs
        keep the per-pair gateway-product path.  Answers, degradation
        and deadline semantics are identical to
        ``[self.query(u, v, deadline_ms) for u, v in pairs]``
        (``deadline_ms`` is per pair, as in :meth:`query`).
        """
        if self._closed:
            raise ReproError("ShardService is closed")
        pairs = list(pairs)
        if not pairs:
            return []
        if deadline_ms is None:
            deadline_ms = self.config.default_deadline_ms
        condensed = [
            (self._map_vertex(u), self._map_vertex(v)) for u, v in pairs
        ]
        self.stats.queries += len(pairs)
        answers: list = [None] * len(pairs)
        groups: dict[int, list[int]] = {}
        cross: list[int] = []
        for i, (cu, cv) in enumerate(condensed):
            verdict = self._cut_classify(cu, cv)
            if verdict is not None:
                answers[i] = verdict
                continue
            owner_u = self.plan.owner_of[cu]
            if owner_u == self.plan.owner_of[cv]:
                groups.setdefault(int(owner_u), []).append(i)
            else:
                cross.append(i)
        tracer = get_tracer()
        span = (
            tracer.span(
                "shard.query_many", size=len(pairs), shards=self.num_shards
            )
            if tracer.enabled
            else None
        )
        if span is not None:
            if span.trace_id is None:
                # Batch equivalent of the scalar edge-minting above.
                span.trace_id = new_trace_id()
            span.__enter__()
        batch_trace = span.trace_id if span is not None else None
        slow = self.slow_log
        try:
            chunk = self._LOCAL_MANY_CHUNK
            for shard_id in sorted(groups):
                idxs = groups[shard_id]
                for start in range(0, len(idxs), chunk):
                    self._local_many(
                        shard_id,
                        idxs[start:start + chunk],
                        condensed,
                        deadline_ms,
                        answers,
                        pairs=pairs,
                        trace_id=batch_trace,
                    )
            for i in cross:
                cu, cv = condensed[i]
                deadline_at = (
                    monotonic() + deadline_ms / 1000.0
                    if deadline_ms is not None
                    else None
                )
                if slow is not None:
                    pair_start = now_ns()
                answers[i] = self._query_condensed(cu, cv, deadline_at)
                if slow is not None:
                    u, v = pairs[i]
                    slow.record(
                        u, v, answers[i], elapsed_ns(pair_start), "shard",
                        trace_id=batch_trace,
                    )
        finally:
            if span is not None:
                span.__exit__(None, None, None)
        return answers

    # -- facade-compatible surface (ReachServer's oracle contract) ------
    def reachable(self, u: int, v: int, budget: QueryBudget | None = None):
        """Budget-compatible alias: ``budget.deadline_s`` propagates as
        the query deadline (the shard tier's only budget dimension —
        ``max_steps`` is a per-search knob the workers own locally).

        With ``policy="raise"`` a degraded answer raises
        :class:`~repro.exceptions.QueryBudgetExceeded`, matching the
        single-process budget contract.
        """
        deadline_ms = None
        if budget is not None and budget.deadline_s is not None:
            deadline_ms = budget.deadline_s * 1000.0
        answer = self.query(u, v, deadline_ms=deadline_ms)
        if answer is UNKNOWN and budget is not None and budget.policy == "raise":
            raise QueryBudgetExceeded(
                f"shard query ({u}, {v}) degraded to UNKNOWN within its "
                "deadline",
                resource="deadline",
            )
        return answer

    def reachable_many(self, pairs, budget: QueryBudget | None = None) -> list:
        """A batch of queries, each under its own deadline envelope.

        Routes through :meth:`query_many`, so same-shard pairs travel
        as grouped ``local_many`` sub-batches instead of one RPC per
        pair; answers and budget semantics match
        ``[self.reachable(u, v, budget=budget) for u, v in pairs]`` —
        with ``policy="raise"`` the first degraded pair (in batch
        order) raises :class:`~repro.exceptions.QueryBudgetExceeded`.
        """
        pairs = list(pairs)
        deadline_ms = None
        if budget is not None and budget.deadline_s is not None:
            deadline_ms = budget.deadline_s * 1000.0
        answers = self.query_many(pairs, deadline_ms=deadline_ms)
        if budget is not None and budget.policy == "raise":
            for (u, v), answer in zip(pairs, answers):
                if answer is UNKNOWN:
                    raise QueryBudgetExceeded(
                        f"shard query ({u}, {v}) degraded to UNKNOWN "
                        "within its deadline",
                        resource="deadline",
                    )
        return answers

    # -- shutdown -------------------------------------------------------
    def close(self) -> None:
        """Stop the supervisor and every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        self._stop_supervisor.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
        for shard_id, channel in enumerate(self._channels):
            if channel is None:
                continue
            try:
                channel.request("stop", None, timeout_s=0.5)
            except WorkerError:
                pass
            if channel.process.is_alive() and channel.pid is not None:
                chaos.kill_process(channel.pid)
            channel.process.join(timeout=2.0)
            channel.close()
            self._channels[shard_id] = None
        for state in self.plan.shards:
            state.index.close_shared_pages()

    def __enter__(self) -> "ShardService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
