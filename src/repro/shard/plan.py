"""Shard planning: partition a condensed DAG for the shard service.

The plan is built once on the coordinator, *before* any worker process
is forked, so a restarted worker re-inherits exactly the same structures
through copy-on-write memory — failover never rebuilds an index.

Partitioning is by contiguous ``X``-rank slabs of the global FELINE
drawing, and that choice carries the correctness of the whole service:

* ``X`` is a topological order, so every vertex on a path ``u ⇝ v``
  satisfies ``x(u) < x(w) < x(v)``.  When ``u`` and ``v`` fall in the
  same slab (a contiguous X range), **every** vertex of every connecting
  path falls in that slab too.  The slab's induced subgraph therefore
  preserves reachability exactly, and a per-shard FELINE index over it
  answers same-shard queries with no cross-shard traffic at all.
* Cross-shard pairs route through the SCARAB backbone held by the
  coordinator: the owner of ``u`` reports ``Out(u) = ({u} ∪ N⁺(u)) ∩ B``
  (and checks the direct edge), the owner of ``v`` reports
  ``In(v) = ({v} ∪ N⁻(v)) ∩ B``, and the coordinator answers the
  gateway product on its backbone base index — the SCARAB ε = 2 cover
  property makes this exact (see :mod:`repro.scarab.backbone`).

Per-shard index budgets follow FERRARI's size-restricted spirit: each
shard's FELINE index is built at the richest tier (coordinates + level
filter + positive-cut tree intervals) that fits ``index_budget_bytes``,
degrading to cheaper tiers (drop intervals, then levels) instead of
blowing the budget.  Memory per shard is a dial, not an accident.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field

from repro.baselines.base import ReachabilityIndex
from repro.core.index import FelineCoordinates, build_feline_index
from repro.core.query import FelineIndex
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.graph.subgraph import SubgraphMapping, induced_subgraph
from repro.scarab.backbone import Backbone, extract_backbone

__all__ = ["ShardState", "ShardPlan", "build_shard_plan", "INDEX_TIERS"]

#: Index tiers in descending richness; the budget walks down this list.
INDEX_TIERS = ("full", "levels", "coords")


def _build_tier_index(graph: DiGraph, tier: str) -> FelineIndex:
    if tier == "full":
        return FelineIndex(graph).build()
    if tier == "levels":
        return FelineIndex(graph, use_positive_cut=False).build()
    if tier == "coords":
        return FelineIndex(
            graph, use_positive_cut=False, use_level_filter=False
        ).build()
    raise ReproError(f"unknown index tier {tier!r}; use one of {INDEX_TIERS}")


@dataclass
class ShardState:
    """Everything one worker process needs to serve its partition.

    Attributes
    ----------
    shard_id:
        The shard's position in the plan.
    owned:
        Original (condensed-DAG) vertex ids this shard owns.
    sub:
        The induced slab subgraph plus the id translation both ways.
    index:
        The shard's own FELINE index over ``sub.graph``, built at
        ``index_tier`` to respect the plan's byte budget.
    index_tier:
        ``"full"`` / ``"levels"`` / ``"coords"`` — which structures the
        budget allowed.
    index_bytes:
        Measured size of the index actually built.
    out_gateways / in_gateways:
        ``u -> tuple of backbone ids`` for ``({u} ∪ N⁺(u)) ∩ B`` (resp.
        the predecessor side) — the shard's half of a SCARAB gateway
        product.
    out_neighbors:
        ``u -> frozenset of successors`` for the direct-edge local hit.
    """

    shard_id: int
    owned: list[int]
    sub: SubgraphMapping
    index: ReachabilityIndex
    index_tier: str
    index_bytes: int
    out_gateways: dict[int, tuple[int, ...]] = field(default_factory=dict)
    in_gateways: dict[int, tuple[int, ...]] = field(default_factory=dict)
    out_neighbors: dict[int, frozenset] = field(default_factory=dict)

    def owns(self, v: int) -> bool:
        return self.sub.local_of[v] != -1


@dataclass
class ShardPlan:
    """The coordinator's sharding decision, built once before forking.

    Attributes
    ----------
    dag:
        The condensed DAG (the coordinator's replica — also the
        degraded-mode fallback search target).
    coords:
        Global FELINE coordinates: O(1) negative/positive cuts on the
        coordinator, and the X order that defines the slabs.
    owner_of:
        ``owner_of[v]`` is the shard owning condensed vertex ``v``.
    shards:
        One :class:`ShardState` per shard.
    backbone:
        The SCARAB backbone of ``dag``; ``backbone_index`` is the
        coordinator's routing index over ``backbone.graph``.
    """

    dag: DiGraph
    coords: FelineCoordinates
    owner_of: array
    shards: list[ShardState]
    backbone: Backbone
    backbone_index: ReachabilityIndex

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    def shard_of(self, v: int) -> int:
        """The shard owning condensed vertex ``v``."""
        return self.owner_of[v]

    def shard_sizes(self) -> list[int]:
        """Vertices per shard (load-balance observability)."""
        return [len(shard.owned) for shard in self.shards]

    def index_report(self) -> list[dict]:
        """Per-shard index budget outcome, JSON-safe."""
        return [
            {
                "shard": shard.shard_id,
                "vertices": len(shard.owned),
                "tier": shard.index_tier,
                "index_bytes": shard.index_bytes,
            }
            for shard in self.shards
        ]


def _budgeted_index(
    graph: DiGraph, budget_bytes: int | None
) -> tuple[ReachabilityIndex, str, int]:
    """The richest FELINE tier fitting ``budget_bytes`` (measured, not
    estimated); the cheapest tier is used even when it still exceeds the
    budget — a shard must always be able to answer."""
    last = None
    for tier in INDEX_TIERS:
        index = _build_tier_index(graph, tier)
        size = index.index_size_bytes()
        last = (index, tier, size)
        if budget_bytes is None or size <= budget_bytes:
            return last
    return last


def build_shard_plan(
    dag: DiGraph,
    num_shards: int,
    index_budget_bytes: int | None = None,
    observers: int = 0,
) -> ShardPlan:
    """Partition ``dag`` into ``num_shards`` X-rank slabs with indexes.

    With ``observers >= 1`` every per-shard index gets its own
    :class:`~repro.perf.ObserverLayer` (built on the shard's subgraph)
    attached *before* the workers fork, so the batched ``local_many``
    path inherits the observer pre-pass copy-on-write.

    Raises :class:`~repro.exceptions.ReproError` for ``num_shards < 1``;
    the shard count is clamped to the vertex count so no shard is empty
    (except on the empty graph, which keeps one trivial shard).
    """
    if num_shards < 1:
        raise ReproError(f"num_shards must be >= 1, got {num_shards}")
    n = dag.num_vertices
    coords = build_feline_index(dag)
    effective = min(num_shards, n) if n else 1

    per_shard = max(1, -(-n // effective))  # ceil division
    owner_of = array("l", [0] * n)
    by_shard: list[list[int]] = [[] for _ in range(effective)]
    x = coords.x
    for v in range(n):
        shard = min(x[v] // per_shard, effective - 1)
        owner_of[v] = shard
        by_shard[shard].append(v)

    backbone = extract_backbone(dag)
    backbone_index = FelineIndex(backbone.graph).build()
    backbone_id = backbone.backbone_id

    shards: list[ShardState] = []
    for shard_id in range(effective):
        owned = by_shard[shard_id]
        sub = induced_subgraph(dag, owned, name=f"shard{shard_id}")
        index, tier, size = _budgeted_index(sub.graph, index_budget_bytes)
        if observers:
            from repro.perf.observers import build_observers

            index.attach_observers(build_observers(sub.graph, k=observers))
            size += index.observers.memory_bytes()
        state = ShardState(
            shard_id=shard_id,
            owned=owned,
            sub=sub,
            index=index,
            index_tier=tier,
            index_bytes=size,
        )
        for u in owned:
            succ = dag.successors(u)
            out = [backbone_id[u]] if backbone_id[u] != -1 else []
            out.extend(backbone_id[w] for w in succ if backbone_id[w] != -1)
            state.out_gateways[u] = tuple(out)
            state.out_neighbors[u] = frozenset(succ)
            inn = [backbone_id[u]] if backbone_id[u] != -1 else []
            inn.extend(
                backbone_id[w]
                for w in dag.predecessors(u)
                if backbone_id[w] != -1
            )
            state.in_gateways[u] = tuple(inn)
        shards.append(state)

    return ShardPlan(
        dag=dag,
        coords=coords,
        owner_of=owner_of,
        shards=shards,
        backbone=backbone,
        backbone_index=backbone_index,
    )
