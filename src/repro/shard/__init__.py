"""repro.shard — the fault-tolerant multi-process shard deployment.

Where :class:`repro.core.distributed.SimulatedCluster` *models* a FELINE
cluster in one process, this package *runs* one: forked worker processes
each own an X-slab partition of the condensed DAG with their own
(budgeted) FELINE index, and a coordinator routes cross-shard queries
through the SCARAB backbone, supervises workers with heartbeats,
propagates per-query deadlines end-to-end, fails over dead or wedged
workers by re-forking from the prebuilt plan, and degrades to a bounded
coordinator-side search (or an honest :data:`~repro.resilience.UNKNOWN`)
on unrecoverable shard loss.  Never a hang, never a wrong boolean.

Layout
------
* :mod:`repro.shard.plan` — partitioning + per-shard index budgets.
* :mod:`repro.shard.rpc` — the pipe protocol (sequence-matched,
  deadline-bounded, murder-aware).
* :mod:`repro.shard.worker` — the worker process loop (pure RPCs).
* :mod:`repro.shard.service` — :class:`ShardService`: supervision,
  failover, degradation, the budget-compatible query surface.
* :mod:`repro.shard.drill` — :func:`chaos_drill`, the kill-based suite
  behind ``repro chaos-drill`` and ``BENCH_pr7.json``.
"""

from repro.shard.drill import chaos_drill
from repro.shard.plan import INDEX_TIERS, ShardPlan, ShardState, build_shard_plan
from repro.shard.rpc import WorkerChannel
from repro.shard.service import (
    ShardConfig,
    ShardLostError,
    ShardService,
    ShardServiceStats,
)

__all__ = [
    "ShardService",
    "ShardConfig",
    "ShardServiceStats",
    "ShardLostError",
    "ShardPlan",
    "ShardState",
    "build_shard_plan",
    "INDEX_TIERS",
    "WorkerChannel",
    "chaos_drill",
]
