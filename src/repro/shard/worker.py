"""The shard worker process: serve one partition, answer pure RPCs.

A worker is forked from the coordinator *after* the shard plan is built,
so its :class:`~repro.shard.plan.ShardState` (slab subgraph, budgeted
FELINE index, gateway tables) arrives through copy-on-write memory with
zero serialization — exactly the :class:`~repro.perf.pool.SearchPool`
trick, applied to a long-lived serving process.  Because the state is
immutable, every RPC is a pure function and the coordinator may freely
retry or re-dispatch one to a *restarted* worker.

Operations:

* ``ping`` — liveness probe for the supervisor.
* ``local (u, v, budget_ms)`` — same-shard query answered by the
  shard's own FELINE index (exact: the slab is closed under paths, see
  :mod:`repro.shard.plan`), deadline-guarded when ``budget_ms`` is set;
  answers ``True`` / ``False`` / ``None`` (= UNKNOWN on the wire).
* ``local_many (pairs, budget_ms)`` — a whole same-shard sub-batch in
  one round trip, routed through the index's vectorized
  ``query_many``; ``budget_ms`` applies *per pair* (the same contract
  as ``local``), and the answer is an aligned list of
  ``True`` / ``False`` / ``None``.
* ``route_out (u, v)`` — the direct-edge check plus
  ``Out(u) = ({u} ∪ N⁺(u)) ∩ B`` for the coordinator's gateway product.
* ``route_in (v,)`` — the ``In(v)`` half.
* ``stop`` — acknowledge and exit cleanly.

Chaos hook points (inherited through fork, so tests install them on the
coordinator *before* the service starts):

* ``shard.worker.request`` — fires on receipt; a raising hook turns
  into an error response (the coordinator sees a transient failure).
* ``shard.worker.respond`` — fires before the reply is sent; raising
  :class:`~repro.resilience.chaos.DropResponse` swallows the reply
  (lost message) and :class:`~repro.resilience.chaos.DuplicateResponse`
  sends it twice (duplicated message).
"""

from __future__ import annotations

from repro.resilience import chaos
from repro.resilience.budget import UNKNOWN, QueryBudget
from repro.shard.plan import ShardState

__all__ = ["worker_main"]


def _handle(state: ShardState, op: str, payload):
    if op == "ping":
        return "pong"
    if op == "local":
        u, v, budget_ms = payload
        lu, lv = state.sub.local_of[u], state.sub.local_of[v]
        if lu == -1 or lv == -1:
            raise ValueError(
                f"shard {state.shard_id} does not own pair ({u}, {v})"
            )
        budget = None
        if budget_ms is not None:
            if budget_ms <= 0:
                return None  # deadline already spent: honestly unknown
            budget = QueryBudget(
                deadline_s=budget_ms / 1000.0, policy="unknown"
            )
        answer = state.index.query(lu, lv, budget=budget)
        return None if answer is UNKNOWN else bool(answer)
    if op == "local_many":
        pairs, budget_ms = payload
        local_pairs = []
        for u, v in pairs:
            lu, lv = state.sub.local_of[u], state.sub.local_of[v]
            if lu == -1 or lv == -1:
                raise ValueError(
                    f"shard {state.shard_id} does not own pair ({u}, {v})"
                )
            local_pairs.append((lu, lv))
        budget = None
        if budget_ms is not None:
            if budget_ms <= 0:
                return [None] * len(local_pairs)
            # Per-pair allowance, exactly as a sequence of ``local``
            # calls: query_many creates a fresh guard for every pair.
            budget = QueryBudget(
                deadline_s=budget_ms / 1000.0, policy="unknown"
            )
        answers = state.index.query_many(local_pairs, budget=budget)
        return [None if a is UNKNOWN else bool(a) for a in answers]
    if op == "route_out":
        u, v = payload
        gateways = state.out_gateways.get(u)
        if gateways is None:
            raise ValueError(f"shard {state.shard_id} does not own {u}")
        direct = v in state.out_neighbors[u]
        return direct, gateways
    if op == "route_in":
        (v,) = payload
        gateways = state.in_gateways.get(v)
        if gateways is None:
            raise ValueError(f"shard {state.shard_id} does not own {v}")
        return gateways
    raise ValueError(f"unknown shard op {op!r}")


def worker_main(state: ShardState, conn) -> None:
    """Serve RPCs over ``conn`` until ``stop``, EOF, or a closed pipe.

    Runs as the target of a forked ``multiprocessing.Process``; never
    touches the metrics registry or tracer (those belong to the
    coordinator — a fork must not observe into an inherited registry
    copy that nobody will ever scrape).
    """
    shard_id = state.shard_id
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        try:
            seq, op, payload = message
        except (TypeError, ValueError):
            continue  # garbage frame: a well-behaved worker ignores it
        if op == "stop":
            try:
                conn.send((seq, "ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            chaos.fire(
                "shard.worker.request", shard_id=shard_id, op=op, seq=seq
            )
            result = _handle(state, op, payload)
        except Exception as exc:  # noqa: BLE001 — relayed as error frame
            response = (seq, "error", f"{type(exc).__name__}: {exc}")
        else:
            response = (seq, "ok", result)
        copies = 1
        try:
            chaos.fire(
                "shard.worker.respond", shard_id=shard_id, op=op, seq=seq
            )
        except chaos.DropResponse:
            continue
        except chaos.DuplicateResponse:
            copies = 2
        try:
            for _ in range(copies):
                conn.send(response)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
