"""The shard worker process: serve one partition, answer pure RPCs.

A worker is forked from the coordinator *after* the shard plan is built,
so its :class:`~repro.shard.plan.ShardState` (slab subgraph, budgeted
FELINE index, gateway tables) arrives through copy-on-write memory with
zero serialization — exactly the :class:`~repro.perf.pool.SearchPool`
trick, applied to a long-lived serving process.  Because the state is
immutable, every RPC is a pure function and the coordinator may freely
retry or re-dispatch one to a *restarted* worker.

Operations:

* ``ping`` — liveness probe for the supervisor.
* ``local (u, v, budget_ms)`` — same-shard query answered by the
  shard's own FELINE index (exact: the slab is closed under paths, see
  :mod:`repro.shard.plan`), deadline-guarded when ``budget_ms`` is set;
  answers ``True`` / ``False`` / ``None`` (= UNKNOWN on the wire).
* ``local_many (pairs, budget_ms)`` — a whole same-shard sub-batch in
  one round trip, routed through the index's vectorized
  ``query_many``; ``budget_ms`` applies *per pair* (the same contract
  as ``local``), and the answer is an aligned list of
  ``True`` / ``False`` / ``None``.
* ``route_out (u, v)`` — the direct-edge check plus
  ``Out(u) = ({u} ∪ N⁺(u)) ∩ B`` for the coordinator's gateway product.
* ``route_in (v,)`` — the ``In(v)`` half.
* ``stop`` — acknowledge and exit cleanly.

With tracing/metrics enabled before the service was built, a worker is a
first-class observability citizen: it inherits the coordinator's tracer
and registry objects through the fork, clears/zeroes them at startup (the
inherited contents belong to the parent), and then records spans and
instrument updates of its own.  Finished spans and cumulative telemetry
snapshots are *piggybacked* on RPC responses as an optional fourth frame
element and stitched coordinator-side (see :mod:`repro.obs.distributed`);
spans finished without a request's trace context are dropped here, never
shipped under a wrong parent.  With the default null tracer/registry the
worker does none of this and the response frames stay 3-tuples.

Chaos hook points (inherited through fork, so tests install them on the
coordinator *before* the service starts):

* ``shard.worker.request`` — fires on receipt; a raising hook turns
  into an error response (the coordinator sees a transient failure).
* ``shard.worker.respond`` — fires before the reply is sent; raising
  :class:`~repro.resilience.chaos.DropResponse` swallows the reply
  (lost message) and :class:`~repro.resilience.chaos.DuplicateResponse`
  sends it twice (duplicated message).
"""

from __future__ import annotations

import os
from time import monotonic

from repro.obs.distributed import TELEMETRY_INTERVAL_S, build_aux
from repro.obs.metrics import get_registry, reset_instruments
from repro.obs.spans import get_tracer
from repro.resilience import chaos
from repro.resilience.budget import UNKNOWN, QueryBudget
from repro.shard.plan import ShardState

__all__ = ["worker_main"]


def _handle(state: ShardState, op: str, payload):
    if op == "ping":
        return "pong"
    if op == "local":
        u, v, budget_ms = payload
        lu, lv = state.sub.local_of[u], state.sub.local_of[v]
        if lu == -1 or lv == -1:
            raise ValueError(
                f"shard {state.shard_id} does not own pair ({u}, {v})"
            )
        budget = None
        if budget_ms is not None:
            if budget_ms <= 0:
                return None  # deadline already spent: honestly unknown
            budget = QueryBudget(
                deadline_s=budget_ms / 1000.0, policy="unknown"
            )
        answer = state.index.query(lu, lv, budget=budget)
        return None if answer is UNKNOWN else bool(answer)
    if op == "local_many":
        pairs, budget_ms = payload
        local_pairs = []
        for u, v in pairs:
            lu, lv = state.sub.local_of[u], state.sub.local_of[v]
            if lu == -1 or lv == -1:
                raise ValueError(
                    f"shard {state.shard_id} does not own pair ({u}, {v})"
                )
            local_pairs.append((lu, lv))
        budget = None
        if budget_ms is not None:
            if budget_ms <= 0:
                return [None] * len(local_pairs)
            # Per-pair allowance, exactly as a sequence of ``local``
            # calls: query_many creates a fresh guard for every pair.
            budget = QueryBudget(
                deadline_s=budget_ms / 1000.0, policy="unknown"
            )
        answers = state.index.query_many(local_pairs, budget=budget)
        return [None if a is UNKNOWN else bool(a) for a in answers]
    if op == "route_out":
        u, v = payload
        gateways = state.out_gateways.get(u)
        if gateways is None:
            raise ValueError(f"shard {state.shard_id} does not own {u}")
        direct = v in state.out_neighbors[u]
        return direct, gateways
    if op == "route_in":
        (v,) = payload
        gateways = state.in_gateways.get(v)
        if gateways is None:
            raise ValueError(f"shard {state.shard_id} does not own {v}")
        return gateways
    raise ValueError(f"unknown shard op {op!r}")


def worker_main(state: ShardState, conn) -> None:
    """Serve RPCs over ``conn`` until ``stop``, EOF, or a closed pipe.

    Runs as the target of a forked ``multiprocessing.Process``.  The
    inherited tracer ring is cleared and the inherited registry zeroed
    *in place* at startup — the index's observability handles (resolved
    at build time, pre-fork) keep pointing at them, so everything the
    worker's index observes from here on is worker-pure and shippable;
    the pre-fork contents belong to the coordinator.  With the default
    null tracer/registry this is all skipped and the worker behaves
    exactly as before: pure RPCs, 3-tuple responses.
    """
    shard_id = state.shard_id
    tracer = get_tracer()
    tracing = tracer.enabled
    if tracing:
        tracer.clear()
    registry = get_registry()
    telemetry = registry.enabled
    if telemetry:
        reset_instruments(registry)
        registry.gauge(
            "repro_shard_index_tier_info",
            help="Index tier this worker serves (info gauge: value 1).",
            tier=state.index_tier,
        ).set(1)
    pid = os.getpid()
    last_ship = 0.0
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError, KeyboardInterrupt):
            break
        try:
            seq, op, payload = message[0], message[1], message[2]
        except (TypeError, IndexError, KeyError):
            continue  # garbage frame: a well-behaved worker ignores it
        trace_ctx = message[3] if isinstance(message, tuple) and len(message) > 3 else None
        if not (isinstance(trace_ctx, tuple) and len(trace_ctx) == 2):
            trace_ctx = None
        if op == "stop":
            try:
                conn.send((seq, "ok", None))
            except (BrokenPipeError, OSError):
                pass
            break
        aux = None
        try:
            chaos.fire(
                "shard.worker.request", shard_id=shard_id, op=op, seq=seq
            )
            if tracing and trace_ctx is not None and op != "ping":
                with tracer.span(
                    f"worker.{op}", trace_id=trace_ctx[0], shard=shard_id
                ):
                    result = _handle(state, op, payload)
            else:
                result = _handle(state, op, payload)
        except Exception as exc:  # noqa: BLE001 — relayed as error frame
            if tracing:
                tracer.clear()  # never ship spans of a failed request
            response = (seq, "error", f"{type(exc).__name__}: {exc}")
        else:
            now = monotonic()
            ship = telemetry and (
                op == "ping" or now - last_ship >= TELEMETRY_INTERVAL_S
            )
            if tracing or ship:
                aux = build_aux(
                    tracer=tracer,
                    registry=registry,
                    trace_ctx=trace_ctx if tracing else None,
                    pid=pid,
                    ship_telemetry=ship,
                )
            if ship:
                last_ship = now
            response = (
                (seq, "ok", result)
                if aux is None
                else (seq, "ok", result, aux)
            )
        copies = 1
        try:
            chaos.fire(
                "shard.worker.respond", shard_id=shard_id, op=op, seq=seq
            )
        except chaos.DropResponse:
            continue
        except chaos.DuplicateResponse:
            copies = 2
        try:
            for _ in range(copies):
                conn.send(response)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass
