"""Coordinator-side RPC channel to one shard worker process.

The wire is a :func:`multiprocessing.Pipe`; messages are
``(seq, op, payload)`` requests answered by ``(seq, status, payload)``
responses.  With tracing enabled both directions grow an *optional*
fourth element — ``(seq, op, payload, (trace_id, parent_span_id))``
requests, ``(seq, status, payload, aux)`` responses carrying the
worker's piggybacked spans and telemetry (see
:mod:`repro.obs.distributed`) — and stay 3-tuples otherwise, so the
default wire format is bit-identical to the untraced one.  Three
properties make the channel survive murdered workers:

* **Sequence matching.**  Every request carries a fresh sequence number
  and the receive loop discards any response whose number does not match
  — a duplicated response (chaos), or the stale answer of a request that
  already timed out, can never be mistaken for the current answer.
* **Deadline-bounded waits.**  :meth:`WorkerChannel.request` never waits
  past its ``timeout_s``; the pipe is polled in short slices so a worker
  that died *mid-wait* (SIGKILL closes its pipe end, but forked siblings
  may hold copies of the fds open) is still detected within one slice
  via ``Process.is_alive()``.
* **Transient failure typing.**  Every failure mode — send on a broken
  pipe, EOF on receive, timeout, worker-side error — surfaces as a
  :class:`~repro.exceptions.WorkerError` with ``transient=True``, so the
  service's :class:`~repro.resilience.retry.RetryPolicy` can hedge the
  request onto a restarted worker.  All shard RPCs are idempotent (pure
  functions of the immutable plan), which is what makes that retry safe.
"""

from __future__ import annotations

import threading
from time import monotonic

from repro.exceptions import WorkerError

__all__ = ["WorkerChannel", "POLL_SLICE_S"]

#: Upper bound of one pipe poll; also the worker-death detection latency
#: while blocked on a response.
POLL_SLICE_S = 0.02


class WorkerChannel:
    """One duplex pipe to a worker process, serialized by a lock.

    A channel is single-flight: the lock admits one RPC at a time, which
    keeps the request/response pairing trivial (sequence numbers handle
    the rest).  The supervisor uses :meth:`try_request` to heartbeat
    without queueing behind a long query.
    """

    _seq_lock = threading.Lock()
    _seq = 0

    def __init__(self, conn, process, shard_id: int) -> None:
        self.conn = conn
        self.process = process
        self.shard_id = shard_id
        self.lock = threading.Lock()
        self.closed = False

    @classmethod
    def _next_seq(cls) -> int:
        # Service-global sequence numbers: even across a channel rebuild
        # no two in-flight requests ever share a number.
        with cls._seq_lock:
            cls._seq += 1
            return cls._seq

    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return not self.closed and self.process.is_alive()

    def request(
        self, op: str, payload, timeout_s: float,
        trace_ctx: tuple | None = None, on_aux=None,
    ):
        """One idempotent RPC; raises transient ``WorkerError`` on any
        failure (timeout, death, broken pipe, worker-side error).

        ``trace_ctx`` is an optional ``(trace_id, parent_span_id)``
        appended to the request frame (the worker parents its spans
        under it); ``on_aux`` receives the response's piggyback envelope
        when one arrives — its failures are swallowed, because telemetry
        must never cost the answer that carried it.
        """
        with self.lock:
            return self._request_locked(
                op, payload, timeout_s, trace_ctx, on_aux
            )

    def try_request(
        self, op: str, payload, timeout_s: float,
        trace_ctx: tuple | None = None, on_aux=None,
    ):
        """Like :meth:`request` but gives up (returns ``None``) instead
        of queueing when the channel is busy with another RPC."""
        if not self.lock.acquire(blocking=False):
            return None
        try:
            return self._request_locked(
                op, payload, timeout_s, trace_ctx, on_aux
            )
        finally:
            self.lock.release()

    def _request_locked(
        self, op: str, payload, timeout_s: float,
        trace_ctx: tuple | None = None, on_aux=None,
    ):
        if self.closed:
            raise WorkerError(
                f"shard {self.shard_id}: channel closed",
                shard_id=self.shard_id,
                transient=True,
            )
        seq = self._next_seq()
        frame = (
            (seq, op, payload)
            if trace_ctx is None
            else (seq, op, payload, trace_ctx)
        )
        try:
            self.conn.send(frame)
        except (BrokenPipeError, OSError, ValueError) as exc:
            raise WorkerError(
                f"shard {self.shard_id}: send failed ({exc})",
                shard_id=self.shard_id,
                transient=True,
            ) from exc
        deadline = monotonic() + max(0.0, timeout_s)
        while True:
            remaining = deadline - monotonic()
            if remaining <= 0:
                raise WorkerError(
                    f"shard {self.shard_id}: {op} timed out "
                    f"after {timeout_s:.3f}s",
                    shard_id=self.shard_id,
                    transient=True,
                )
            try:
                ready = self.conn.poll(min(remaining, POLL_SLICE_S))
            except (OSError, ValueError) as exc:
                raise WorkerError(
                    f"shard {self.shard_id}: poll failed ({exc})",
                    shard_id=self.shard_id,
                    transient=True,
                ) from exc
            if not ready:
                if not self.process.is_alive():
                    raise WorkerError(
                        f"shard {self.shard_id}: worker died "
                        f"(exitcode {self.process.exitcode})",
                        shard_id=self.shard_id,
                        transient=True,
                    )
                continue
            try:
                message = self.conn.recv()
            except (EOFError, OSError) as exc:
                raise WorkerError(
                    f"shard {self.shard_id}: connection lost ({exc})",
                    shard_id=self.shard_id,
                    transient=True,
                ) from exc
            if not isinstance(message, tuple) or len(message) < 3:
                continue  # garbage frame: discard, keep waiting
            rseq, status, result = message[0], message[1], message[2]
            aux = message[3] if len(message) > 3 else None
            if rseq != seq:
                continue  # stale or duplicated response: discard
            if status != "ok":
                raise WorkerError(
                    f"shard {self.shard_id}: {op} failed remotely: {result}",
                    shard_id=self.shard_id,
                    transient=True,
                )
            if aux is not None and on_aux is not None:
                try:
                    on_aux(aux)
                except Exception:  # noqa: BLE001 — piggyback loss is free
                    pass
            return result

    def close(self) -> None:
        """Close the pipe end (idempotent); the process is not touched."""
        self.closed = True
        try:
            self.conn.close()
        except OSError:
            pass

    def __repr__(self) -> str:
        state = "alive" if self.alive() else "down"
        return f"<WorkerChannel shard={self.shard_id} pid={self.pid} {state}>"
