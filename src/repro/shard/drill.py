"""The kill-based chaos drill: murder workers, measure the contract.

:func:`chaos_drill` runs the shard service through three phases against
a ground-truth oracle and returns a JSON-safe report (the committed
``BENCH_pr7.json``):

1. **baseline** — no faults; establishes throughput and checks that the
   shard protocol answers exactly.
2. **chaos** — a killer thread SIGKILLs (and occasionally SIGSTOPs) a
   random live worker on a fixed cadence while queries flow with a
   per-query deadline.  The drill asserts the fault-tolerance contract
   query by query: every answer is correct or :data:`UNKNOWN`, and every
   query returns within deadline + grace (the grace absorbs coordinator
   scheduling noise on a loaded box; the deadline itself bounds the
   blocking protocol steps).
3. **degraded** — one shard is halted *permanently* (no restarts) to
   measure degraded-mode throughput on the ``on_shard_loss`` path.

Faults are injected with OS signals against real pids — there is no
simulation layer anywhere in this file.
"""

from __future__ import annotations

import threading
from random import Random
from time import monotonic, perf_counter

from repro.core.query import FelineIndex
from repro.graph.digraph import DiGraph
from repro.resilience import chaos
from repro.resilience.budget import UNKNOWN
from repro.shard.service import ShardConfig, ShardService

__all__ = ["chaos_drill"]


def _percentile(values: list[float], q: float) -> float | None:
    if not values:
        return None
    ordered = sorted(values)
    k = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[k]


def _latency_summary(latencies_s: list[float]) -> dict:
    return {
        "count": len(latencies_s),
        "p50_ms": _p_ms(latencies_s, 0.50),
        "p95_ms": _p_ms(latencies_s, 0.95),
        "p99_ms": _p_ms(latencies_s, 0.99),
        "max_ms": _p_ms(latencies_s, 1.0),
    }


def _p_ms(latencies_s: list[float], q: float) -> float | None:
    value = _percentile(latencies_s, q)
    return round(value * 1000.0, 3) if value is not None else None


class _Killer(threading.Thread):
    """Fault injector: every ``interval_s`` SIGKILL a random live worker
    (every ~4th fault is a SIGSTOP instead, exercising the heartbeat
    fencing path — the supervisor must detect the wedged-alive worker
    and SIGKILL it itself)."""

    def __init__(
        self, service: ShardService, interval_s: float, seed: int
    ) -> None:
        super().__init__(name="repro-chaos-killer", daemon=True)
        self.service = service
        self.interval_s = interval_s
        self.rng = Random(seed)
        self.stop_event = threading.Event()
        self.kills = 0
        self.freezes = 0

    def run(self) -> None:
        while not self.stop_event.wait(self.interval_s):
            pids = self.service.worker_pids()
            live = [(sid, pid) for sid, pid in enumerate(pids) if pid]
            if not live:
                continue
            _, pid = self.rng.choice(live)
            if self.rng.random() < 0.25:
                if chaos.freeze_process(pid):
                    self.freezes += 1
            elif chaos.kill_process(pid):
                self.kills += 1

    def stop(self) -> None:
        self.stop_event.set()
        self.join(timeout=5.0)


def _run_phase(
    service: ShardService,
    pairs: list[tuple[int, int]],
    truth: list[bool],
    duration_s: float,
    deadline_ms: float | None,
    grace_ms: float,
) -> dict:
    """Cycle through ``pairs`` for ``duration_s``, scoring every answer
    against the oracle and its wall time against the deadline."""
    latencies: list[float] = []
    wrong = unknown = violations = answered = 0
    end_at = monotonic() + duration_s
    i = 0
    while monotonic() < end_at:
        u, v = pairs[i % len(pairs)]
        expected = truth[i % len(pairs)]
        started = perf_counter()
        answer = service.query(u, v, deadline_ms=deadline_ms)
        elapsed = perf_counter() - started
        latencies.append(elapsed)
        answered += 1
        if answer is UNKNOWN:
            unknown += 1
        elif bool(answer) != expected:
            wrong += 1
        if (
            deadline_ms is not None
            and elapsed * 1000.0 > deadline_ms + grace_ms
        ):
            violations += 1
        i += 1
    elapsed_total = sum(latencies)
    return {
        "queries": answered,
        "duration_s": round(duration_s, 3),
        "qps": round(answered / elapsed_total, 1) if elapsed_total else None,
        "wrong": wrong,
        "unknown": unknown,
        "deadline_violations": violations,
        "latency": _latency_summary(latencies),
    }


def chaos_drill(
    graph: DiGraph,
    num_shards: int = 3,
    num_pairs: int = 200,
    deadline_ms: float = 250.0,
    grace_ms: float = 250.0,
    baseline_s: float = 2.0,
    chaos_s: float = 6.0,
    degraded_s: float = 2.0,
    kill_interval_s: float = 0.4,
    on_shard_loss: str = "fallback",
    seed: int = 0,
    config: ShardConfig | None = None,
) -> dict:
    """Run the three-phase drill; returns the ``BENCH_pr7`` report dict.

    ``config`` overrides the derived :class:`ShardConfig` wholesale when
    given (the drill still needs ``supervise=True`` to recover from the
    SIGSTOP faults).  The oracle is a coordinator-side FELINE index over
    the same condensed DAG the service routes on, so "wrong" means
    *provably* wrong.
    """
    if config is None:
        config = ShardConfig(
            num_shards=num_shards,
            on_shard_loss=on_shard_loss,
            heartbeat_interval_s=0.1,
            heartbeat_timeout_s=0.2,
            heartbeat_miss_limit=2,
        )
    rng = Random(seed)
    n = graph.num_vertices
    pairs = [
        (rng.randrange(n), rng.randrange(n)) for _ in range(num_pairs)
    ]

    with ShardService(graph, config) as service:
        oracle = FelineIndex(service.plan.dag).build()
        scc_of = service.condensation.scc_of
        truth = [bool(oracle.query(scc_of[u], scc_of[v])) for u, v in pairs]

        baseline = _run_phase(
            service, pairs, truth, baseline_s, deadline_ms, grace_ms
        )

        killer = _Killer(service, kill_interval_s, seed=seed + 1)
        killer.start()
        try:
            chaos_phase = _run_phase(
                service, pairs, truth, chaos_s, deadline_ms, grace_ms
            )
        finally:
            killer.stop()
        # Let the supervisor finish any in-flight restart (and thaw
        # nothing: frozen workers were fenced with SIGKILL + refork).
        failover = _latency_summary(service.stats.failover_latencies_s)

        halted = service.num_shards // 2  # a middle slab: cross traffic
        degraded = None
        if service.num_shards > 1:
            service.halt_worker(halted)
            degraded = _run_phase(
                service, pairs, truth, degraded_s, deadline_ms, grace_ms
            )
            degraded["halted_shard"] = halted
            service.revive_worker(halted)

        stats = service.stats.as_dict()
        stats.pop("failover_latencies_s", None)
        report = {
            "bench": "shard-chaos-drill",
            "graph": {
                "vertices": graph.num_vertices,
                "edges": graph.num_edges,
                "condensed_vertices": service.plan.dag.num_vertices,
            },
            "config": {
                "num_shards": service.num_shards,
                "deadline_ms": deadline_ms,
                "grace_ms": grace_ms,
                "kill_interval_s": kill_interval_s,
                "on_shard_loss": config.on_shard_loss,
                "seed": seed,
                "num_pairs": num_pairs,
            },
            "plan": {
                "shard_sizes": service.plan.shard_sizes(),
                "index_report": service.plan.index_report(),
            },
            "phases": {
                "baseline": baseline,
                "chaos": chaos_phase,
                "degraded": degraded,
            },
            "faults": {
                "sigkills": killer.kills,
                "sigstops": killer.freezes,
            },
            "failover_latency": failover,
            "service_stats": stats,
            "contract": {
                "wrong_answers": (
                    baseline["wrong"]
                    + chaos_phase["wrong"]
                    + (degraded["wrong"] if degraded else 0)
                ),
                "deadline_violations": (
                    baseline["deadline_violations"]
                    + chaos_phase["deadline_violations"]
                    + (degraded["deadline_violations"] if degraded else 0)
                ),
            },
        }
        return report
