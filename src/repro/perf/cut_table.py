"""Cut tables: an index's O(1) cuts as batch-ready numpy views.

Every index family in this library answers a query in two steps: a
handful of constant-time predicates over per-vertex arrays (the *cuts*),
then — only when the cuts are inconclusive — an online search.  The cut
predicates all share one shape, "compare a few per-vertex attributes of
``u`` and ``v``", which makes them trivially vectorizable; what used to
block that was the per-call conversion of the underlying ``array``
storage into numpy arrays.

A :class:`CutTable` is the fix: built **once** per index at ``build()``
time (see :meth:`repro.baselines.base.ReachabilityIndex._make_cut_table`),
it holds numpy views of the cut structures and implements
:meth:`CutTable.classify` — the whole-batch cut pass.  The generic
engine (:mod:`repro.perf.engine`) drives it identically for every
family.

Contract
--------
``classify(sources, targets)`` receives two aligned ``int64`` arrays and
returns ``(positive, negative)`` boolean masks:

* ``positive[i]`` — pair ``i`` is *proved* reachable by an O(1) cut;
* ``negative[i]`` — pair ``i`` is *disproved* by an O(1) cut;
* neither — the pair needs an online search.

The masks must be disjoint and must reproduce the family's scalar
``_query`` decisions exactly for ``u != v`` pairs (reflexive pairs are
handled — and masked out — by the engine, so tables may classify them
arbitrarily).  ``counts_cuts`` declares whether the family's scalar path
accounts decided queries in ``QueryStats.positive_cuts`` /
``negative_cuts`` (the materialized transitive closure counts nothing —
its table sets this ``False`` so batch stats stay bit-identical).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "CutTable",
    "SearchOnlyCutTable",
    "SwappedCutTable",
    "view_i64",
    "pack_bigints",
    "segmented_arrays",
    "segment_keys",
]


def view_i64(values) -> np.ndarray:
    """A zero-copy ``int64`` numpy view of ``values`` where possible.

    ``array('l')`` / ``array('q')`` buffers and ``np.memmap`` segments
    come through as views; a differently-sized itemsize (32-bit ``long``
    platforms) falls back to one conversion — still once per build, not
    once per batch.
    """
    out = np.asarray(values)
    if out.dtype != np.int64:
        out = out.astype(np.int64)
    return out


def pack_bigints(bitsets, num_bits: int) -> np.ndarray:
    """Pack per-vertex Python-int bitsets into a ``(n, ceil(bits/8))``
    ``uint8`` matrix (little-endian), enabling vectorized ``AND`` tests.
    """
    width = (num_bits + 7) // 8
    if width == 0 or not bitsets:
        return np.zeros((len(bitsets), width), dtype=np.uint8)
    payload = b"".join(bits.to_bytes(width, "little") for bits in bitsets)
    return np.frombuffer(payload, dtype=np.uint8).reshape(len(bitsets), width)


def segmented_arrays(lists) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate per-vertex integer sequences into ``(flat, indptr)``.

    ``flat[indptr[v]:indptr[v+1]]`` is vertex ``v``'s sequence; both
    arrays are ``int64``.
    """
    lens = np.fromiter(
        (len(lst) for lst in lists), dtype=np.int64, count=len(lists)
    )
    indptr = np.zeros(len(lists) + 1, dtype=np.int64)
    np.cumsum(lens, out=indptr[1:])
    flat = np.empty(int(indptr[-1]), dtype=np.int64)
    for v, lst in enumerate(lists):
        if len(lst):
            flat[indptr[v] : indptr[v + 1]] = lst
    return flat, indptr


def segment_keys(flat: np.ndarray, indptr: np.ndarray, universe: int) -> np.ndarray:
    """Globally-sorted search keys ``vertex * universe + value``.

    Requires each segment of ``flat`` to be sorted with values in
    ``[0, universe)`` — then the combined key array is globally sorted,
    so one :func:`numpy.searchsorted` answers per-vertex membership /
    predecessor probes for a whole batch (the segmented-bisect trick
    behind the FERRARI, INTERVAL and TF-Label tables).
    """
    lens = np.diff(indptr)
    owners = np.repeat(
        np.arange(len(indptr) - 1, dtype=np.int64), lens
    )
    return owners * np.int64(universe) + flat


class CutTable:
    """Base class for per-family vectorized cut passes (see module doc)."""

    #: Whether decided pairs move the positive/negative_cuts counters
    #: (the scalar contract of the family's ``_query``).
    counts_cuts: bool = True

    def classify(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized O(1) cuts: ``(positive, negative)`` masks."""
        raise NotImplementedError


class SearchOnlyCutTable(CutTable):
    """Families with no O(1) cuts (pure online search: DFS/BFS/biBFS).

    Every non-equal pair is undecided — the engine still classifies the
    batch in one vectorized pass (the reflexive cut) and routes the rest
    straight to the search loop / pool.
    """

    def classify(self, sources, targets):
        undecided = np.zeros(len(sources), dtype=bool)
        return undecided, undecided.copy()


class SwappedCutTable(CutTable):
    """Delegates to another table with ``u``/``v`` swapped.

    FELINE-I answers ``r(u, v)`` as ``r(v, u)`` on the edge-reversed
    index, so its batch cut pass is the inner FELINE table queried with
    the argument order flipped.
    """

    def __init__(self, inner: CutTable) -> None:
        self.inner = inner
        self.counts_cuts = inner.counts_cuts

    def classify(self, sources, targets):
        return self.inner.classify(targets, sources)
