"""SearchPool: fork-based parallel execution of survivor searches.

After the vectorized cut pass (:mod:`repro.perf.engine`) the pairs that
remain undecided each need an online graph search — pure Python work
that dominates batch latency on search-heavy workloads.  A
:class:`SearchPool` partitions those survivors into contiguous chunks
and runs them across ``fork``-started worker processes.  Forking after
``build()`` means the CSR arrays, index labels and cut tables are all
shared copy-on-write: workers inherit the built index through forked
memory with zero serialization, and only the ``(u, v)`` task lists and
boolean answers cross the process boundary.

Guarantees and caveats:

* **Deterministic ordering** — chunks are contiguous slices of the
  survivor list and results are merged with an ordered ``map``, so
  answers are independent of worker scheduling.
* **Graceful fallback** — on platforms without ``fork`` (or with
  ``workers <= 1``) the pool runs the searches in process; same
  answers, no crash.
* **Budgets stay scalar** — a :class:`~repro.resilience.budget.QueryBudget`
  on ``query_many`` routes the whole batch through the guarded scalar
  path *before* the engine runs (the budget is per query), so pooled
  searches never carry a guard.
* **Worker-side stats** — each chunk returns its ``expanded``/``pruned``
  deltas, merged into the parent's :class:`QueryStats`; metric
  observations made inside workers (the ``_observe_searches`` wrapper)
  live in the forked registry copy and are discarded.  SCARAB's
  survivor search also increments its *inner* base index's counters,
  which are likewise worker-local and not merged back.
"""

from __future__ import annotations

import multiprocessing
from time import perf_counter

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer

__all__ = ["SearchPool", "fork_available"]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    ``False`` on Windows and other spawn-only platforms; tests
    monkeypatch this to exercise the in-process fallback.
    """
    return "fork" in multiprocessing.get_all_start_methods()


# The built index a worker process serves.  Set once per worker by
# _pool_worker_init: under the fork start method initargs are inherited
# through forked memory (no pickling), which is the whole point — the
# CSR arrays and cut tables arrive copy-on-write.
_WORKER_INDEX = None


def _pool_worker_init(index) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index
    # The forked copy must never re-enter pooled dispatch.
    index._search_pool = None


def _run_chunk(task):
    """Worker body: answer one contiguous chunk of survivor pairs.

    Returns ``(chunk_id, answers, stats_delta, elapsed_s)`` — the delta
    is against the worker's (forked) stats copy, merged by the parent.
    """
    chunk_id, pairs = task
    index = _WORKER_INDEX
    before = index.stats.as_dict()
    start = perf_counter()
    search = index._search_pair
    answers = [bool(search(u, v)) for u, v in pairs]
    elapsed = perf_counter() - start
    after = index.stats.as_dict()
    delta = {key: after[key] - before[key] for key in after}
    return chunk_id, answers, delta, elapsed


class SearchPool:
    """Partition survivor searches across forked worker processes.

    Construct *after* ``index.build()`` (the fork snapshot must contain
    the built structures) — :meth:`ReachabilityIndex.enable_search_pool`
    does this.  ``min_batch`` is the survivor count below which the
    engine skips dispatch entirely (per-pair IPC overhead beats any
    parallelism on tiny batches).
    """

    def __init__(self, index, workers: int = 2, min_batch: int = 32) -> None:
        self.index = index
        self.workers = max(1, int(workers))
        self.min_batch = max(1, int(min_batch))
        self._pool = None
        if self.workers > 1 and fork_available():
            self.mode = "fork"
            ctx = multiprocessing.get_context("fork")
            self._pool = ctx.Pool(
                self.workers,
                initializer=_pool_worker_init,
                initargs=(index,),
            )
        else:
            self.mode = "inline"

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (inline pools never close)."""
        return self.mode == "fork" and self._pool is None

    def run(self, index, sources, targets, survivors) -> np.ndarray:
        """Answer the survivor pairs; returns a bool array aligned with
        ``survivors``.

        ``sources``/``targets`` are the full batch arrays and
        ``survivors`` the undecided positions (the engine's calling
        convention).  Order of answers is deterministic in both modes.
        """
        pairs = [
            (int(sources[i]), int(targets[i])) for i in survivors
        ]
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_pool_tasks_total",
                help="Survivor searches dispatched through the pool.",
                method=index.method_name,
                mode=self.mode,
            ).inc(len(pairs))
        if self._pool is None:
            search = index._search_pair
            return np.fromiter(
                (search(u, v) for u, v in pairs), dtype=bool, count=len(pairs)
            )

        bounds = np.array_split(np.arange(len(pairs)), self.workers)
        tasks = [
            (chunk_id, [pairs[i] for i in chunk])
            for chunk_id, chunk in enumerate(bounds)
            if len(chunk)
        ]
        tracer = get_tracer()
        with tracer.span(
            "pool.dispatch",
            method=index.method_name,
            workers=self.workers,
            pairs=len(pairs),
            chunks=len(tasks),
        ):
            results = self._pool.map(_run_chunk, tasks, chunksize=1)

        answers = np.empty(len(pairs), dtype=bool)
        offset = 0
        stats = index.stats
        chunk_hist = None
        if registry.enabled:
            chunk_hist = registry.histogram
        for chunk_id, chunk_answers, delta, elapsed in results:
            answers[offset : offset + len(chunk_answers)] = chunk_answers
            offset += len(chunk_answers)
            stats.expanded += delta["expanded"]
            stats.pruned += delta["pruned"]
            if chunk_hist is not None:
                chunk_hist(
                    "repro_pool_chunk_seconds",
                    help="Wall time per pooled survivor-search chunk.",
                    method=index.method_name,
                    worker=str(chunk_id),
                ).observe(elapsed)
        return answers

    def close(self) -> None:
        """Terminate the worker processes (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SearchPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"<SearchPool mode={self.mode} workers={self.workers} "
            f"min_batch={self.min_batch}>"
        )
