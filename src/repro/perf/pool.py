"""SearchPool: fork-based parallel execution of survivor searches.

After the vectorized cut pass (:mod:`repro.perf.engine`) the pairs that
remain undecided each need an online graph search — pure Python work
that dominates batch latency on search-heavy workloads.  A
:class:`SearchPool` partitions those survivors into contiguous chunks
and runs them across ``fork``-started worker processes.  Forking after
``build()`` means the CSR arrays, index labels and cut tables are all
shared copy-on-write: workers inherit the built index through forked
memory with zero serialization, and only the ``(u, v)`` task lists and
boolean answers cross the process boundary.

Guarantees and caveats:

* **Deterministic ordering** — chunks are contiguous slices of the
  survivor list and results are merged with an ordered ``map``, so
  answers are independent of worker scheduling.
* **Graceful fallback** — on platforms without ``fork`` (or with
  ``workers <= 1``) the pool runs the searches in process; same
  answers, no crash.
* **Budgets stay scalar** — a :class:`~repro.resilience.budget.QueryBudget`
  on ``query_many`` routes the whole batch through the guarded scalar
  path *before* the engine runs (the budget is per query), so pooled
  searches never carry a guard.
* **Crash hardening** — chunks are dispatched asynchronously and the
  pool is watched while they run: a worker that dies mid-batch (OOM
  kill, SIGKILL, segfault) is detected by pid/exitcode change, finished
  chunks are salvaged, and the affected chunks are recomputed inline in
  the parent — the batch always completes with correct answers.  Each
  incident increments ``repro_pool_worker_deaths_total`` and the pool is
  respawned (bounded; after ``MAX_RESPAWNS`` incidents it degrades to
  inline mode for the rest of its life).
* **Worker-side stats** — each chunk returns its ``expanded``/``pruned``
  deltas, merged into the parent's :class:`QueryStats`; metric
  observations made inside workers (the ``_observe_searches`` wrapper)
  live in the forked registry copy and are discarded.  SCARAB's
  survivor search also increments its *inner* base index's counters,
  which are likewise worker-local and not merged back.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
from time import monotonic, perf_counter, sleep

import numpy as np

from repro.obs.distributed import TelemetryMerger, build_aux, ingest_aux
from repro.obs.metrics import get_registry, reset_instruments
from repro.obs.spans import get_tracer

__all__ = ["SearchPool", "fork_available", "MAX_RESPAWNS"]

#: Pool respawns allowed after worker deaths before degrading to inline.
MAX_RESPAWNS = 2

#: Poll cadence while waiting on dispatched chunks, and the grace window
#: given to surviving workers to finish their chunks after a death.
_POLL_S = 0.005
_SALVAGE_GRACE_S = 0.25


def fork_available() -> bool:
    """Whether the ``fork`` start method exists on this platform.

    ``False`` on Windows and other spawn-only platforms; tests
    monkeypatch this to exercise the in-process fallback.
    """
    return "fork" in multiprocessing.get_all_start_methods()


# The built index a worker process serves.  Set once per worker by
# _pool_worker_init: under the fork start method initargs are inherited
# through forked memory (no pickling), which is the whole point — the
# CSR arrays and cut tables arrive copy-on-write.
_WORKER_INDEX = None


def _pool_worker_init(index) -> None:
    global _WORKER_INDEX
    _WORKER_INDEX = index
    # The forked copy must never re-enter pooled dispatch.
    index._search_pool = None
    # The fork also copied the parent's tracer ring and registry totals;
    # both belong to the parent.  Clearing/zeroing them (in place — the
    # index's observability handles were resolved pre-fork) makes
    # everything this worker records from here on worker-pure, so it can
    # ship back on chunk results without double counting.
    tracer = get_tracer()
    if tracer.enabled:
        tracer.clear()
    registry = get_registry()
    if registry.enabled:
        reset_instruments(registry)


def _run_chunk(task):
    """Worker body: answer one contiguous chunk of survivor pairs.

    Returns ``(chunk_id, answers, deltas, elapsed_s, aux)`` — ``deltas``
    is a per-pair list of ``(expanded, pruned)`` increments against the
    worker's (forked) stats copy, merged (and multiplicity-weighted, for
    deduplicated batch pairs) by the parent; ``aux`` is the piggyback
    envelope (worker spans + telemetry snapshot, see
    :mod:`repro.obs.distributed`), ``None`` when observability is off.
    """
    chunk_id, pairs = task
    index = _WORKER_INDEX
    stats = index.stats
    tracer = get_tracer()
    span = (
        tracer.span("worker.pool_chunk", chunk=chunk_id, pairs=len(pairs))
        if tracer.enabled
        else None
    )
    if span is not None:
        span.__enter__()
    start = perf_counter()
    batch = (
        index._search_pairs_batch(
            np.fromiter(
                (u for u, _ in pairs), dtype=np.int64, count=len(pairs)
            ),
            np.fromiter(
                (v for _, v in pairs), dtype=np.int64, count=len(pairs)
            ),
        )
        if pairs
        else None
    )
    if batch is not None:
        # The native batch sweep: per-pair deltas come back directly
        # (worker stats are discarded anyway, see module doc).
        chunk_answers, expanded, pruned = batch
        answers = [bool(a) for a in chunk_answers]
        deltas = list(zip(expanded.tolist(), pruned.tolist()))
    else:
        search = index._search_pair
        answers = []
        deltas = []
        for u, v in pairs:
            expanded, pruned = stats.expanded, stats.pruned
            answers.append(bool(search(u, v)))
            deltas.append((stats.expanded - expanded, stats.pruned - pruned))
    elapsed = perf_counter() - start
    if span is not None:
        span.__exit__(None, None, None)
    registry = get_registry()
    aux = None
    if tracer.enabled or registry.enabled:
        # The trace/parent ids are placeholders: the parent overwrites
        # them with its ``pool.dispatch`` span before adoption (chunk
        # results return out of band, not on a traced RPC).
        aux = build_aux(
            tracer=tracer,
            registry=registry,
            trace_ctx=(None, None) if tracer.enabled else None,
            pid=os.getpid(),
            ship_telemetry=registry.enabled,
        )
    return chunk_id, answers, deltas, elapsed, aux


def _abandon_pool(pool) -> None:
    """Tear a (possibly poisoned) ``Pool`` down without deadlocking.

    ``Pool.terminate`` drains the shared task queue under its lock — a
    lock that a SIGKILLed worker may have died holding, in which case
    the drain blocks forever.  So the stdlib teardown runs on a daemon
    thread with a bounded wait (its first action flips the pool state,
    which stops the maintenance thread from respawning workers), and the
    worker processes are then SIGKILLed and reaped regardless of whether
    the graceful path got through.
    """
    try:
        procs = list(pool._pool)
    except AttributeError:  # pragma: no cover - stdlib internals moved
        procs = []
    terminator = threading.Thread(
        target=pool.terminate, name="repro-pool-terminate", daemon=True
    )
    terminator.start()
    terminator.join(timeout=1.0)
    for proc in procs:
        if proc.is_alive() and proc.pid is not None:
            try:
                os.kill(proc.pid, signal.SIGKILL)
            except (ProcessLookupError, PermissionError):
                pass
    for proc in procs:
        proc.join(timeout=0.5)


class SearchPool:
    """Partition survivor searches across forked worker processes.

    Construct *after* ``index.build()`` (the fork snapshot must contain
    the built structures) — :meth:`ReachabilityIndex.enable_search_pool`
    does this.  ``min_batch`` is the survivor count below which the
    engine skips dispatch entirely (per-pair IPC overhead beats any
    parallelism on tiny batches).
    """

    def __init__(self, index, workers: int = 2, min_batch: int = 32) -> None:
        self.index = index
        self.workers = max(1, int(workers))
        self.min_batch = max(1, int(min_batch))
        self.worker_deaths = 0
        self._respawns = 0
        self._pool = None
        self._cohort_pids: set = set()
        # Worker chunk telemetry folds back through here, labeled
        # ``pool_worker=<pid>`` (same delta semantics as shard workers).
        self._telemetry = TelemetryMerger()
        if self.workers > 1 and fork_available():
            self.mode = "fork"
            self._pool = self._make_pool()
        else:
            self.mode = "inline"

    def _make_pool(self):
        ctx = multiprocessing.get_context("fork")
        pool = ctx.Pool(
            self.workers,
            initializer=_pool_worker_init,
            initargs=(self.index,),
        )
        # The spawn-time cohort: any deviation later (pid gone, exitcode
        # set) is evidence of a death — even one that happened *between*
        # batches, which still poisons the pool (a worker killed while
        # holding the shared task-queue lock deadlocks its siblings).
        self._cohort_pids = {proc.pid for proc in pool._pool}
        return pool

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run (inline pools never close)."""
        return self.mode == "fork" and self._pool is None

    def run(self, index, sources, targets, survivors, weights=None) -> np.ndarray:
        """Answer the survivor pairs; returns a bool array aligned with
        ``survivors``.

        ``sources``/``targets`` are the full batch arrays and
        ``survivors`` the undecided positions (the engine's calling
        convention).  ``weights``, when given, is aligned with
        ``survivors`` and carries each pair's multiplicity in the
        original batch (the engine deduplicates before dispatch): each
        pair is searched once and its ``expanded``/``pruned`` deltas are
        folded back scaled by the weight, so parent stats stay
        bit-identical to the scalar loop that would have repeated the
        search.  Order of answers is deterministic in both modes.
        """
        pairs = [
            (int(sources[i]), int(targets[i])) for i in survivors
        ]
        if weights is None:
            weights = [1] * len(pairs)
        else:
            weights = [int(w) for w in weights]
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_pool_tasks_total",
                help="Survivor searches dispatched through the pool.",
                method=index.method_name,
                mode=self.mode,
            ).inc(len(pairs))
        if self._pool is None:
            return self._run_inline(index, pairs, weights)

        bounds = np.array_split(np.arange(len(pairs)), self.workers)
        tasks = [
            (chunk_id, [pairs[i] for i in chunk])
            for chunk_id, chunk in enumerate(bounds)
            if len(chunk)
        ]
        task_weights = [
            [weights[i] for i in chunk] for chunk in bounds if len(chunk)
        ]
        tracer = get_tracer()
        with tracer.span(
            "pool.dispatch",
            method=index.method_name,
            workers=self.workers,
            pairs=len(pairs),
            chunks=len(tasks),
        ) as dispatch_span:
            results = self._dispatch(tasks)

        answers = np.empty(len(pairs), dtype=bool)
        offset = 0
        stats = index.stats
        chunk_hist = None
        if registry.enabled:
            chunk_hist = registry.histogram
        for (chunk_id, chunk_pairs), chunk_weights, result in zip(
            tasks, task_weights, results
        ):
            size = len(chunk_pairs)
            if result is None:
                # The chunk was lost with its worker: recompute inline.
                # Stats accrue directly on the parent's counters here.
                answers[offset : offset + size] = self._run_inline(
                    index, chunk_pairs, chunk_weights
                )
                offset += size
                continue
            _, chunk_answers, deltas, elapsed, aux = result
            answers[offset : offset + size] = chunk_answers
            offset += size
            for (expanded, pruned), weight in zip(deltas, chunk_weights):
                stats.expanded += expanded * weight
                stats.pruned += pruned * weight
            if isinstance(aux, dict):
                if aux.get("spans") and tracer.enabled:
                    aux["trace_id"] = dispatch_span.trace_id
                    aux["parent_id"] = dispatch_span.span_id
                pid = aux.get("pid")
                ingest_aux(
                    aux,
                    merger=self._telemetry,
                    source=pid,
                    pool_worker=str(pid),
                )
            if chunk_hist is not None:
                chunk_hist(
                    "repro_pool_chunk_seconds",
                    help="Wall time per pooled survivor-search chunk.",
                    method=index.method_name,
                    worker=str(chunk_id),
                ).observe(elapsed)
        return answers

    @staticmethod
    def _run_inline(index, pairs, weights) -> np.ndarray:
        """Answer ``pairs`` in process, scaling stats by multiplicity."""
        stats = index.stats
        search = index._search_pair
        answers = np.empty(len(pairs), dtype=bool)
        for i, (u, v) in enumerate(pairs):
            weight = weights[i]
            if weight == 1:
                answers[i] = search(u, v)
                continue
            expanded, pruned = stats.expanded, stats.pruned
            answers[i] = search(u, v)
            stats.expanded += (stats.expanded - expanded) * (weight - 1)
            stats.pruned += (stats.pruned - pruned) * (weight - 1)
        return answers

    def _worker_snapshot(self) -> list:
        """The pool's current worker processes (internal but stable API)."""
        pool = self._pool
        if pool is None:
            return []
        try:
            return list(pool._pool)
        except AttributeError:  # pragma: no cover - stdlib internals moved
            return []

    def _pool_damaged(self) -> bool:
        """Whether a worker from the spawn-time cohort is gone.

        Detects a dead-but-unreaped worker (exitcode set) and one
        already silently replaced by ``Pool``'s maintenance thread (pid
        set changed).  Either way the pool is condemned: an in-flight
        chunk may never return, and a worker killed mid-``get`` leaves
        the shared task-queue lock held forever, deadlocking even the
        replacement workers — which is why respawn rebuilds the whole
        pool rather than trusting the self-repair.
        """
        procs = self._worker_snapshot()
        if not procs:
            return True
        if {proc.pid for proc in procs} != self._cohort_pids:
            return True
        return any(proc.exitcode is not None for proc in procs)

    def _collect_ready(self, asyncs, results, pending) -> None:
        for i in list(pending):
            if not asyncs[i].ready():
                continue
            try:
                results[i] = asyncs[i].get()
            except Exception:  # noqa: BLE001 - chunk recomputed inline
                results[i] = None
            pending.discard(i)

    def _dispatch(self, tasks) -> list:
        """Run chunks through the pool, surviving worker deaths.

        Returns one entry per task: the ``_run_chunk`` result, or
        ``None`` for a chunk that must be recomputed inline (its worker
        died, or its remote execution raised).
        """
        asyncs = [self._pool.apply_async(_run_chunk, (t,)) for t in tasks]
        results: list = [None] * len(tasks)
        pending = set(range(len(tasks)))
        while pending:
            self._collect_ready(asyncs, results, pending)
            if not pending:
                break
            if self._pool_damaged():
                # Salvage: surviving workers get a short grace window to
                # hand over their finished chunks, then whatever is
                # still pending is declared lost (recomputed inline).
                grace_end = monotonic() + _SALVAGE_GRACE_S
                while pending and monotonic() < grace_end:
                    self._collect_ready(asyncs, results, pending)
                    if pending:
                        sleep(_POLL_S)
                self._on_worker_death(lost=len(pending))
                break
            sleep(_POLL_S)
        return results

    def _on_worker_death(self, lost: int) -> None:
        """Account a worker death and respawn (bounded) or go inline."""
        self.worker_deaths += 1
        registry = get_registry()
        if registry.enabled:
            registry.counter(
                "repro_pool_worker_deaths_total",
                help="Pool workers that died mid-batch; the affected "
                "chunks were recomputed inline.",
                method=self.index.method_name,
            ).inc()
        old = self._pool
        self._pool = None
        if old is not None:
            _abandon_pool(old)
        if self._respawns < MAX_RESPAWNS:
            self._respawns += 1
            self._pool = self._make_pool()
        else:
            self.mode = "inline"

    def close(self) -> None:
        """Terminate the worker processes (idempotent).

        Deadlock-safe even when a worker died with a queue lock held:
        the stdlib teardown gets a bounded attempt, then the workers are
        SIGKILLed outright.
        """
        if self._pool is not None:
            pool, self._pool = self._pool, None
            _abandon_pool(pool)

    def __enter__(self) -> "SearchPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:
        return (
            f"<SearchPool mode={self.mode} workers={self.workers} "
            f"min_batch={self.min_batch}>"
        )
