"""Shared-memory index pages.

Forked workers (:class:`~repro.perf.pool.SearchPool`, the
``repro.shard`` tier) nominally share the parent's index copy-on-write —
but CPython touches refcounts and GC bits as objects are *read*, so the
"shared" pages silently duplicate, one copy per worker.
:class:`SharedIndexPages` fixes this for the data that matters: the flat
numpy arrays the native kernels, cut tables and batch engine read (CSR
arrays, FELINE coordinate views, observer bitsets).  They are copied
once into a single ``multiprocessing.shared_memory`` segment
(``MAP_SHARED``, typically ``/dev/shm``), and every consumer is
re-pointed at zero-copy views of that segment — after which a fork maps
the one physical copy, refcount traffic notwithstanding (numpy views
carry their refcounts in small Python objects, not in the data pages).

Lifecycle: the creating process owns the segment and unlinks it in
:meth:`close` (with a ``weakref.finalize`` backstop, so a dropped arena
cannot leak ``/dev/shm`` entries past interpreter exit).  Forked workers
need no attach step — they inherit the mapping — while unrelated
processes can :meth:`attach` by manifest.  Where POSIX shared memory is
unavailable, :meth:`create` returns ``None`` and callers gracefully stay
on fork-COW.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.exceptions import ReproError

__all__ = ["SharedIndexPages", "shared_memory_available"]

# Segment offsets are rounded up to this, so every array in the arena
# starts cache-line/SIMD aligned.
_ALIGN = 64


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


def shared_memory_available() -> bool:
    """Whether POSIX shared memory works on this platform."""
    try:
        from multiprocessing import shared_memory

        probe = shared_memory.SharedMemory(create=True, size=1)
    except Exception:
        return False
    try:
        probe.close()
        probe.unlink()
    except Exception:
        pass
    return True


def _untrack(name: str) -> None:
    """Drop a segment from this process's resource tracker, if present.

    An attaching process must not let its tracker unlink a segment it
    does not own (Python < 3.13 registers unconditionally on attach).
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(f"/{name}", "shared_memory")
    except Exception:
        pass


class SharedIndexPages:
    """One shared-memory segment holding named read-only numpy arrays.

    Build with :meth:`create` (copies the arrays in, owner semantics) or
    :meth:`attach` (maps an existing arena by :meth:`manifest`, borrower
    semantics).  :meth:`view` returns a zero-copy ndarray over the
    segment.  :meth:`close` detaches — and, for the owner, unlinks — the
    segment; live views keep the mapping alive until they are dropped,
    but the name disappears from ``/dev/shm`` immediately.
    """

    def __init__(self, shm, layout: dict, label: str, owner: bool) -> None:
        self._shm = shm
        self._layout = layout
        self.label = label
        self._owner = owner
        self._closed = False
        self.nbytes = shm.size
        # Unlink even if the arena object is dropped without close():
        # pytest's /dev/shm leak check relies on this backstop.
        self._finalizer = weakref.finalize(
            self, SharedIndexPages._cleanup, shm, owner
        )

    # ------------------------------------------------------------------
    @classmethod
    def create(
        cls, arrays: dict[str, np.ndarray], label: str = "index"
    ) -> "SharedIndexPages | None":
        """Copy ``arrays`` into a fresh arena; ``None`` if shm is unusable.

        ``arrays`` maps names to numpy arrays (any dtype/shape); each is
        copied once, 64-byte aligned, into one segment sized to fit.
        """
        total = 0
        layout: dict[str, tuple[int, str, tuple[int, ...]]] = {}
        for name, arr in arrays.items():
            arr = np.ascontiguousarray(arr)
            total = _aligned(total)
            layout[name] = (total, arr.dtype.str, arr.shape)
            total += arr.nbytes
        try:
            from multiprocessing import shared_memory

            shm = shared_memory.SharedMemory(
                create=True, size=max(total, 1)
            )
        except Exception:
            return None
        pages = cls(shm, layout, label, owner=True)
        for name, arr in arrays.items():
            pages.view(name)[...] = np.ascontiguousarray(arr)
        return pages

    @classmethod
    def attach(cls, manifest: dict) -> "SharedIndexPages":
        """Map an existing arena from another process's :meth:`manifest`."""
        from multiprocessing import shared_memory

        name = manifest["shm_name"]
        try:
            try:
                # Python 3.13+: never register with the resource tracker.
                shm = shared_memory.SharedMemory(name=name, track=False)
            except TypeError:
                shm = shared_memory.SharedMemory(name=name)
                _untrack(name)
        except FileNotFoundError:
            raise ReproError(
                f"shared index pages segment {name!r} no longer exists"
            ) from None
        layout = {
            key: (int(offset), dtype, tuple(shape))
            for key, (offset, dtype, shape) in manifest["layout"].items()
        }
        return cls(shm, layout, manifest.get("label", "index"), owner=False)

    # ------------------------------------------------------------------
    def manifest(self) -> dict:
        """A picklable description other processes can :meth:`attach` by."""
        return {
            "shm_name": self._shm.name,
            "label": self.label,
            "layout": {
                name: (offset, dtype, list(shape))
                for name, (offset, dtype, shape) in self._layout.items()
            },
        }

    def names(self) -> list[str]:
        """The arena's array names."""
        return list(self._layout)

    def view(self, name: str) -> np.ndarray:
        """A zero-copy ndarray over the named array's pages."""
        if self._closed:
            raise ReproError(
                f"shared index pages {self.label!r} are closed"
            )
        offset, dtype, shape = self._layout[name]
        return np.ndarray(
            shape, dtype=np.dtype(dtype), buffer=self._shm.buf, offset=offset
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _cleanup(shm, owner: bool) -> None:
        try:
            shm.close()
        except BufferError:
            # Live views still hold the mapping; the unlink below still
            # removes the /dev/shm name, and the memory goes when the
            # last view does.
            pass
        except Exception:
            pass
        if owner:
            try:
                shm.unlink()
            except Exception:
                pass

    def close(self) -> None:
        """Detach (owner: and unlink) the segment.  Idempotent.

        Consumers should restore/drop their views first; a view kept
        alive past ``close`` stays valid (the mapping persists) but the
        segment name is gone, so no new process can attach.
        """
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        self._cleanup(self._shm, self._owner)

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "SharedIndexPages":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else (
            "owner" if self._owner else "attached"
        )
        return (
            f"<SharedIndexPages {self.label!r} {state} "
            f"{len(self._layout)} arrays {self.nbytes}B>"
        )
