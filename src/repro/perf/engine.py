"""The generic vectorized batch pass over a :class:`CutTable`.

One call classifies every pair of a batch through the index family's O(1)
cuts — reflexive, observer (when an
:class:`~repro.perf.observers.ObserverLayer` is attached), negative,
positive — with numpy, updates the
:class:`~repro.baselines.base.QueryStats` counters exactly as the scalar
loop would, and runs the per-pair online search only for the survivors
(in process, or partitioned across a :class:`repro.perf.pool.SearchPool`
when one is attached to the index).

This is the implementation behind the base
:meth:`~repro.baselines.base.ReachabilityIndex._query_many` for every
index that declares a cut table — which, as of this engine, is every
registered family.  Answers are bit-identical to the scalar path; the
win is constant-factor (no Python interpreter work for the cut
majority), typically 3-10x on cut-dominated workloads.

Duplicate pairs in a batch are searched once: survivors are deduplicated
before dispatch and each representative's answer is fanned back out.
The scalar loop *would* repeat those searches, so to keep the stats
contract bit-identical the representative's ``expanded``/``pruned``
deltas are scaled by the pair's multiplicity (searches are deterministic
— the timestamped visited arrays make a repeat expand identically).
``searches`` itself still counts every survivor occurrence, like the
scalar loop.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.spans import get_tracer

__all__ = ["vectorized_query_many"]


def _search_survivors(index, sources, targets, survivors, answers) -> None:
    """Answer the undecided positions in place, deduplicated.

    ``survivors`` is the array of undecided batch positions; duplicated
    ``(u, v)`` pairs collapse to one search whose stats deltas are
    weighted by the multiplicity (see module doc).
    """
    n = max(index.graph.num_vertices, 1)
    keys = sources[survivors] * np.int64(n) + targets[survivors]
    _, first, inverse, counts = np.unique(
        keys, return_index=True, return_inverse=True, return_counts=True
    )
    reps = survivors[first]
    pool = index._search_pool
    if pool is not None and len(survivors) >= pool.min_batch:
        rep_answers = pool.run(index, sources, targets, reps, weights=counts)
    else:
        stats = index.stats
        # One native call for the whole deduplicated sweep when the
        # index carries a batch-capable kernel (stats deltas come back
        # per pair so the multiplicity weighting below still applies).
        batch = index._search_pairs_batch(sources[reps], targets[reps])
        if batch is not None:
            rep_answers, expanded, pruned = batch
            stats.expanded += int(expanded @ counts)
            stats.pruned += int(pruned @ counts)
            answers[survivors] = rep_answers[inverse]
            return
        search = index._search_pair
        rep_answers = np.empty(len(reps), dtype=bool)
        for j, i in enumerate(reps):
            weight = int(counts[j])
            if weight == 1:
                rep_answers[j] = search(int(sources[i]), int(targets[i]))
                continue
            expanded, pruned = stats.expanded, stats.pruned
            rep_answers[j] = search(int(sources[i]), int(targets[i]))
            stats.expanded += (stats.expanded - expanded) * (weight - 1)
            stats.pruned += (stats.pruned - pruned) * (weight - 1)
    answers[survivors] = rep_answers[inverse]


def _observe_layer(index, hits_positive, hits_negative, num, survivors):
    """Observer-layer metrics: hit counters and the survivor-rate gauge.

    No-op when the global registry is the zero-cost default.
    """
    registry = get_registry()
    if not registry.enabled:
        return
    method = index.method_name
    if hits_positive:
        registry.counter(
            "repro_observer_hits_total",
            help="Batch pairs decided by the observer layer, by kind.",
            method=method,
            kind="positive",
        ).inc(hits_positive)
    if hits_negative:
        registry.counter(
            "repro_observer_hits_total",
            help="Batch pairs decided by the observer layer, by kind.",
            method=method,
            kind="negative",
        ).inc(hits_negative)
    registry.gauge(
        "repro_observer_survivor_rate",
        help="Fraction of the last batch no O(1) cut decided "
        "(observers included).",
        method=method,
    ).set(survivors / num)


def vectorized_query_many(index, pairs: Sequence[tuple[int, int]]) -> list[bool]:
    """Answer ``pairs`` on ``index`` through its cut table.

    ``index`` must be built and carry a materialized ``_cut_table``.
    Returns a plain ``list[bool]`` aligned with ``pairs`` (the base-class
    contract).  Statistics counters update identically to the scalar
    loop: ``queries``, ``equal_cuts``, ``observer_positive`` /
    ``observer_negative`` (when an observer layer is attached),
    ``negative_cuts``, ``positive_cuts``, ``searches`` here; per-search
    ``expanded`` / ``pruned`` inside the survivor searches (merged back
    from worker processes when a pool runs them).

    An empty batch returns ``[]`` immediately — no masks are built and
    neither the observers nor the pool are touched.
    """
    num = len(pairs)
    if num == 0:
        return []
    table = index._cut_table
    stats = index.stats
    tracer = get_tracer()
    traced = tracer.enabled

    pairs_arr = np.asarray(pairs, dtype=np.int64)
    sources, targets = pairs_arr[:, 0], pairs_arr[:, 1]
    equal = sources == targets

    stats.queries += num
    stats.equal_cuts += int(equal.sum())

    # Observer pre-pass: decided pairs never reach the family's cuts,
    # exactly like the scalar path where decide() short-circuits _query.
    observers = index._observers
    obs_positive = None
    if observers is not None:
        if traced:
            with tracer.span("engine.observer", size=num):
                obs_positive, obs_negative = observers.classify(
                    sources, targets
                )
        else:
            obs_positive, obs_negative = observers.classify(sources, targets)
        obs_positive &= ~equal
        obs_negative &= ~equal
        hits_positive = int(obs_positive.sum())
        hits_negative = int(obs_negative.sum())
        stats.observer_positive += hits_positive
        stats.observer_negative += hits_negative
        decided = equal | obs_positive | obs_negative
    else:
        decided = equal

    if traced:
        with tracer.span("engine.cut", size=num):
            positive, negative = table.classify(sources, targets)
    else:
        positive, negative = table.classify(sources, targets)
    positive = positive & ~decided
    negative = negative & ~decided
    undecided = ~(decided | positive | negative)
    if table.counts_cuts:
        stats.negative_cuts += int(negative.sum())
        stats.positive_cuts += int(positive.sum())

    answers = equal | positive
    if obs_positive is not None:
        answers |= obs_positive
    survivors = np.flatnonzero(undecided)
    stats.searches += len(survivors)
    if len(survivors):
        if traced:
            with tracer.span("engine.search", survivors=len(survivors)):
                _search_survivors(index, sources, targets, survivors, answers)
        else:
            _search_survivors(index, sources, targets, survivors, answers)
    if observers is not None:
        _observe_layer(
            index, hits_positive, hits_negative, num, len(survivors)
        )
    return answers.tolist()
