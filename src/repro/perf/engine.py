"""The generic vectorized batch pass over a :class:`CutTable`.

One call classifies every pair of a batch through the index family's O(1)
cuts — reflexive, negative, positive — with numpy, updates the
:class:`~repro.baselines.base.QueryStats` counters exactly as the scalar
loop would, and runs the per-pair online search only for the survivors
(in process, or partitioned across a :class:`repro.perf.pool.SearchPool`
when one is attached to the index).

This is the implementation behind the base
:meth:`~repro.baselines.base.ReachabilityIndex._query_many` for every
index that declares a cut table — which, as of this engine, is every
registered family.  Answers are bit-identical to the scalar path; the
win is constant-factor (no Python interpreter work for the cut
majority), typically 3-10x on cut-dominated workloads.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

__all__ = ["vectorized_query_many"]


def vectorized_query_many(index, pairs: Sequence[tuple[int, int]]) -> list[bool]:
    """Answer ``pairs`` on ``index`` through its cut table.

    ``index`` must be built and carry a materialized ``_cut_table``.
    Returns a plain ``list[bool]`` aligned with ``pairs`` (the base-class
    contract).  Statistics counters update identically to the scalar
    loop: ``queries``, ``equal_cuts``, ``negative_cuts``,
    ``positive_cuts``, ``searches`` here; per-search ``expanded`` /
    ``pruned`` inside the survivor searches (merged back from worker
    processes when a pool runs them).
    """
    num = len(pairs)
    if num == 0:
        return []
    table = index._cut_table
    stats = index.stats

    pairs_arr = np.asarray(pairs, dtype=np.int64)
    sources, targets = pairs_arr[:, 0], pairs_arr[:, 1]
    equal = sources == targets

    positive, negative = table.classify(sources, targets)
    positive = positive & ~equal
    negative = negative & ~equal
    undecided = ~(equal | positive | negative)

    stats.queries += num
    stats.equal_cuts += int(equal.sum())
    if table.counts_cuts:
        stats.negative_cuts += int(negative.sum())
        stats.positive_cuts += int(positive.sum())

    answers = equal | positive
    survivors = np.flatnonzero(undecided)
    stats.searches += len(survivors)
    if len(survivors):
        pool = index._search_pool
        if pool is not None and len(survivors) >= pool.min_batch:
            answers[survivors] = pool.run(index, sources, targets, survivors)
        else:
            search = index._search_pair
            for i in survivors:
                answers[i] = search(int(sources[i]), int(targets[i]))
    return answers.tolist()
