"""repro.perf — the batch query engine.

The paper's headline result (Figures 10-11) is that FELINE's O(1) cuts
kill the vast majority of queries before any search runs.  This package
generalises that win from scalar FELINE to *every* registered index
family:

* :mod:`repro.perf.cut_table` — the :class:`CutTable` contract: numpy
  views of an index's O(1)-cut structures (coordinates, levels, interval
  labels, FERRARI bounds, hop labels, ...) materialized **once** at
  ``build()`` time instead of per batch call;
* :mod:`repro.perf.engine` — :func:`vectorized_query_many`, the generic
  batch pass: one vectorized cut classification for the whole batch,
  then per-pair online search only for the survivors.  Answers and
  :class:`~repro.baselines.base.QueryStats` are bit-identical to the
  scalar loop;
* :mod:`repro.perf.observers` — :class:`ObserverLayer`, O'Reach-style
  supporting-vertex and topological-interval cuts that run as a
  vectorized pre-pass in front of *every* family's cut table (and
  before the scalar ``_query``), shrinking the survivor set the online
  search must process;
* :mod:`repro.perf.pool` — :class:`SearchPool`, a ``fork``-based worker
  pool that partitions the surviving needs-search pairs across
  processes (CSR arrays and cut tables shared copy-on-write), with
  deterministic result ordering and a graceful in-process fallback on
  platforms without ``fork``;
* :mod:`repro.perf.kernels` — CSR-native search kernels for the
  survivor path (pruned DFS, bidirectional BFS, the batch survivor
  sweep) with a three-tier backend: numba ``@njit`` when installed, a
  vectorized numpy fallback, pure Python last — every tier bit-identical
  in answers *and* ``QueryStats``;
* :mod:`repro.perf.shm` — :class:`SharedIndexPages`, a
  ``multiprocessing.shared_memory`` arena for the read-only index pages
  so forked workers map one physical copy instead of COW-duplicating.

See ``docs/PERFORMANCE.md`` for the architecture and workload guidance.
"""

from repro.perf.cut_table import (
    CutTable,
    SearchOnlyCutTable,
    SwappedCutTable,
)
from repro.perf.engine import vectorized_query_many
from repro.perf.kernels import (
    KERNEL_BACKENDS,
    available_backends,
    numba_available,
    numba_version,
    resolve_backend,
)
from repro.perf.observers import ObserverLayer, build_observers
from repro.perf.pool import SearchPool, fork_available
from repro.perf.shm import SharedIndexPages, shared_memory_available

__all__ = [
    "CutTable",
    "SearchOnlyCutTable",
    "SwappedCutTable",
    "ObserverLayer",
    "build_observers",
    "vectorized_query_many",
    "SearchPool",
    "fork_available",
    "KERNEL_BACKENDS",
    "available_backends",
    "numba_available",
    "numba_version",
    "resolve_backend",
    "SharedIndexPages",
    "shared_memory_available",
]
