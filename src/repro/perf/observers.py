"""Observer cuts: O'Reach-style supporting vertices in front of any index.

O'Reach (PAPERS.md) shows that a handful of well-chosen *supporting
vertices* plus topological min/max intervals answer a large fraction of
reachability queries in O(1) — *before* any index-specific structure is
consulted.  This module packages that idea as an :class:`ObserverLayer`
the batch engine (:mod:`repro.perf.engine`) runs as a vectorized
pre-pass in front of **every** family's
:class:`~repro.perf.cut_table.CutTable`, and the scalar
:meth:`~repro.baselines.base.ReachabilityIndex.query` consults before
the family's own ``_query``.

The layer holds a few numpy arrays over the DAG's ``n`` vertices:

* ``t1`` / ``t2`` — two topological rank arrays (DFS-based and Kahn);
  ``u ⇝ v`` with ``u != v`` forces ``t1[u] < t1[v]`` *and*
  ``t2[u] < t2[v]``, so either rank out of order is a negative cut
  (the FELINE dominance argument, reused here as the cheapest check);
* ``fmax`` — ``fmax[u] = max{t1[w] : u ⇝ w}``: a target ranked above
  everything reachable from ``u`` is unreachable;
* ``bmin`` — ``bmin[v] = min{t1[w] : w ⇝ v}``: a source ranked below
  everything reaching ``v`` cannot reach it;
* ``supports`` + ``fwd_bits`` / ``bwd_bits`` — ``k`` supporting
  vertices ``s_i`` with per-vertex bitsets: bit ``i`` of ``fwd_bits[v]``
  means ``s_i ⇝ v``, bit ``i`` of ``bwd_bits[v]`` means ``v ⇝ s_i``
  (both reflexive).  They give one O(k/64) positive cut and two
  negative contrapositives:

  - **positive**: ``∃i: u ⇝ s_i ∧ s_i ⇝ v  ⇒  u ⇝ v``;
  - **negative**: ``∃i: s_i ⇝ u ∧ ¬(s_i ⇝ v)  ⇒  ¬(u ⇝ v)`` (anything
    below an observer that sees ``u`` would also be seen by it);
  - **negative**: ``∃i: v ⇝ s_i ∧ ¬(u ⇝ s_i)  ⇒  ¬(u ⇝ v)``.

Every check is a sound deduction from exact reachability data, so the
layer never contradicts the index behind it — it only shrinks the
survivor set the online search must process.  Supporting vertices are
selected by :func:`build_observers` at build time: degree-ranked
candidates get exact ancestor/descendant sets (one boolean-matrix DP
along the topological order), scored by the number of (ordered) pairs
each would decide, and the top ``k`` win.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.toposort import (
    dfs_topological_order,
    kahn_order,
    ranks_from_order,
)

__all__ = ["ObserverLayer", "build_observers"]


class ObserverLayer:
    """The built observer arrays plus their scalar and batch checks.

    Instances are immutable value objects produced by
    :func:`build_observers` (or reattached by
    :mod:`repro.core.persistence`); attach one to an index with
    :meth:`~repro.baselines.base.ReachabilityIndex.attach_observers`.
    """

    def __init__(
        self,
        t1: np.ndarray,
        t2: np.ndarray,
        fmax: np.ndarray,
        bmin: np.ndarray,
        supports: np.ndarray,
        fwd_bits: np.ndarray,
        bwd_bits: np.ndarray,
    ) -> None:
        self.t1 = np.asarray(t1, dtype=np.int64)
        self.t2 = np.asarray(t2, dtype=np.int64)
        self.fmax = np.asarray(fmax, dtype=np.int64)
        self.bmin = np.asarray(bmin, dtype=np.int64)
        self.supports = np.asarray(supports, dtype=np.int64)
        self.fwd_bits = np.asarray(fwd_bits, dtype=np.uint8)
        self.bwd_bits = np.asarray(bwd_bits, dtype=np.uint8)
        # Python-int mirrors of the bit rows for the scalar decide();
        # built lazily so an mmap-loaded layer stays lazy until the
        # scalar path is actually used.
        self._fwd_ints: list[int] | None = None
        self._bwd_ints: list[int] | None = None

    @property
    def num_vertices(self) -> int:
        return len(self.t1)

    @property
    def k(self) -> int:
        """Number of supporting vertices (0 = interval checks only)."""
        return len(self.supports)

    def memory_bytes(self) -> int:
        """Size of the observer arrays (the layer's index-size share)."""
        return sum(
            arr.nbytes
            for arr in (
                self.t1, self.t2, self.fmax, self.bmin,
                self.supports, self.fwd_bits, self.bwd_bits,
            )
        )

    # -- batch ----------------------------------------------------------
    def classify(
        self, sources: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized observer cuts: disjoint ``(positive, negative)``
        masks, same contract as :meth:`CutTable.classify` (reflexive
        pairs may classify arbitrarily; the engine masks them out).
        """
        t1s, t1t = self.t1[sources], self.t1[targets]
        negative = (t1s >= t1t) | (self.t2[sources] >= self.t2[targets])
        negative |= t1t > self.fmax[sources]
        negative |= t1s < self.bmin[targets]
        if self.k:
            fwd_t = self.fwd_bits[targets]
            bwd_s = self.bwd_bits[sources]
            positive = (bwd_s & fwd_t).any(axis=1) & ~negative
            contrapositive = (
                (self.fwd_bits[sources] & ~fwd_t).any(axis=1)
                | (self.bwd_bits[targets] & ~bwd_s).any(axis=1)
            )
            negative |= contrapositive & ~positive
        else:
            positive = np.zeros(len(sources), dtype=bool)
        return positive, negative

    # -- scalar ---------------------------------------------------------
    def _ensure_ints(self) -> None:
        if self._fwd_ints is None:
            self._fwd_ints = [
                int.from_bytes(row.tobytes(), "little")
                for row in self.fwd_bits
            ]
            self._bwd_ints = [
                int.from_bytes(row.tobytes(), "little")
                for row in self.bwd_bits
            ]

    def decide(self, u: int, v: int) -> bool | None:
        """One pair through the same checks, in the same priority, as
        :meth:`classify`; ``None`` when no observer decides.

        Intended for ``u != v`` (the engine and scalar query handle the
        reflexive cut before observers run).
        """
        t1 = self.t1
        if t1[u] >= t1[v] or self.t2[u] >= self.t2[v]:
            return False
        if t1[v] > self.fmax[u] or t1[u] < self.bmin[v]:
            return False
        if self.k:
            self._ensure_ints()
            fwd_u, fwd_v = self._fwd_ints[u], self._fwd_ints[v]
            bwd_u, bwd_v = self._bwd_ints[u], self._bwd_ints[v]
            if bwd_u & fwd_v:
                return True
            if (fwd_u & ~fwd_v) or (bwd_v & ~bwd_u):
                return False
        return None

    def __repr__(self) -> str:
        return (
            f"<ObserverLayer n={self.num_vertices} k={self.k} "
            f"{self.memory_bytes()} bytes>"
        )


def _reach_matrix(graph: DiGraph, candidates: np.ndarray, forward: bool):
    """Exact reachability bitsets for ``candidates``, one DP sweep.

    Returns an ``(n, len(candidates))`` boolean matrix ``M`` with
    ``M[v, j] = candidate_j ⇝ v`` (``forward=True``) or ``v ⇝
    candidate_j`` (``forward=False``); reflexive in both directions.
    """
    n = graph.num_vertices
    matrix = np.zeros((n, len(candidates)), dtype=bool)
    matrix[candidates, np.arange(len(candidates))] = True
    order = dfs_topological_order(graph)
    if forward:
        indptr, indices = graph.in_indptr, graph.in_indices
    else:
        order = list(reversed(order))
        indptr, indices = graph.out_indptr, graph.out_indices
    for v in order:
        lo, hi = indptr[v], indptr[v + 1]
        if hi > lo:
            neighbors = np.asarray(indices[lo:hi], dtype=np.int64)
            matrix[v] |= matrix[neighbors].any(axis=0)
    return matrix


def build_observers(
    graph: DiGraph, k: int = 8, candidate_factor: int = 4
) -> ObserverLayer:
    """Select ``k`` supporting vertices over ``graph`` (a DAG) and build
    the full :class:`ObserverLayer`.

    ``k = 0`` still yields a useful layer (the topological interval and
    rank checks need no supports).  Candidates are the
    ``candidate_factor * k`` vertices with the largest in×out degree
    product; each gets exact ancestor/descendant sets via one
    boolean-matrix DP along the topological order, is scored by the
    ordered pairs it would decide — ``|anc|·|desc|`` positives plus
    ``|desc|·(n−|desc|) + |anc|·(n−|anc|)`` contrapositive negatives —
    and the best ``k`` win.
    """
    if k < 0:
        raise ValueError(f"observer count must be >= 0, got {k}")
    n = graph.num_vertices
    order = dfs_topological_order(graph)
    t1 = np.asarray(ranks_from_order(order), dtype=np.int64)
    t2 = np.asarray(ranks_from_order(kahn_order(graph)), dtype=np.int64)

    fmax = t1.copy()
    bmin = t1.copy()
    out_indptr, out_indices = graph.out_indptr, graph.out_indices
    in_indptr, in_indices = graph.in_indptr, graph.in_indices
    for v in reversed(order):
        best = fmax[v]
        for e in range(out_indptr[v], out_indptr[v + 1]):
            child = fmax[out_indices[e]]
            if child > best:
                best = child
        fmax[v] = best
    for v in order:
        best = bmin[v]
        for e in range(in_indptr[v], in_indptr[v + 1]):
            parent = bmin[in_indices[e]]
            if parent < best:
                best = parent
        bmin[v] = best

    k_eff = min(k, n)
    if k_eff:
        out_deg = np.diff(np.asarray(out_indptr, dtype=np.int64))
        in_deg = np.diff(np.asarray(in_indptr, dtype=np.int64))
        attractiveness = (in_deg + 1) * (out_deg + 1)
        pool = min(n, max(k_eff * max(candidate_factor, 1), k_eff))
        candidates = np.argsort(-attractiveness, kind="stable")[:pool]
        desc = _reach_matrix(graph, candidates, forward=True)
        anc = _reach_matrix(graph, candidates, forward=False)
        num_desc = desc.sum(axis=0, dtype=np.int64)
        num_anc = anc.sum(axis=0, dtype=np.int64)
        score = (
            num_anc * num_desc
            + num_desc * (n - num_desc)
            + num_anc * (n - num_anc)
        )
        chosen = np.argsort(-score, kind="stable")[:k_eff]
        supports = candidates[chosen].astype(np.int64)
        fwd_bits = np.packbits(desc[:, chosen], axis=1, bitorder="little")
        bwd_bits = np.packbits(anc[:, chosen], axis=1, bitorder="little")
    else:
        supports = np.zeros(0, dtype=np.int64)
        fwd_bits = np.zeros((n, 0), dtype=np.uint8)
        bwd_bits = np.zeros((n, 0), dtype=np.uint8)

    return ObserverLayer(
        t1=t1, t2=t2, fmax=fmax, bmin=bmin,
        supports=supports, fwd_bits=fwd_bits, bwd_bits=bwd_bits,
    )
