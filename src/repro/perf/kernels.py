"""CSR-native search kernels for the survivor path.

After the O(1) cuts (FELINE's coordinates, the observer layer, the
vectorized cut tables) have decided the easy majority of a workload, the
queries that remain — the *survivors* — each run an online search whose
inner loop used to be pure Python.  This module makes that loop run at
hardware speed over the flat CSR arrays exported once per graph by
:meth:`repro.graph.digraph.DiGraph.csr`, with a three-tier backend:

* ``numba`` — ``@njit``-compiled kernels, used when the *optional*
  ``numba`` dependency is installed (it is never required);
* ``numpy`` — a vectorized frontier/neighbour-slice expansion that needs
  nothing beyond the library's existing numpy dependency;
* ``python`` — the families' original loops, the always-correct last
  resort (and an explicit choice for debugging).

Selection is automatic (``numba`` when importable, else ``numpy``),
overridable per index via ``Reachability(kernel=...)`` /
``index.set_kernel(...)`` / the CLI ``--kernel`` flag, and globally via
the ``REPRO_KERNEL`` environment variable.  ``REPRO_NO_NUMBA=1`` hides
an installed numba (the CI no-numba leg).

**The bit-identity contract.**  Every backend returns the same answers
*and* the same :class:`~repro.baselines.base.QueryStats`
``expanded``/``pruned`` counts as the pure-Python loops, including under
a :class:`~repro.resilience.budget.QueryBudget`: step budgets are
enforced inside the kernel (the compiled loop counts expanded vertices
and bails at exactly the vertex where ``SearchGuard.step`` would have
raised), and the wrapper re-raises the identical
:class:`~repro.exceptions.QueryBudgetExceeded`.  Wall-clock deadlines
cannot be checked bit-identically from inside a compiled loop, so
deadline-carrying guards route to the pure-Python loop — slower, never
wrong.  The property suite (``tests/property/test_kernel_equivalence``)
asserts the contract for every registered family.

The numpy tier keeps the Python traversal *order* (LIFO stack, CSR slice
order, first-occurrence dedup) and vectorizes only the per-vertex
neighbour-slice processing — and only for slices of at least
:data:`VECTOR_MIN_DEGREE` children, so low-degree graphs never pay numpy
call overhead and the tier is no slower than pure Python anywhere.
"""

from __future__ import annotations

import os
from time import perf_counter
from weakref import WeakKeyDictionary

import numpy as np

from repro.exceptions import QueryBudgetExceeded, ReproError

__all__ = [
    "KERNEL_BACKENDS",
    "available_backends",
    "numba_available",
    "numba_version",
    "resolve_backend",
    "feline_kernel",
    "bibfs_kernel_for",
    "bounded_search",
    "describe_backend",
    "VECTOR_MIN_DEGREE",
]

#: The selectable backends, strongest first (``auto`` picks the first
#: available one).
KERNEL_BACKENDS = ("numba", "numpy", "python")

#: Neighbour-slice / frontier length below which the numpy tier stays on
#: the scalar loop: numpy's per-call overhead beats vectorization gains
#: for short slices, and the scalar path is shared with the python tier
#: so short-degree traversal costs are identical.
VECTOR_MIN_DEGREE = 32

_EMPTY_I64 = np.empty(0, dtype=np.int64)

# ---------------------------------------------------------------------------
# backend discovery and selection
# ---------------------------------------------------------------------------

_NUMBA_VERSION: str | None = None
_numba_checked = False


def numba_available() -> bool:
    """Whether the optional numba dependency can be imported.

    Checked once per process; ``REPRO_NO_NUMBA`` (any non-empty value)
    hides an installed numba so the fallback tiers can be exercised.
    """
    global _numba_checked, _NUMBA_VERSION
    if not _numba_checked:
        _numba_checked = True
        if os.environ.get("REPRO_NO_NUMBA"):
            _NUMBA_VERSION = None
        else:
            try:
                import numba
            except Exception:
                _NUMBA_VERSION = None
            else:
                _NUMBA_VERSION = getattr(numba, "__version__", "unknown")
    return _NUMBA_VERSION is not None


def numba_version() -> str | None:
    """The installed numba version, or ``None`` when absent/hidden."""
    numba_available()
    return _NUMBA_VERSION


def available_backends() -> tuple[str, ...]:
    """The kernel backends usable in this process, strongest first."""
    if numba_available():
        return KERNEL_BACKENDS
    return tuple(b for b in KERNEL_BACKENDS if b != "numba")


def resolve_backend(choice: str | None = None) -> str:
    """Resolve a backend request to a concrete available backend.

    ``None``/``"auto"`` defers to the ``REPRO_KERNEL`` environment
    variable, then picks the strongest available tier.  An explicit
    ``"numba"`` on a machine without numba raises — a silent downgrade
    would invalidate a benchmark that believes it measured numba.
    """
    if choice is None or choice == "" or choice == "auto":
        env = os.environ.get("REPRO_KERNEL", "").strip().lower()
        choice = env if env and env != "auto" else None
        if choice is None:
            return "numba" if numba_available() else "numpy"
    choice = choice.lower()
    if choice not in KERNEL_BACKENDS:
        raise ReproError(
            f"unknown kernel backend {choice!r}; "
            f"use one of auto, {', '.join(KERNEL_BACKENDS)}"
        )
    if choice == "numba" and not numba_available():
        raise ReproError(
            "kernel backend 'numba' requested but numba is not importable; "
            "install numba or use kernel='numpy' / 'python'"
        )
    return choice


def describe_backend(backend: str | None = None) -> dict:
    """A report stanza: the active backend and the numba version."""
    return {
        "kernel_backend": backend or resolve_backend(),
        "numba_version": numba_version(),
        "available_backends": list(available_backends()),
    }


# ---------------------------------------------------------------------------
# the kernel bodies — plain Python, written to be @njit-compilable
# ---------------------------------------------------------------------------
#
# These run in two modes: compiled by numba (the numba tier) or as-is
# (the test suite's "interpreted native" tier, which exercises the exact
# code paths the compiled kernels take without requiring numba).


def _dfs_impl(
    indptr, indices, x, y,
    has_backward, bx, by,
    has_levels, levels, level_v,
    has_intervals, start, post, start_v, post_v,
    visited, stamp, stack,
    u, v, xv, yv, rxv, ryv, budget,
):
    # The FELINE pruned DFS (paper Algorithm 3), bit-identical to
    # FelineIndex._search / FelineBIndex._search.  Returns
    # (code, expanded, pruned): code 0 = not reachable, 1 = reachable,
    # 2 = step budget exhausted at the vertex just expanded.
    expanded = 0
    pruned = 0
    visited[u] = stamp
    stack[0] = u
    top = 1
    while top > 0:
        top -= 1
        w = stack[top]
        expanded += 1
        if budget >= 0 and expanded > budget:
            return 2, expanded, pruned
        for k in range(indptr[w], indptr[w + 1]):
            child = indices[k]
            if child == v:
                return 1, expanded, pruned
            if visited[child] == stamp:
                continue
            visited[child] = stamp
            if x[child] > xv or y[child] > yv:
                pruned += 1
                continue
            if has_backward and (bx[child] < rxv or by[child] < ryv):
                pruned += 1
                continue
            if has_levels and levels[child] >= level_v:
                pruned += 1
                continue
            if has_intervals and start[child] <= start_v and post_v <= post[child]:
                return 1, expanded, pruned
            stack[top] = child
            top += 1
    return 0, expanded, pruned


def _bibfs_impl(
    out_indptr, out_indices, in_indptr, in_indices,
    fwd_seen, bwd_seen, stamp,
    buf_a, buf_b, buf_c, buf_d,
    source, target, budget,
):
    # Bidirectional BFS, bit-identical to
    # repro.graph.traversal.bidirectional_reachable /
    # bounded_bidirectional_reachable.  Returns (code, expanded):
    # code 0 = not reachable, 1 = reachable, 2 = budget hit at the
    # vertex just charged.
    fwd_seen[source] = stamp
    bwd_seen[target] = stamp
    fwd_cur = buf_a
    bwd_cur = buf_b
    fwd_spare = buf_c
    bwd_spare = buf_d
    fwd_cur[0] = source
    bwd_cur[0] = target
    fwd_len = 1
    bwd_len = 1
    expanded = 0
    while fwd_len > 0 and bwd_len > 0:
        forward = fwd_len <= bwd_len
        if forward:
            frontier, flen = fwd_cur, fwd_len
            seen, other = fwd_seen, bwd_seen
            indptr, indices = out_indptr, out_indices
            nxt = fwd_spare
        else:
            frontier, flen = bwd_cur, bwd_len
            seen, other = bwd_seen, fwd_seen
            indptr, indices = in_indptr, in_indices
            nxt = bwd_spare
        nlen = 0
        for fi in range(flen):
            w = frontier[fi]
            expanded += 1
            if budget >= 0 and expanded > budget:
                return 2, expanded
            for k in range(indptr[w], indptr[w + 1]):
                child = indices[k]
                if other[child] == stamp:
                    return 1, expanded
                if seen[child] != stamp:
                    seen[child] = stamp
                    nxt[nlen] = child
                    nlen += 1
        if forward:
            fwd_spare = fwd_cur
            fwd_cur = nxt
            fwd_len = nlen
        else:
            bwd_spare = bwd_cur
            bwd_cur = nxt
            bwd_len = nlen
    return 0, expanded


def _compile_tier(decorate):
    """Build the (dfs, batch, bibfs) callables through ``decorate``.

    ``decorate`` is ``numba.njit`` for the compiled tier and the
    identity function for the test suite's interpreted tier; the batch
    sweep closes over the (possibly compiled) dfs so numba inlines the
    per-pair call.
    """
    dfs = decorate(_dfs_impl)
    bibfs = decorate(_bibfs_impl)

    def _batch_impl(
        indptr, indices, x, y,
        has_backward, bx, by,
        has_levels, levels,
        has_intervals, start, post,
        visited, stamp0, stack,
        us, vs, answers, expanded_out, pruned_out,
    ):
        # The batch survivor sweep: one native call answers every
        # deduplicated survivor pair, with per-pair stats deltas so the
        # caller can apply multiplicity weights.  Per-pair stamps mirror
        # the scalar path's one-bump-per-search.
        for i in range(len(us)):
            u = us[i]
            v = vs[i]
            xv = x[v]
            yv = y[v]
            rxv = 0
            ryv = 0
            if has_backward:
                rxv = bx[v]
                ryv = by[v]
            level_v = 0
            if has_levels:
                level_v = levels[v]
            start_v = 0
            post_v = 0
            if has_intervals:
                start_v = start[v]
                post_v = post[v]
            code, expanded, pruned = dfs(
                indptr, indices, x, y,
                has_backward, bx, by,
                has_levels, levels, level_v,
                has_intervals, start, post, start_v, post_v,
                visited, stamp0 + i + 1, stack,
                u, v, xv, yv, rxv, ryv, -1,
            )
            answers[i] = code == 1
            expanded_out[i] = expanded
            pruned_out[i] = pruned

    batch = decorate(_batch_impl)
    return {"dfs": dfs, "bibfs": bibfs, "batch": batch}


# The lazily-compiled numba tier (or, in tests, an interpreted stand-in
# installed by monkeypatching this module attribute).
_native: dict | None = None


def _native_tier() -> dict:
    global _native
    if _native is None:
        from numba import njit

        _native = _compile_tier(njit(cache=False, nogil=True))
    return _native


# ---------------------------------------------------------------------------
# shared numpy helpers (order-preserving, hence bit-identical)
# ---------------------------------------------------------------------------


def _ordered_unique(values: np.ndarray) -> np.ndarray:
    """First occurrences of ``values`` in their original order."""
    uniq, first = np.unique(values, return_index=True)
    if len(uniq) == len(values):
        return values
    first.sort()
    return values[first]


def _stamp_view(buffer) -> np.ndarray:
    """A writable numpy view over an ``array('l')`` stamp buffer."""
    if len(buffer) == 0:
        return _EMPTY_I64
    return np.frombuffer(buffer, dtype=np.dtype(f"i{buffer.itemsize}"))


def _gather(indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray):
    """All CSR neighbours of ``frontier``, concatenated in frontier order."""
    starts = indptr[frontier]
    counts = indptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return None
    shifts = np.cumsum(counts) - counts
    pos = np.repeat(starts - shifts, counts) + np.arange(total, dtype=np.int64)
    return indices[pos]


# ---------------------------------------------------------------------------
# FELINE pruned-DFS kernels
# ---------------------------------------------------------------------------


class _FelineKernelBase:
    """Per-index state shared by the FELINE DFS kernels.

    Holds both representations of every structure the search touches:
    the ``array`` objects for scalar-path indexing (fast Python-int
    access) and the ``int64`` numpy views for vectorized/compiled work —
    both views of the *same* memory, so the tiers interoperate and the
    timestamped visited buffer stays coherent across backends.
    """

    backend = "abstract"

    def __init__(self, index, forward, backward=None) -> None:
        self._index = index
        self.dispatch_counter = None
        graph = index.graph
        csr = graph.csr()
        self._indptr = graph.out_indptr
        self._indices = graph.out_indices
        self._indptr_np = csr.out_indptr
        self._indices_np = csr.out_indices
        self._x, self._y = forward.x, forward.y
        fv = forward.views
        self._x_np, self._y_np = fv.x, fv.y
        self._levels = forward.levels
        self._levels_np = fv.levels
        self._intervals = forward.tree_intervals
        self._start_np, self._post_np = fv.start, fv.post
        self._has_backward = backward is not None
        if backward is not None:
            self._bx, self._by = backward.x, backward.y
            bv = backward.views
            self._bx_np, self._by_np = bv.x, bv.y
        else:
            self._bx = self._by = None
            self._bx_np = self._by_np = _EMPTY_I64
        self._visited_np = _stamp_view(index._visited)

    def _python_fallback(self, u, v, xv, yv, rxv, ryv):
        index = self._index
        if self._has_backward:
            return index._search_python(u, v, xv, yv, rxv, ryv)
        return index._search_python(u, v, xv, yv)


class NumpyFelineKernel(_FelineKernelBase):
    """The numpy tier: Python traversal order, vectorized wide slices.

    The DFS keeps the exact LIFO pop loop of the python tier (so the
    :class:`~repro.resilience.budget.SearchGuard` — steps *and*
    deadlines — works natively), but a neighbour slice of at least
    :data:`VECTOR_MIN_DEGREE` children is processed with numpy: target
    hit, first-occurrence dedup, visited marking, coordinate/level
    prunes and the interval positive-cut, all order-preserving.
    """

    backend = "numpy"

    def search(self, u, v, xv, yv, rxv=0, ryv=0):
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        index = self._index
        stats = index.stats
        guard = index._guard
        indptr = self._indptr
        indices = self._indices
        x, y = self._x, self._y
        bx, by = self._bx, self._by
        has_backward = self._has_backward
        levels = self._levels
        intervals = self._intervals
        level_v = levels[v] if levels is not None else 0
        vec_min = VECTOR_MIN_DEGREE

        index._stamp += 1
        stamp = index._stamp
        visited = index._visited
        visited[u] = stamp
        stack = [u]
        while stack:
            w = stack.pop()
            stats.expanded += 1
            if guard is not None:
                guard.step()
            lo = indptr[w]
            hi = indptr[w + 1]
            if hi - lo < vec_min:
                # The scalar path — the python tier's loop verbatim.
                for k in range(lo, hi):
                    child = indices[k]
                    if child == v:
                        return True
                    if visited[child] == stamp:
                        continue
                    visited[child] = stamp
                    if x[child] > xv or y[child] > yv:
                        stats.pruned += 1
                        continue
                    if has_backward and (bx[child] < rxv or by[child] < ryv):
                        stats.pruned += 1
                        continue
                    if levels is not None and levels[child] >= level_v:
                        stats.pruned += 1
                        continue
                    if intervals is not None and intervals.contains(child, v):
                        return True
                    stack.append(child)
            else:
                if self._expand_wide(
                    lo, hi, v, stamp, xv, yv, rxv, ryv, level_v, stats, stack
                ):
                    return True
        return False

    def _expand_wide(
        self, lo, hi, v, stamp, xv, yv, rxv, ryv, level_v, stats, stack
    ) -> bool:
        """Vectorized processing of one wide neighbour slice.

        Returns ``True`` when the search concludes positively (target
        hit or interval positive-cut); otherwise pushes the surviving
        children in slice order and returns ``False``.  ``pruned``
        counting honours the sequential contract: children past an
        early positive exit are never counted.
        """
        children = self._indices_np[lo:hi]
        eq = children == v
        target_hit = bool(eq.any())
        if target_hit:
            # Children past the first target occurrence are never
            # processed by the sequential loop.
            children = children[: int(eq.argmax())]
            if children.size == 0:
                return True
        visited_np = self._visited_np
        cand = children[visited_np[children] != stamp]
        if cand.size:
            cand = _ordered_unique(cand)
            visited_np[cand] = stamp
            prune = (self._x_np[cand] > xv) | (self._y_np[cand] > yv)
            if self._has_backward:
                prune |= (self._bx_np[cand] < rxv) | (self._by_np[cand] < ryv)
            if self._levels_np is not None:
                prune |= self._levels_np[cand] >= level_v
            if self._start_np is not None:
                intervals = self._intervals
                positive = ~prune
                positive &= self._start_np[cand] <= intervals.start[v]
                positive &= intervals.post[v] <= self._post_np[cand]
                if positive.any():
                    first = int(positive.argmax())
                    stats.pruned += int(prune[:first].sum())
                    return True
            stats.pruned += int(prune.sum())
            survivors = cand[~prune]
            if survivors.size:
                stack.extend(survivors.tolist())
        return target_hit


class NumbaFelineKernel(_FelineKernelBase):
    """The numba tier: the whole DFS in one compiled call.

    Step budgets run inside the kernel (remaining-step countdown, exact
    raise point); deadline-carrying guards route to the python tier.
    Also provides :meth:`search_batch`, the engine's one-call survivor
    sweep.
    """

    backend = "numba"

    def __init__(self, index, forward, backward=None) -> None:
        super().__init__(index, forward, backward)
        self._stack = np.empty(index.graph.num_vertices + 1, dtype=np.int64)
        native = _native_tier()
        self._dfs = native["dfs"]
        self._batch = native["batch"]

    def search(self, u, v, xv, yv, rxv=0, ryv=0):
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        index = self._index
        guard = index._guard
        if guard is not None and guard.deadline_at is not None:
            # Wall-clock deadlines can't be enforced bit-identically
            # from compiled code; the python loop checks the real clock.
            return self._python_fallback(u, v, xv, yv, rxv, ryv)
        budget = -1 if guard is None else guard.max_steps - guard.steps
        levels = self._levels
        intervals = self._intervals
        level_v = levels[v] if levels is not None else 0
        start_v = intervals.start[v] if intervals is not None else 0
        post_v = intervals.post[v] if intervals is not None else 0
        index._stamp += 1
        code, expanded, pruned = self._dfs(
            self._indptr_np, self._indices_np, self._x_np, self._y_np,
            self._has_backward, self._bx_np, self._by_np,
            levels is not None,
            self._levels_np if levels is not None else _EMPTY_I64,
            level_v,
            intervals is not None,
            self._start_np if intervals is not None else _EMPTY_I64,
            self._post_np if intervals is not None else _EMPTY_I64,
            start_v, post_v,
            self._visited_np, index._stamp, self._stack,
            int(u), int(v), int(xv), int(yv), int(rxv), int(ryv), budget,
        )
        stats = index.stats
        stats.expanded += expanded
        stats.pruned += pruned
        if guard is not None:
            guard.steps += expanded
            if code == 2:
                raise QueryBudgetExceeded(
                    f"query exceeded its step budget of {guard.max_steps}",
                    resource="steps",
                    steps=guard.steps,
                    elapsed_s=perf_counter() - guard.start,
                )
        return code == 1

    def search_batch(self, us: np.ndarray, vs: np.ndarray):
        """Answer deduplicated survivor pairs in one compiled call.

        Returns ``(answers, expanded, pruned)`` per-pair arrays; the
        caller folds the deltas (with multiplicity weights) into
        :class:`QueryStats`.  Stats and guard are deliberately not
        touched here.
        """
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        index = self._index
        m = len(us)
        answers = np.zeros(m, dtype=bool)
        expanded = np.zeros(m, dtype=np.int64)
        pruned = np.zeros(m, dtype=np.int64)
        levels = self._levels
        intervals = self._intervals
        stamp0 = index._stamp
        self._batch(
            self._indptr_np, self._indices_np, self._x_np, self._y_np,
            self._has_backward, self._bx_np, self._by_np,
            levels is not None,
            self._levels_np if levels is not None else _EMPTY_I64,
            intervals is not None,
            self._start_np if intervals is not None else _EMPTY_I64,
            self._post_np if intervals is not None else _EMPTY_I64,
            self._visited_np, stamp0, self._stack,
            np.ascontiguousarray(us, dtype=np.int64),
            np.ascontiguousarray(vs, dtype=np.int64),
            answers, expanded, pruned,
        )
        index._stamp = stamp0 + m
        return answers, expanded, pruned


def feline_kernel(index, backend: str, forward, backward=None):
    """The pruned-DFS kernel for a FELINE-family index, or ``None``.

    ``None`` (the python tier) keeps the family's original ``_search``
    loop.  ``forward``/``backward`` are the
    :class:`~repro.core.index.FelineCoordinates` the search prunes with
    (``backward`` only for FELINE-B).
    """
    if backend == "python":
        return None
    if backend == "numba":
        return NumbaFelineKernel(index, forward, backward)
    return NumpyFelineKernel(index, forward, backward)


# ---------------------------------------------------------------------------
# bidirectional-BFS kernels (the bibfs family and the budget fallback)
# ---------------------------------------------------------------------------


class _BiBFSKernelBase:
    """Per-graph state for the bidirectional-BFS kernels.

    Keyed by graph (see :func:`bibfs_kernel_for`) so the ``bibfs``
    family and every index's bounded-fallback degradation path share
    one set of preallocated buffers per graph.
    """

    backend = "abstract"

    def __init__(self, graph) -> None:
        from array import array

        self._graph = graph
        csr = graph.csr()
        self._out_indptr_np = csr.out_indptr
        self._out_indices_np = csr.out_indices
        self._in_indptr_np = csr.in_indptr
        self._in_indices_np = csr.in_indices
        self._out_indptr = graph.out_indptr
        self._out_indices = graph.out_indices
        self._in_indptr = graph.in_indptr
        self._in_indices = graph.in_indices
        n = graph.num_vertices
        self._fwd_seen = array("l", bytes(array("l").itemsize * n))
        self._bwd_seen = array("l", bytes(array("l").itemsize * n))
        self._fwd_seen_np = _stamp_view(self._fwd_seen)
        self._bwd_seen_np = _stamp_view(self._bwd_seen)
        self._stamp = 0
        self.dispatch_counter = None

    def run(self, source, target, guard=None) -> bool:
        """Unbounded bidirectional reachability (guard-aware)."""
        raise NotImplementedError

    def run_bounded(self, source, target, max_nodes) -> bool | None:
        """Node-capped bidirectional reachability (``None`` = cap hit)."""
        raise NotImplementedError


class NumpyBiBFSKernel(_BiBFSKernelBase):
    """Level-synchronous vectorized frontier expansion.

    Frontiers are expanded as whole numpy gathers when wide enough and
    when the node cap cannot strike mid-frontier; otherwise the scalar
    loop (the python tier verbatim, on the shared stamp buffers) takes
    over, preserving the sequential True-vs-cap ordering exactly.
    Guard-carrying runs stay entirely on the scalar loop — the guard's
    raise point is mid-frontier-sequential by definition.
    """

    backend = "numpy"

    def run(self, source, target, guard=None) -> bool:
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        if guard is not None:
            from repro.graph.traversal import bidirectional_reachable

            return bidirectional_reachable(self._graph, source, target, guard)
        code = self._run_impl(source, target, -1)
        return code == 1

    def run_bounded(self, source, target, max_nodes) -> bool | None:
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        code = self._run_impl(source, target, max_nodes)
        if code == 2:
            return None
        return code == 1

    def _run_impl(self, source, target, budget: int) -> int:
        if source == target:
            return 1
        self._stamp += 1
        stamp = self._stamp
        fwd_seen, bwd_seen = self._fwd_seen, self._bwd_seen
        fwd_seen[source] = stamp
        bwd_seen[target] = stamp
        fwd_frontier = [source]
        bwd_frontier = [target]
        expanded = 0
        vec_min = VECTOR_MIN_DEGREE
        while fwd_frontier and bwd_frontier:
            forward = len(fwd_frontier) <= len(bwd_frontier)
            if forward:
                frontier = fwd_frontier
                seen, seen_np = fwd_seen, self._fwd_seen_np
                other, other_np = bwd_seen, self._bwd_seen_np
                indptr, indices = self._out_indptr, self._out_indices
                indptr_np = self._out_indptr_np
                indices_np = self._out_indices_np
            else:
                frontier = bwd_frontier
                seen, seen_np = bwd_seen, self._bwd_seen_np
                other, other_np = fwd_seen, self._fwd_seen_np
                indptr, indices = self._in_indptr, self._in_indices
                indptr_np = self._in_indptr_np
                indices_np = self._in_indices_np
            flen = len(frontier)
            fits = budget < 0 or expanded + flen <= budget
            if flen < vec_min or not fits:
                # Scalar frontier — the python tier's loop verbatim,
                # so the budget can strike at the exact vertex it
                # would have in sequential order.
                next_frontier = []
                for w in frontier:
                    expanded += 1
                    if budget >= 0 and expanded > budget:
                        return 2
                    for k in range(indptr[w], indptr[w + 1]):
                        child = indices[k]
                        if other[child] == stamp:
                            return 1
                        if seen[child] != stamp:
                            seen[child] = stamp
                            next_frontier.append(child)
            else:
                expanded += flen
                neighbours = _gather(
                    indptr_np, indices_np,
                    np.fromiter(frontier, dtype=np.int64, count=flen),
                )
                if neighbours is None:
                    next_frontier = []
                else:
                    if bool((other_np[neighbours] == stamp).any()):
                        return 1
                    fresh = neighbours[seen_np[neighbours] != stamp]
                    if fresh.size:
                        fresh = _ordered_unique(fresh)
                        seen_np[fresh] = stamp
                        next_frontier = fresh.tolist()
                    else:
                        next_frontier = []
            if forward:
                fwd_frontier = next_frontier
            else:
                bwd_frontier = next_frontier
        return 0


class NumbaBiBFSKernel(_BiBFSKernelBase):
    """The compiled bidirectional BFS (steps-budget aware)."""

    backend = "numba"

    def __init__(self, graph) -> None:
        super().__init__(graph)
        n = graph.num_vertices
        self._bufs = tuple(
            np.empty(n + 1, dtype=np.int64) for _ in range(4)
        )
        self._bibfs = _native_tier()["bibfs"]

    def _run_native(self, source, target, budget: int):
        self._stamp += 1
        buf_a, buf_b, buf_c, buf_d = self._bufs
        return self._bibfs(
            self._out_indptr_np, self._out_indices_np,
            self._in_indptr_np, self._in_indices_np,
            self._fwd_seen_np, self._bwd_seen_np, self._stamp,
            buf_a, buf_b, buf_c, buf_d,
            int(source), int(target), budget,
        )

    def run(self, source, target, guard=None) -> bool:
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        if guard is not None and guard.deadline_at is not None:
            from repro.graph.traversal import bidirectional_reachable

            return bidirectional_reachable(self._graph, source, target, guard)
        if source == target:
            return True
        budget = -1 if guard is None else guard.max_steps - guard.steps
        code, expanded = self._run_native(source, target, budget)
        if guard is not None:
            guard.steps += expanded
            if code == 2:
                raise QueryBudgetExceeded(
                    f"query exceeded its step budget of {guard.max_steps}",
                    resource="steps",
                    steps=guard.steps,
                    elapsed_s=perf_counter() - guard.start,
                )
        return code == 1

    def run_bounded(self, source, target, max_nodes) -> bool | None:
        counter = self.dispatch_counter
        if counter is not None:
            counter.inc()
        if source == target:
            return True
        code, _ = self._run_native(source, target, max_nodes)
        if code == 2:
            return None
        return code == 1


class PythonBiBFSKernel(_BiBFSKernelBase):
    """The python tier behind the shared per-graph kernel cache.

    Delegates to :mod:`repro.graph.traversal` (which reuses its own
    per-graph scratch buffers); exists so :func:`bounded_search` can
    treat every tier uniformly.
    """

    backend = "python"

    def __init__(self, graph) -> None:
        # No buffers of our own — traversal.py holds the scratch.
        self._graph = graph
        self.dispatch_counter = None

    def run(self, source, target, guard=None) -> bool:
        from repro.graph.traversal import bidirectional_reachable

        return bidirectional_reachable(self._graph, source, target, guard)

    def run_bounded(self, source, target, max_nodes) -> bool | None:
        from repro.graph.traversal import bounded_bidirectional_reachable

        return bounded_bidirectional_reachable(
            self._graph, source, target, max_nodes
        )


_BIBFS_KERNELS: "WeakKeyDictionary" = WeakKeyDictionary()


def bibfs_kernel_for(graph, backend: str | None = None):
    """The per-graph bidirectional-BFS kernel for ``backend`` (cached).

    One kernel per ``(graph, backend)`` pair, shared between the
    ``bibfs`` index family and every budget fallback on that graph.
    """
    backend = resolve_backend(backend)
    per_graph = _BIBFS_KERNELS.get(graph)
    if per_graph is None:
        per_graph = {}
        _BIBFS_KERNELS[graph] = per_graph
    kernel = per_graph.get(backend)
    if kernel is None:
        if backend == "numba":
            kernel = NumbaBiBFSKernel(graph)
        elif backend == "numpy":
            kernel = NumpyBiBFSKernel(graph)
        else:
            kernel = PythonBiBFSKernel(graph)
        per_graph[backend] = kernel
    return kernel


def bounded_search(graph, source, target, max_nodes, backend=None):
    """Node-capped bidirectional reachability through the kernel tiers.

    The engine behind
    :func:`repro.resilience.budget.bounded_fallback`; bit-identical
    ``True``/``False``/``None`` across every backend.
    """
    return bibfs_kernel_for(graph, backend).run_bounded(
        source, target, max_nodes
    )
