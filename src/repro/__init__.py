"""repro — a from-scratch reproduction of FELINE (EDBT 2014).

FELINE (*Fast rEfined onLINE search*, Veloso, Cerf, Meira Jr & Zaki)
answers reachability queries on very large directed graphs by drawing the
DAG in the plane with two topological orderings and cutting impossible
queries in constant time.  This package implements FELINE, its variants
(FELINE-I, FELINE-B), every baseline of the paper's evaluation (GRAIL,
FERRARI, Nuutila's INTERVAL, TF-Label), the SCARAB boosting framework, and
the full benchmark suite regenerating the paper's tables and figures.

Quick start
-----------
>>> import repro
>>> r = repro.Reachability([(0, 1), (1, 2), (3, 2)])
>>> r.reachable(0, 2)
True
>>> r.reachable(2, 0)
False

The :class:`Reachability` facade accepts *any* directed graph — cycles are
condensed automatically.  Power users work with the index classes directly
on DAGs (:class:`repro.core.FelineIndex` and friends), through the method
registry (:func:`repro.baselines.create_index`).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro import obs
from repro.baselines.base import (
    QueryStats,
    ReachabilityIndex,
    available_methods,
    create_index,
)
from repro.exceptions import InvalidVertexError, ReproError
from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.resilience import UNKNOWN, QueryBudget

# Importing these modules registers every built-in method in the factory.
import repro.baselines  # noqa: F401  (registration side effect)
import repro.core  # noqa: F401
import repro.scarab  # noqa: F401

__version__ = "1.1.0"

__all__ = [
    "Reachability",
    "DiGraph",
    "available_methods",
    "create_index",
    "QueryStats",
    "QueryBudget",
    "UNKNOWN",
    "InvalidVertexError",
    "ReproError",
    "api",
    "obs",
    "__version__",
]


class Reachability:
    """High-level reachability oracle over an arbitrary directed graph.

    Handles the paper's preprocessing transparently: the input graph is
    condensed (every strongly connected component folded into one vertex,
    Tarjan's algorithm) and the chosen index is built on the resulting
    DAG.  Queries map vertices through the SCC function first, so two
    vertices in the same component are mutually reachable, as expected.

    Parameters
    ----------
    graph:
        A :class:`DiGraph` or an iterable of ``(u, v)`` edges over dense
        integer vertex ids.
    method:
        Registry name of the index to build (default ``"feline"``; see
        :func:`available_methods`).
    workers:
        Worker processes for batch survivor searches (default ``0`` —
        everything in process).  With ``workers >= 2`` a
        :class:`repro.perf.SearchPool` is attached after the build, so
        :meth:`reachable_many` parallelizes the pairs its O(1) cuts
        cannot decide; see ``docs/PERFORMANCE.md`` for when that helps.
    observers:
        Number of O'Reach-style supporting vertices to select at build
        time (default ``0`` — no observer layer).  With ``observers >=
        1`` an :class:`repro.perf.ObserverLayer` is built over the
        condensed DAG and consulted *before* the index's own cuts on
        every query — scalar and batch — shrinking the set of pairs
        that need an online search; see ``docs/PERFORMANCE.md``.
    kernel:
        Search-kernel backend for the survivor path: ``"auto"``/``None``
        (strongest available tier — numba when installed, else numpy),
        or an explicit ``"numba"`` / ``"numpy"`` / ``"python"``; every
        backend is bit-identical in answers and stats (see
        :mod:`repro.perf.kernels`).
    shared_pages:
        Move the index's read-only numpy pages into a shared-memory
        arena (:class:`repro.perf.SharedIndexPages`) after the build, so
        pool/fork workers map one physical copy.  Default ``False``;
        ``workers >= 2`` enables it implicitly for the pool.
    **params:
        Forwarded to the index constructor (e.g. ``num_labelings=5`` for
        GRAIL).
    """

    def __init__(
        self,
        graph: DiGraph | Iterable[tuple[int, int]],
        method: str = "feline",
        workers: int = 0,
        observers: int = 0,
        kernel: str | None = None,
        shared_pages: bool = False,
        **params,
    ) -> None:
        if not isinstance(graph, DiGraph):
            graph = DiGraph.from_edges(graph)
        self.graph = graph
        registry = obs.get_registry()
        with registry.phase("facade.init", "condense"):
            self.condensation = condense(graph)
        index: ReachabilityIndex = create_index(
            method, self.condensation.dag, **params
        )
        if kernel is not None:
            index.set_kernel(kernel)  # validates before the build runs
        self.index = index.build()
        if observers:
            from repro.perf.observers import build_observers

            with registry.phase("facade.init", "observers"):
                self.index.attach_observers(
                    build_observers(self.condensation.dag, k=observers)
                )
        if shared_pages:
            self.index.enable_shared_pages()
        if workers and workers > 1:
            self.index.enable_search_pool(workers)

    def enable_search_pool(self, workers: int, min_batch: int = 32):
        """Attach (``workers >= 2``) or detach (``<= 1``) the survivor
        pool on the underlying index; returns the pool or ``None``."""
        return self.index.enable_search_pool(workers, min_batch=min_batch)

    def close_search_pool(self) -> None:
        """Terminate the survivor-search pool, if one is attached."""
        self.index.close_search_pool()

    def set_kernel(self, kernel: str | None) -> str:
        """Select the search-kernel backend; returns the resolved name."""
        return self.index.set_kernel(kernel)

    @property
    def kernel_backend(self) -> str:
        """The bound search-kernel backend (see :mod:`repro.perf.kernels`)."""
        return self.index.kernel_backend

    def enable_shared_pages(self):
        """Move the index's read-only pages into shared memory; returns
        the :class:`repro.perf.SharedIndexPages` arena (``None`` = COW
        fallback)."""
        return self.index.enable_shared_pages()

    @property
    def shared_pages(self):
        """The attached shared-memory arena, or ``None``."""
        return self.index.shared_pages

    def close(self) -> None:
        """Release process-level resources: the survivor-search pool and
        the shared-memory arena (idempotent; queries keep working)."""
        self.index.close_search_pool()
        self.index.close_shared_pages()

    def __enter__(self) -> "Reachability":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _map_vertex(self, vertex: int) -> int:
        if vertex < 0 or vertex >= self.graph.num_vertices:
            raise InvalidVertexError(vertex, self.graph.num_vertices)
        return self.condensation.scc_of[vertex]

    def reachable(self, u: int, v: int, budget: QueryBudget | None = None):
        """Whether there is a directed path from ``u`` to ``v``.

        With a :class:`QueryBudget`, the answer may degrade to
        :data:`UNKNOWN` (or raise) per the budget's policy — it is never
        a wrong ``True``/``False``.
        """
        return self.index.query(
            self._map_vertex(u), self._map_vertex(v), budget=budget
        )

    def reachable_many(
        self,
        pairs: Sequence[tuple[int, int]] | Iterable[tuple[int, int]],
        budget: QueryBudget | None = None,
    ) -> list:
        """Answer a batch of ``(u, v)`` pairs; aligned list of answers.

        Pairs are mapped through the SCC condensation once and routed to
        the index's batch path (:meth:`ReachabilityIndex.query_many`), so
        indexes with a vectorized implementation — FELINE's numpy cuts —
        answer the whole batch without per-pair Python dispatch.
        Equivalent to ``[self.reachable(u, v) for u, v in pairs]``; the
        optional ``budget`` applies per query, as in :meth:`reachable`.
        """
        mapped = [
            (self._map_vertex(u), self._map_vertex(v)) for u, v in pairs
        ]
        return list(self.index.query_many(mapped, budget=budget))

    def explain(self, u: int, v: int, budget: QueryBudget | None = None):
        """Answer ``r(u, v)`` with full provenance — why this verdict?

        Returns a :class:`repro.obs.QueryExplanation`: the verdict
        (always equal to :meth:`reachable` on the same pair), which O(1)
        cut fired or how far the online search went, the structures
        consulted, the elapsed time, and any budget consumption.  Two
        distinct vertices in one strongly connected component report the
        ``same-scc`` cut; the condensed ids appear under
        ``details["scc(u)"]`` / ``details["scc(v)"]``.
        """
        mu, mv = self._map_vertex(u), self._map_vertex(v)
        explanation = self.index.explain(mu, mv, budget=budget)
        explanation.details["scc(u)"] = mu
        explanation.details["scc(v)"] = mv
        explanation.u, explanation.v = u, v
        if u != v and explanation.cut == "equal":
            explanation.cut = "same-scc"
        return explanation

    def enable_slow_log(
        self,
        threshold_ms: float = 1.0,
        capacity: int = 128,
        mode: str = "threshold",
        seed: int = 0,
    ):
        """Attach a slow-query log to the underlying index; returns it.

        Scalar and batch queries are then timed per pair and queries at
        or above ``threshold_ms`` retained in a bounded ring buffer
        (``mode="reservoir"`` samples everything uniformly instead) —
        see :class:`repro.obs.SlowQueryLog`.  Serve it live with
        :class:`repro.obs.ObsServer` or read ``slow_log.records()``.
        """
        from repro.obs.slowlog import SlowQueryLog

        log = SlowQueryLog(
            capacity=capacity,
            threshold_ns=int(threshold_ms * 1e6),
            mode=mode,
            seed=seed,
        )
        return self.index.attach_slow_log(log)

    @property
    def slow_log(self):
        """The attached :class:`repro.obs.SlowQueryLog`, or ``None``."""
        return self.index.slow_log

    @property
    def stats(self) -> QueryStats:
        """The underlying index's :class:`QueryStats` counters.

        Facade users read cut/search breakdowns here instead of reaching
        into ``.index.stats``.
        """
        return self.index.stats

    def witness_path(self, u: int, v: int) -> list[int] | None:
        """An actual path from ``u`` to ``v`` in the *original* graph.

        Answers the index first (cheap no), then runs a BFS on the
        original graph for the witness — O(|V| + |E|), paid only when a
        path exists and is explicitly requested.
        """
        if not self.reachable(u, v):
            return None
        from repro.graph.paths import find_path

        return find_path(self.graph, u, v)

    def __repr__(self) -> str:
        return (
            f"<Reachability method={self.index.method_name!r} "
            f"|V|={self.graph.num_vertices} |E|={self.graph.num_edges} "
            f"sccs={self.condensation.num_components}>"
        )


# The stable surface; imported last because it re-exports Reachability.
from repro import api  # noqa: E402,F401  (see repro.api docstring)
