"""The request coalescer: concurrent pairs → one vectorized cut pass.

FELINE answers most pairs in O(1), but a naive server still pays a full
Python dispatch per request.  Continuous batching fixes that: requests
arriving within a short window are gathered and answered through **one**
``query_many`` call, whose vectorized cut pass classifies the whole
batch in a few numpy ops (survivors optionally fan out to the index's
:class:`~repro.perf.pool.SearchPool`).  Answers are bit-identical to
issuing each query alone — that is the batch engine's contract, and the
property suite re-asserts it through this layer.

The coalescer lives on the server's event loop; queries execute on a
**single** dedicated executor thread, because an index is not safe for
concurrent querying (budget guards and stats counters are instance
state).  Flushes therefore serialize naturally while the event loop
keeps accepting traffic.

Instrumentation (when metrics are enabled): every flush observes
``repro_serve_coalesce_batch_size`` and, per request,
``repro_serve_queue_wait_seconds`` — the two histograms that make the
coalescing win measurable on ``/metrics``.
"""

from __future__ import annotations

import asyncio
import contextvars
from collections.abc import Callable, Sequence

from repro.obs.metrics import COUNT_BUCKETS, get_registry
from repro.obs.spans import get_tracer
from repro.obs.timing import now_ns

__all__ = ["Coalescer", "CoalescerClosed"]


class CoalescerClosed(RuntimeError):
    """Submitting to a draining/drained coalescer (server shutting down)."""


class Coalescer:
    """Gather concurrent pair submissions into batched engine calls.

    Parameters
    ----------
    answer_batch:
        ``answer_batch(pairs, budget) -> list`` — the blocking batch
        call (e.g. wrapping ``Reachability.reachable_many``), executed
        on ``executor``.  ``budget`` is whatever the submissions carried
        (``None`` when they carried nothing).
    max_batch:
        Flush as soon as this many pairs are pending (``1`` = flush per
        submission, the uncoalesced baseline).
    max_wait_s:
        Flush at the latest this long after the first pending pair
        (``0`` = next event-loop tick).
    executor:
        The single-threaded executor queries run on; the caller owns its
        lifecycle.
    registry_fn:
        Zero-arg callable returning the metrics registry to observe
        into; defaults to the process-wide :func:`get_registry`.  The
        server passes its own so a private registry (as in loadgen
        comparisons) still sees the histograms.
    """

    def __init__(
        self,
        answer_batch: Callable[[list[tuple[int, int]]], Sequence],
        *,
        max_batch: int,
        max_wait_s: float,
        executor,
        registry_fn: Callable[[], object] | None = None,
    ) -> None:
        self._answer_batch = answer_batch
        self.max_batch = max_batch
        self.max_wait_s = max_wait_s
        self._executor = executor
        self._registry_fn = registry_fn if registry_fn is not None else get_registry
        self._loop = asyncio.get_running_loop()
        # Pending entries: (u, v, budget, future, enqueued_ns, queue_span).
        # The queue span (None when tracing is off) is created at submit
        # time — under the request's ambient ``serve.request`` span, so it
        # inherits the request's trace — and ended when its batch
        # dispatches, making per-request queue wait visible in the trace.
        self._pending: list[tuple] = []
        self._timer = None
        self._tasks: set[asyncio.Task] = set()
        self._closed = False
        # Lifetime totals, served under /metrics and in loadgen reports.
        self.batches = 0
        self.coalesced_pairs = 0

    # -- submission -----------------------------------------------------
    async def submit(self, u: int, v: int, budget=None):
        """Enqueue one pair; resolves to its ternary answer."""
        return (await self.submit_many([(u, v)], budget=budget))[0]

    async def submit_many(
        self, pairs: Sequence[tuple[int, int]], budget=None
    ) -> list:
        """Enqueue several pairs at once; resolves to aligned answers.

        The pairs join the *same* pending batch as concurrent single-pair
        submissions, so a ``POST /reach_many`` shares its cut pass with
        whatever ``GET /reach`` traffic is in flight.  ``budget`` rides
        along per pair (a request-scoped deadline); a flush dispatches
        one engine call per distinct budget so a deadline never leaks
        onto batch mates that did not ask for one.
        """
        if self._closed:
            raise CoalescerClosed("coalescer is draining; no new queries")
        enqueued = now_ns()
        tracer = get_tracer()
        traced = tracer.enabled
        futures = []
        for u, v in pairs:
            future = self._loop.create_future()
            queue_span = (
                tracer.span("serve.queue", u=u, v=v) if traced else None
            )
            self._pending.append((u, v, budget, future, enqueued, queue_span))
            futures.append(future)
            if len(self._pending) >= self.max_batch:
                self.flush()
        if self._pending and self._timer is None:
            if self.max_wait_s <= 0:
                self._timer = self._loop.call_soon(self.flush)
            else:
                self._timer = self._loop.call_later(self.max_wait_s, self.flush)
        return list(await asyncio.gather(*futures))

    @property
    def pending(self) -> int:
        """Pairs waiting for the next flush."""
        return len(self._pending)

    # -- flushing -------------------------------------------------------
    def flush(self) -> None:
        """Cut the pending queue into per-budget batches and dispatch.

        Entries sharing a budget (usually ``None``) still merge into one
        vectorized engine call; distinct request deadlines dispatch
        separately, preserving "a budget applies only to who asked".
        """
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        pending, self._pending = self._pending, []
        groups: dict = {}
        for entry in pending:
            groups.setdefault(entry[2], []).append(entry)
        for budget, batch in groups.items():
            task = self._loop.create_task(self._run_batch(batch, budget))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, batch, budget) -> None:
        started = now_ns()
        size = len(batch)
        self.batches += 1
        self.coalesced_pairs += size
        registry = self._registry_fn()
        if registry.enabled:
            registry.histogram(
                "repro_serve_coalesce_batch_size",
                buckets=COUNT_BUCKETS,
                help="Pairs answered per coalesced engine call.",
            ).observe(size)
            queue_wait = registry.histogram(
                "repro_serve_queue_wait_seconds",
                help="Time a request waited in the coalescer before its "
                "batch was dispatched.",
            )
            for entry in batch:
                queue_wait.observe(max(0, started - entry[4]) * 1e-9)
        pairs = [(u, v) for u, v, *_ in batch]
        tracer = get_tracer()
        if not tracer.enabled:
            try:
                answers = await self._loop.run_in_executor(
                    self._executor, self._answer_batch, pairs, budget
                )
            except BaseException:  # noqa: BLE001 — isolated per request below
                await self._retry_isolated(batch, budget)
                return
        else:
            # Close every request's queue span at dispatch and collect the
            # distinct traces feeding this batch; the flush span carries
            # the trace only when the batch serves a single trace — a
            # coalesced batch belongs to no one request, but the queue
            # spans still link each request to this flush by timing.
            trace_ids: list[int] = []
            for entry in batch:
                queue_span = entry[5]
                if queue_span is None:
                    continue
                queue_span.set_attribute("batch_size", size)
                queue_span.end()
                tid = queue_span.trace_id
                if tid is not None and tid not in trace_ids:
                    trace_ids.append(tid)
            flush_trace = trace_ids[0] if len(trace_ids) == 1 else None
            try:
                with tracer.span(
                    "serve.flush", trace_id=flush_trace, size=size
                ):
                    # run_in_executor does not propagate contextvars; copy
                    # the context (flush span ambient) so the engine spans
                    # recorded on the executor thread parent under it.
                    ctx = contextvars.copy_context()
                    answers = await self._loop.run_in_executor(
                        self._executor,
                        lambda: ctx.run(self._answer_batch, pairs, budget),
                    )
            except BaseException:  # noqa: BLE001 — isolated per request below
                await self._retry_isolated(batch, budget)
                return
        for entry, answer in zip(batch, answers):
            future = entry[3]
            if not future.done():
                future.set_result(answer)

    async def _retry_isolated(self, batch, budget) -> None:
        """Fault isolation: a failed batch is retried pair by pair.

        One poisoned pair (or a transient engine fault) must not fail —
        or hang — its batch mates: every pair gets its own engine call
        and relays only its *own* outcome, so healthy siblings still
        receive real answers and exactly the faulty ones surface errors.
        """
        registry = self._registry_fn()
        if registry.enabled:
            registry.counter(
                "repro_serve_batch_isolation_total",
                help="Coalesced batches that failed wholesale and were "
                "retried pair by pair.",
            ).inc()
        for u, v, _, future, *_ in batch:
            if future.done():
                continue
            try:
                answers = await self._loop.run_in_executor(
                    self._executor, self._answer_batch, [(u, v)], budget
                )
            except BaseException as exc:  # noqa: BLE001 — this pair only
                if not future.done():
                    future.set_exception(exc)
            else:
                if not future.done():
                    future.set_result(answers[0])

    # -- shutdown -------------------------------------------------------
    def close(self) -> None:
        """Refuse new submissions without flushing (non-drain shutdown)."""
        self._closed = True

    async def drain(self) -> None:
        """Refuse new work, flush the queue, await outstanding batches.

        Every pair submitted before the drain began still receives its
        real answer — the no-request-dropped half of the serving tier's
        shutdown contract.
        """
        self._closed = True
        self.flush()
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    @property
    def closed(self) -> bool:
        """Whether :meth:`drain` has begun."""
        return self._closed
