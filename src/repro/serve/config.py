"""Serving-tier configuration: one frozen dataclass, validated upfront.

Every knob of the async serving tier lives here so the CLI, the tests,
and embedding code construct servers from one audited surface.  The
interesting trio:

* ``max_batch`` / ``max_wait_ms`` — the request coalescer's window: a
  flush happens when ``max_batch`` pairs are pending or ``max_wait_ms``
  has elapsed since the first, whichever comes first.  ``max_batch=1``
  disables coalescing (one engine call per request) — the baseline the
  load generator compares against.  The default window of ``0`` ms
  flushes on the next event-loop tick: requests that arrived together
  still merge (under concurrency that is most of them) and nobody waits
  for batch mates, the lowest-latency point of the trade-off.  A
  positive window trades per-request latency for bigger batches.
* ``max_inflight`` / ``overload`` — admission control: once this many
  pairs are admitted and unanswered, new requests are shed with a
  structured 503 + ``Retry-After`` (``overload="shed"``) or degraded to
  an immediate ``unknown`` verdict (``overload="unknown"``), mirroring
  the resilience layer's budget policies.
* ``budget`` — an optional :class:`~repro.resilience.QueryBudget`
  applied to every admitted query; exhaustion degrades per the budget's
  own policy, so an overloaded search can answer ``unknown`` instead of
  holding the queue.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ReproError
from repro.resilience import QueryBudget

__all__ = ["ServeConfig", "OVERLOAD_POLICIES", "DEADLINE_POLICIES"]

OVERLOAD_POLICIES = ("shed", "unknown")
DEADLINE_POLICIES = ("unknown", "gateway-timeout")


@dataclass(frozen=True)
class ServeConfig:
    """Configuration of a :class:`repro.serve.ReachServer`.

    Parameters
    ----------
    host, port:
        Bind address; ``port=0`` (default) lets the OS pick a free port,
        readable as ``server.port`` after ``start()``.
    max_batch:
        Coalescer flush threshold in pairs (``1`` disables coalescing).
    max_wait_ms:
        Coalescer window: the longest a pending request waits for batch
        mates before a flush is forced.  ``0`` flushes on the next event
        loop tick (still merging requests that arrived together).
    max_inflight:
        Admission cap on admitted-but-unanswered pairs.
    overload:
        What an over-cap request gets: ``"shed"`` (503 with
        ``Retry-After`` and a structured body) or ``"unknown"`` (an
        immediate ``unknown`` verdict, HTTP 200).
    retry_after_ms:
        The ``Retry-After`` hint attached to shed responses.
    drain_timeout_s:
        How long ``stop()`` waits for queued and in-flight requests to
        finish with real answers before forcing connections closed.
    budget:
        Optional per-query :class:`~repro.resilience.QueryBudget`
        applied to every admitted query.  A request-supplied
        ``deadline_ms`` overrides it for that request.
    on_deadline:
        What a deadline-degraded (:data:`~repro.resilience.UNKNOWN`)
        answer becomes on the wire when the request carried a
        ``deadline_ms``: ``"unknown"`` (HTTP 200 with an ``unknown``
        verdict, the degrade-don't-fail default) or
        ``"gateway-timeout"`` (a structured HTTP 504; for
        ``/reach_many`` only when *every* answer degraded — partial
        batches return 200 with per-pair verdicts).
    max_body_bytes:
        Upper bound on a ``POST /reach_many`` body (413 beyond it).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 64
    max_wait_ms: float = 0.0
    max_inflight: int = 1024
    overload: str = "shed"
    retry_after_ms: int = 50
    drain_timeout_s: float = 5.0
    budget: QueryBudget | None = None
    on_deadline: str = "unknown"
    max_body_bytes: int = 8 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ReproError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ReproError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.max_inflight < 1:
            raise ReproError(
                f"max_inflight must be >= 1, got {self.max_inflight}"
            )
        if self.overload not in OVERLOAD_POLICIES:
            raise ReproError(
                f"unknown overload policy {self.overload!r}; "
                f"use one of {', '.join(OVERLOAD_POLICIES)}"
            )
        if self.retry_after_ms < 0:
            raise ReproError(
                f"retry_after_ms must be >= 0, got {self.retry_after_ms}"
            )
        if self.on_deadline not in DEADLINE_POLICIES:
            raise ReproError(
                f"unknown on_deadline policy {self.on_deadline!r}; "
                f"use one of {', '.join(DEADLINE_POLICIES)}"
            )
        if self.drain_timeout_s < 0:
            raise ReproError(
                f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}"
            )
        if self.max_body_bytes < 1:
            raise ReproError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )

    @property
    def coalescing(self) -> bool:
        """Whether requests are actually merged (``max_batch > 1``)."""
        return self.max_batch > 1

    @property
    def max_wait_s(self) -> float:
        """The coalescer window in seconds."""
        return self.max_wait_ms / 1000.0
