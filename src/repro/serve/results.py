"""Typed query results for the stable API and the serving tier.

The facade's ``reachable()`` deliberately returns a bare ``bool`` (or the
:data:`~repro.resilience.UNKNOWN` sentinel) — the hot path stays lean.
Serving and API consumers want a self-describing object instead: the
pair, a JSON-safe ``answer``, and a human-readable ``verdict`` string.
:class:`ReachResult` is that object; ``repro.api`` re-exports it and the
HTTP responses of :class:`repro.serve.ReachServer` are its ``as_dict()``
rendering.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resilience import UNKNOWN

__all__ = ["ReachResult", "verdict_of"]


def verdict_of(answer) -> str:
    """The verdict string for a ternary answer.

    ``True`` → ``"reachable"``, ``False`` → ``"unreachable"``, and the
    :data:`~repro.resilience.UNKNOWN` sentinel → ``"unknown"``.
    """
    if answer is True:
        return "reachable"
    if answer is False:
        return "unreachable"
    if answer is UNKNOWN:
        return "unknown"
    raise TypeError(f"not a ternary reachability answer: {answer!r}")


@dataclass(frozen=True)
class ReachResult:
    """One answered reachability query, self-describing.

    Attributes
    ----------
    u, v:
        The queried pair (original-graph vertex ids on the facade).
    answer:
        ``True`` / ``False``, or ``None`` when the query degraded to
        :data:`~repro.resilience.UNKNOWN` (JSON has no sentinel, so the
        wire format uses ``null``; :attr:`unknown` disambiguates).
    verdict:
        ``"reachable"`` / ``"unreachable"`` / ``"unknown"``.
    stats:
        Optional per-call context (e.g. coalesce batch size, queue wait)
        attached by the serving tier; ``{}`` when nothing was recorded.
    """

    u: int
    v: int
    answer: bool | None
    verdict: str
    stats: dict = field(default_factory=dict)

    @classmethod
    def from_answer(cls, u: int, v: int, answer, **stats) -> "ReachResult":
        """Build a result from a ternary engine answer."""
        return cls(
            u=u,
            v=v,
            answer=bool(answer) if answer is not UNKNOWN else None,
            verdict=verdict_of(answer),
            stats=dict(stats),
        )

    @property
    def unknown(self) -> bool:
        """Whether the query was left unanswered (degraded)."""
        return self.verdict == "unknown"

    def as_dict(self) -> dict:
        """JSON-safe rendering (the serving tier's response body)."""
        doc = {
            "u": self.u,
            "v": self.v,
            "answer": self.answer,
            "verdict": self.verdict,
        }
        if self.stats:
            doc["stats"] = self.stats
        return doc
