"""The asyncio serving tier: query traffic over HTTP, coalesced.

``ObsServer`` remains the metrics-only scrape shim; **this** is the
server that takes query traffic.  A single-threaded asyncio event loop
(run on a daemon thread so synchronous code can embed it) accepts
keep-alive HTTP/1.1 connections and serves:

* ``GET /reach?u=..&v=..[&deadline_ms=..]`` — one pair, answered
  through the request coalescer: concurrent requests within the
  configured window share one vectorized ``query_many`` cut pass (see
  :mod:`repro.serve.coalescer`).  ``deadline_ms`` maps to a per-request
  wall-clock :class:`~repro.resilience.QueryBudget`; a deadline-degraded
  answer renders as an ``unknown`` verdict or a structured 504 per
  ``config.on_deadline``;
* ``POST /reach_many`` — ``{"pairs": [[u, v], ...]}`` plus an optional
  ``"deadline_ms"``, joining the same pending batch as the single-pair
  traffic (deadline-carrying requests batch separately, per budget);
* ``GET /metrics`` / ``GET /healthz`` / ``GET /slow`` — the
  observability triad, folded in from the old scrape endpoint so one
  port serves both traffic and scrapes.

Admission control is wired to the resilience layer: beyond
``config.max_inflight`` admitted pairs, requests are shed with a
structured 503 + ``Retry-After`` (or degraded to ``unknown`` verdicts,
per ``config.overload``), and an optional ``config.budget`` guards every
admitted query.  ``stop()`` drains gracefully: queued requests get their
real answers, requests arriving during the drain get a structured 503 —
no admitted request is ever dropped without a response body.

Lifecycle contract (shared with :class:`repro.obs.ObsServer`):
``start()`` on a running server raises ``RuntimeError``; ``start()``
after ``stop()`` binds a fresh socket and serves again (with ``port=0``
the rebind may pick a different port); ``stop()`` is idempotent.

No dependencies beyond the standard library — the container bakes in no
web framework, and the interesting work (the coalescer, the engine) is
ours anyway.
"""

from __future__ import annotations

import asyncio
import json
import math
import threading
from concurrent.futures import ThreadPoolExecutor
from urllib.parse import parse_qs, urlsplit

from repro.obs.distributed import recent_traces, trace_payload
from repro.obs.export import to_prometheus
from repro.obs.metrics import get_registry
from repro.obs.server import slow_log_payload
from repro.obs.spans import (
    format_trace_id,
    get_tracer,
    new_trace_id,
    parse_trace_id,
)
from repro.obs.timing import elapsed_s, now_ns
from repro.resilience.budget import UNKNOWN, QueryBudget
from repro.serve.coalescer import Coalescer, CoalescerClosed
from repro.serve.config import ServeConfig
from repro.serve.results import ReachResult

__all__ = ["ReachServer"]

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class _HTTPError(Exception):
    """Internal: abort request processing with a structured response."""

    def __init__(self, status: int, error: str, **fields) -> None:
        super().__init__(error)
        self.status = status
        self.body = {"error": error, **fields}
        self.headers: dict[str, str] = {}


class ReachServer:
    """Serve reachability query traffic from an asyncio event loop.

    Parameters
    ----------
    oracle:
        A :class:`repro.Reachability` (or any object exposing
        ``reachable_many(pairs, budget=None)`` — a bare index's
        ``query_many`` works too) plus ``graph.num_vertices`` for
        request validation.  The oracle's own configuration decides the
        engine details: attach a ``SearchPool`` / slow log to it before
        serving.
    config:
        A :class:`~repro.serve.config.ServeConfig`; defaults throughout.
    registry:
        Metrics registry backing ``/metrics``; defaults to the live
        process-wide registry at scrape time, like ``ObsServer``.
    slow_log:
        The slow-query log backing ``/slow`` (``None`` serves an empty
        document).
    """

    def __init__(
        self,
        oracle,
        config: ServeConfig | None = None,
        registry=None,
        slow_log=None,
    ) -> None:
        self.oracle = oracle
        self.config = config if config is not None else ServeConfig()
        self._registry = registry
        self.slow_log = slow_log
        answer = getattr(oracle, "reachable_many", None)
        self._answer = answer if answer is not None else oracle.query_many
        self._num_vertices = oracle.graph.num_vertices
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.base_events.Server | None = None
        self.coalescer: Coalescer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._address: tuple[str, int] | None = None
        self._draining = False
        self._inflight = 0
        self._active_requests = 0
        self._idle: asyncio.Event | None = None
        self._conn_tasks: set[asyncio.Task] = set()
        self._started: threading.Event | None = None
        self._startup_error: BaseException | None = None

    # -- metrics helpers ------------------------------------------------
    @property
    def registry(self):
        """The registry ``/metrics`` serves (live lookup when unset)."""
        return self._registry if self._registry is not None else get_registry()

    def _count_request(self, endpoint: str, status: int) -> None:
        registry = self.registry
        if registry.enabled:
            registry.counter(
                "repro_serve_requests_total",
                help="HTTP requests served, by endpoint and status.",
                endpoint=endpoint,
                status=str(status),
            ).inc()

    def _set_inflight(self, delta: int) -> None:
        self._inflight += delta
        registry = self.registry
        if registry.enabled:
            registry.gauge(
                "repro_serve_inflight",
                help="Pairs admitted and not yet answered.",
            ).set(self._inflight)

    # -- lifecycle ------------------------------------------------------
    @property
    def running(self) -> bool:
        """Whether the server thread is live."""
        return self._thread is not None

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``); last bound if stopped."""
        if self._address is None:
            raise RuntimeError("ReachServer has not been started yet")
        return self._address[1]

    @property
    def url(self) -> str:
        if self._address is None:
            raise RuntimeError("ReachServer has not been started yet")
        return f"http://{self._address[0]}:{self._address[1]}"

    def start(self) -> "ReachServer":
        """Bind and serve from a daemon thread; returns ``self``.

        Raises ``RuntimeError`` if already running.  After a ``stop()``
        the next ``start()`` binds a fresh socket (a new ephemeral port
        when the configured port is ``0``).
        """
        if self._thread is not None:
            raise RuntimeError(
                "ReachServer is already running; stop() it before "
                "calling start() again"
            )
        self._draining = False
        self._startup_error = None
        self._started = threading.Event()
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-reach-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=30)
        if self._startup_error is not None:
            self._thread.join(timeout=5)
            self._thread = None
            raise self._startup_error
        return self

    def _run_loop(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            loop.run_until_complete(self._open())
        except BaseException as exc:  # noqa: BLE001 — surfaced in start()
            self._startup_error = exc
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
            # Let cancellations and transport teardowns settle.
            loop.run_until_complete(asyncio.sleep(0))
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()

    async def _open(self) -> None:
        # One executor thread, deliberately: an index is not safe for
        # concurrent querying (budget guard + stats are instance state),
        # so all engine calls serialize here while the loop handles I/O.
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-query"
        )
        self._idle = asyncio.Event()
        self._idle.set()
        self.coalescer = Coalescer(
            self._answer_batch,
            max_batch=self.config.max_batch,
            max_wait_s=self.config.max_wait_s,
            executor=self._executor,
            registry_fn=lambda: self.registry,
        )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        sockname = self._server.sockets[0].getsockname()
        self._address = (sockname[0], sockname[1])

    def _answer_batch(self, pairs, budget=None):
        effective = budget if budget is not None else self.config.budget
        return self._answer(pairs, budget=effective)

    def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` (default) answer what was admitted.

        Queued/coalesced requests get their real answers and requests
        arriving during the drain get a structured 503; connections
        still idle after ``config.drain_timeout_s`` are closed.
        Idempotent.
        """
        if self._thread is None:
            return
        assert self._loop is not None
        future = asyncio.run_coroutine_threadsafe(
            self._shutdown(drain), self._loop
        )
        try:
            future.result(timeout=self.config.drain_timeout_s + 10)
        finally:
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=10)
            executor = self._executor
            if executor is not None:
                executor.shutdown(wait=False)
            self._thread = None
            self._loop = None
            self._server = None
            self.coalescer = None
            self._executor = None
            self._inflight = 0

    async def _shutdown(self, drain: bool) -> None:
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        timeout = self.config.drain_timeout_s
        if drain and self.coalescer is not None:
            try:
                await asyncio.wait_for(self.coalescer.drain(), timeout)
            except asyncio.TimeoutError:
                pass
        elif self.coalescer is not None:
            self.coalescer.close()
        if drain and self._active_requests:
            # In-flight requests finish writing their responses.
            try:
                await asyncio.wait_for(self._idle.wait(), timeout)
            except asyncio.TimeoutError:
                pass
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    def __enter__(self) -> "ReachServer":
        return self.start()

    def __exit__(self, *exc) -> bool:
        self.stop()
        return False

    def __repr__(self) -> str:
        state = "running" if self.running else "stopped"
        where = self.url if self._address is not None else "unbound"
        return f"<ReachServer {where} {state}>"

    # -- connection handling --------------------------------------------
    def _begin_request(self) -> None:
        self._active_requests += 1
        self._idle.clear()

    def _end_request(self) -> None:
        self._active_requests -= 1
        if self._active_requests == 0:
            self._idle.set()

    async def _handle_client(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            while True:
                try:
                    header = await reader.readuntil(b"\r\n\r\n")
                except (
                    asyncio.IncompleteReadError,
                    asyncio.LimitOverrunError,
                    ConnectionError,
                ):
                    break
                self._begin_request()
                try:
                    payload, close = await self._serve_request(header, reader)
                    writer.write(payload)
                    await writer.drain()
                except ConnectionError:
                    break
                finally:
                    self._end_request()
                if close or self._draining:
                    break
        except asyncio.CancelledError:
            pass
        finally:
            self._conn_tasks.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_request(self, header: bytes, reader) -> tuple[bytes, bool]:
        started = now_ns()
        try:
            method, target, http_version, headers = self._parse_header(header)
        except _HTTPError as exc:
            return self._render(
                "malformed", 400, exc.body, close=True, started=started
            )
        close = (
            headers.get("connection", "").lower() == "close"
            or http_version == "HTTP/1.0"
        )
        parts = urlsplit(target)
        endpoint = parts.path
        tracer = get_tracer()
        # One trace per admitted request, minted at the HTTP edge; every
        # span below — coalescer queue, flush, engine, shard RPCs, even
        # worker-process spans stitched back in — inherits this id.
        trace_id = new_trace_id() if tracer.enabled else None
        try:
            body = None
            if method == "POST":
                body = await self._read_body(headers, reader)
            with tracer.span(
                "serve.request", trace_id=trace_id, endpoint=endpoint
            ):
                status, doc, content_type, extra = await self._route(
                    method, endpoint, parts.query, body
                )
            if trace_id is not None:
                extra = {**extra, "X-Trace-Id": format_trace_id(trace_id)}
        except _HTTPError as exc:
            return self._render(
                endpoint, exc.status, exc.body, close=close,
                started=started, extra=exc.headers,
            )
        except CoalescerClosed:
            return self._render(
                endpoint, 503, {"error": "draining"}, close=True,
                started=started,
            )
        except BaseException as exc:  # noqa: BLE001 — never drop silently
            return self._render(
                endpoint, 500,
                {"error": "internal", "detail": f"{type(exc).__name__}: {exc}"},
                close=close, started=started,
            )
        return self._render(
            endpoint, status, doc, content_type=content_type,
            close=close, started=started, extra=extra,
        )

    def _parse_header(self, header: bytes):
        try:
            text = header.decode("latin-1")
            request_line, *header_lines = text.split("\r\n")
            method, target, http_version = request_line.split(" ", 2)
        except ValueError:
            raise _HTTPError(400, "bad-request", detail="malformed request line")
        headers = {}
        for line in header_lines:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return method.upper(), target, http_version.strip(), headers

    async def _read_body(self, headers: dict, reader) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise _HTTPError(400, "bad-request", detail="bad Content-Length")
        if length > self.config.max_body_bytes:
            raise _HTTPError(
                413, "payload-too-large",
                limit_bytes=self.config.max_body_bytes,
            )
        if length <= 0:
            return b""
        try:
            return await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise _HTTPError(400, "bad-request", detail="truncated body")

    # -- routing --------------------------------------------------------
    def _health_doc(self) -> dict:
        """The ``/healthz`` body: liveness plus build/topology info."""
        import repro

        oracle = self.oracle
        index = getattr(oracle, "index", None)
        method = getattr(
            index if index is not None else oracle, "method_name", None
        )
        doc = {
            "status": "draining" if self._draining else "ok",
            "version": getattr(repro, "__version__", "unknown"),
            "index": method if method is not None else type(oracle).__name__,
            "tracing": get_tracer().enabled,
        }
        observers = getattr(
            getattr(index if index is not None else oracle,
                    "_observers", None),
            "k", None,
        )
        if observers is None:
            observers = getattr(
                getattr(oracle, "config", None), "observers", None
            )
        if observers is not None:
            doc["observers_k"] = observers
        target = index if index is not None else oracle
        backend = getattr(target, "kernel_backend", None)
        if backend is not None:
            doc["kernel_backend"] = backend
        pages = getattr(target, "shared_pages", None)
        doc["shared_pages"] = bool(pages is not None and not pages.closed)
        num_shards = getattr(oracle, "num_shards", None)
        if num_shards is not None:
            doc["shards"] = num_shards
            alive = getattr(oracle, "alive_workers", None)
            if callable(alive):
                doc["workers_alive"] = alive()
        return doc

    def _route_trace(self, query: str):
        """``/trace``: recent trace summaries, or one stitched tree."""
        tracer = get_tracer()
        params = parse_qs(query)
        raw = params.get("trace_id", [None])[0]
        if raw is None:
            doc = {"enabled": tracer.enabled, "traces": recent_traces(tracer)}
            return 200, doc, "application/json", {}
        try:
            trace_id = parse_trace_id(raw)
        except ValueError:
            raise _HTTPError(
                400, "bad-request",
                detail=f"unparseable trace_id {raw!r}",
            )
        return 200, trace_payload(tracer, trace_id), "application/json", {}

    async def _route(self, method: str, path: str, query: str, body):
        if path == "/healthz":
            status = 503 if self._draining else 200
            return status, self._health_doc(), "application/json", {}
        if path == "/metrics":
            return 200, to_prometheus(self.registry), \
                "text/plain; version=0.0.4", {}
        if path == "/slow":
            doc = json.dumps(slow_log_payload(self.slow_log), indent=2)
            return 200, doc + "\n", "application/json", {}
        if path == "/trace":
            return self._route_trace(query)
        if path == "/reach":
            if method != "GET":
                raise _HTTPError(405, "method-not-allowed", method=method)
            return await self._route_reach(query)
        if path == "/reach_many":
            if method != "POST":
                raise _HTTPError(405, "method-not-allowed", method=method)
            return await self._route_reach_many(body)
        raise _HTTPError(404, "not-found", path=path)

    def _check_vertex(self, value, name: str) -> int:
        try:
            vertex = int(value)
        except (TypeError, ValueError):
            raise _HTTPError(
                400, "bad-request",
                detail=f"parameter {name!r} must be an integer",
            )
        if not 0 <= vertex < self._num_vertices:
            raise _HTTPError(
                400, "invalid-vertex",
                vertex=vertex, num_vertices=self._num_vertices,
            )
        return vertex

    def _admit(self, pairs: int):
        """Admission control; returns ``None`` or an overload response."""
        if self._draining:
            raise _HTTPError(503, "draining")
        if self._inflight + pairs <= self.config.max_inflight:
            return None
        registry = self.registry
        if registry.enabled:
            registry.counter(
                "repro_serve_shed_total",
                help="Requests refused or degraded by admission control.",
                policy=self.config.overload,
            ).inc()
        if self.config.overload == "unknown":
            return "unknown"
        error = _HTTPError(
            503, "overloaded",
            inflight=self._inflight,
            max_inflight=self.config.max_inflight,
            retry_after_ms=self.config.retry_after_ms,
        )
        error.headers["Retry-After"] = str(
            max(1, math.ceil(self.config.retry_after_ms / 1000))
        )
        raise error

    def _parse_deadline(self, value):
        """Validate an optional ``deadline_ms`` (query param or JSON)."""
        if value is None:
            return None
        try:
            deadline = float(value)
        except (TypeError, ValueError):
            deadline = math.nan
        if not math.isfinite(deadline) or deadline <= 0:
            raise _HTTPError(
                400, "bad-request",
                detail="deadline_ms must be a positive number of "
                "milliseconds",
            )
        return deadline

    @staticmethod
    def _deadline_budget(deadline_ms):
        """The per-request budget a ``deadline_ms`` maps to: a pure
        wall-clock deadline that degrades to ``unknown`` — HTTP wire
        policy (``on_deadline``) decides how that renders."""
        if deadline_ms is None:
            return None
        return QueryBudget(deadline_s=deadline_ms / 1000.0, policy="unknown")

    async def _route_reach(self, query: str):
        params = parse_qs(query)
        u = self._check_vertex(params.get("u", [None])[0], "u")
        v = self._check_vertex(params.get("v", [None])[0], "v")
        deadline_ms = self._parse_deadline(
            params.get("deadline_ms", [None])[0]
        )
        if self._admit(1) == "unknown":
            result = ReachResult(
                u=u, v=v, answer=None, verdict="unknown",
                stats={"degraded": "overload"},
            )
            return 200, result.as_dict(), "application/json", {}
        self._set_inflight(1)
        try:
            answer = await self.coalescer.submit(
                u, v, budget=self._deadline_budget(deadline_ms)
            )
        finally:
            self._set_inflight(-1)
        if (
            answer is UNKNOWN
            and deadline_ms is not None
            and self.config.on_deadline == "gateway-timeout"
        ):
            raise _HTTPError(
                504, "deadline-exceeded", u=u, v=v, deadline_ms=deadline_ms
            )
        result = ReachResult.from_answer(u, v, answer)
        return 200, result.as_dict(), "application/json", {}

    async def _route_reach_many(self, body: bytes):
        try:
            doc = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise _HTTPError(400, "bad-request", detail="body is not JSON")
        pairs_in = doc.get("pairs") if isinstance(doc, dict) else None
        deadline_ms = self._parse_deadline(
            doc.get("deadline_ms") if isinstance(doc, dict) else None
        )
        if not isinstance(pairs_in, list):
            raise _HTTPError(
                400, "bad-request",
                detail='body must be {"pairs": [[u, v], ...]}',
            )
        pairs = []
        for entry in pairs_in:
            if not isinstance(entry, (list, tuple)) or len(entry) != 2:
                raise _HTTPError(
                    400, "bad-request",
                    detail=f"each pair must be [u, v], got {entry!r}",
                )
            pairs.append(
                (self._check_vertex(entry[0], "u"),
                 self._check_vertex(entry[1], "v"))
            )
        if not pairs:
            return 200, {"results": [], "count": 0}, "application/json", {}
        if self._admit(len(pairs)) == "unknown":
            results = [
                ReachResult(
                    u=u, v=v, answer=None, verdict="unknown",
                    stats={"degraded": "overload"},
                ).as_dict()
                for u, v in pairs
            ]
            return 200, {"results": results, "count": len(results)}, \
                "application/json", {}
        self._set_inflight(len(pairs))
        try:
            answers = await self.coalescer.submit_many(
                pairs, budget=self._deadline_budget(deadline_ms)
            )
        finally:
            self._set_inflight(-len(pairs))
        if (
            deadline_ms is not None
            and self.config.on_deadline == "gateway-timeout"
            and all(answer is UNKNOWN for answer in answers)
        ):
            # Partial batches still return 200 with per-pair verdicts;
            # only a wholesale deadline blowout is a gateway timeout.
            raise _HTTPError(
                504, "deadline-exceeded",
                deadline_ms=deadline_ms, pairs=len(pairs),
            )
        results = [
            ReachResult.from_answer(u, v, answer).as_dict()
            for (u, v), answer in zip(pairs, answers)
        ]
        return 200, {"results": results, "count": len(results)}, \
            "application/json", {}

    # -- response rendering ---------------------------------------------
    def _render(
        self,
        endpoint: str,
        status: int,
        doc,
        content_type: str = "application/json",
        close: bool = False,
        started: int | None = None,
        extra: dict | None = None,
    ) -> tuple[bytes, bool]:
        if isinstance(doc, (dict, list)):
            body = (json.dumps(doc) + "\n").encode("utf-8")
        else:
            body = doc.encode("utf-8") if isinstance(doc, str) else doc
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(body)}",
            f"Connection: {'close' if close or self._draining else 'keep-alive'}",
        ]
        for name, value in (extra or {}).items():
            lines.append(f"{name}: {value}")
        payload = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
        self._count_request(endpoint, status)
        registry = self.registry
        if registry.enabled and started is not None:
            registry.histogram(
                "repro_serve_request_seconds",
                help="Server-side request latency, by endpoint.",
                endpoint=endpoint,
            ).observe(elapsed_s(started))
        return payload, close or self._draining
