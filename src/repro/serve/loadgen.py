"""Closed- and open-loop load generation against the serving tier.

"Millions of users" is a slogan until a load generator turns it into a
measured number.  This module drives a running
:class:`~repro.serve.server.ReachServer` (or any HTTP endpoint speaking
the same protocol) with one of the two classic workload models:

* **closed** — ``concurrency`` workers issue requests back-to-back over
  keep-alive connections; throughput is bounded by server latency (the
  model behind most benchmark suites);
* **open** — requests *arrive* on a fixed schedule (``rate`` per
  second), regardless of how fast the server answers; latency is
  measured from the scheduled arrival, so server-side queueing shows up
  honestly (the model real traffic follows — and the one that exposes
  coordinated omission).

Each run reports throughput, latency percentiles (p50/p95/p99), SLO
attainment against ``slo_ms``, per-status counts, and — scraped from
``/metrics`` after the run — the server's coalesce batch-size and
queue-wait histograms, so the coalescing win is visible in the same
JSON document.  :func:`compare_serving` boots the same oracle behind a
baseline (``max_batch=1``) and a coalesced server and measures both;
the CLI's ``repro loadgen --compare`` and the committed
``benchmarks/BENCH_pr6.json`` artifact are that comparison.
"""

from __future__ import annotations

import asyncio
import time
from collections.abc import Sequence
from urllib.parse import urlsplit

from repro.obs.metrics import MetricsRegistry
from repro.serve.config import ServeConfig
from repro.serve.server import ReachServer

__all__ = [
    "run_loadgen",
    "compare_serving",
    "calibrate_ms",
    "percentile",
]


def calibrate_ms(rounds: int = 3, n: int = 2_000_000) -> float:
    """Milliseconds for a fixed pure-Python busy loop (best of rounds).

    The machine-speed yardstick shared with the bench smoke: committed
    artifacts carry it so CI can compare normalized throughput across
    differently-sized runners (``benchmarks/check_serving.py``).
    """
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i
        best = min(best, time.perf_counter() - start)
    return 1000 * best


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """The ``q``-quantile (0..1) of an ascending sequence, interpolated."""
    if not sorted_values:
        return 0.0
    if len(sorted_values) == 1:
        return float(sorted_values[0])
    position = q * (len(sorted_values) - 1)
    lower = int(position)
    upper = min(lower + 1, len(sorted_values) - 1)
    fraction = position - lower
    return float(
        sorted_values[lower] * (1 - fraction) + sorted_values[upper] * fraction
    )


class _Client:
    """A minimal keep-alive HTTP/1.1 client on asyncio streams."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader = None
        self._writer = None

    async def connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except ConnectionError:
                pass
            self._reader = self._writer = None

    async def get(self, path: str) -> tuple[int, bytes]:
        """One GET on the persistent connection; reconnects when dropped."""
        if self._writer is None:
            await self.connect()
        request = (
            f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n"
            "Connection: keep-alive\r\n\r\n"
        ).encode("latin-1")
        self._writer.write(request)
        await self._writer.drain()
        header = await self._reader.readuntil(b"\r\n\r\n")
        lines = header.decode("latin-1").split("\r\n")
        status = int(lines[0].split(" ", 2)[1])
        length = 0
        keep_alive = True
        for line in lines[1:]:
            name, _, value = line.partition(":")
            key = name.strip().lower()
            if key == "content-length":
                length = int(value.strip())
            elif key == "connection" and value.strip().lower() == "close":
                keep_alive = False
        body = await self._reader.readexactly(length) if length else b""
        if not keep_alive:
            await self.close()
        return status, body


def _resolve_target(target) -> tuple[str, int]:
    """``host:port`` from a URL string or a running ``ReachServer``."""
    if isinstance(target, ReachServer):
        return target.config.host, target.port
    parts = urlsplit(target if "//" in target else f"http://{target}")
    if parts.hostname is None or parts.port is None:
        raise ValueError(f"loadgen target needs host and port, got {target!r}")
    return parts.hostname, parts.port


async def _run_async(
    host: str,
    port: int,
    pairs: Sequence[tuple[int, int]],
    *,
    mode: str,
    concurrency: int,
    rate: float | None,
    duration_s: float,
    max_requests: int | None,
    slo_ms: float,
) -> dict:
    latencies_ms: list[float] = []
    statuses: dict[str, int] = {}
    errors = 0
    issued = 0
    quota = max_requests if max_requests is not None else float("inf")
    started = time.perf_counter()
    deadline = started + duration_s

    def take_pair() -> tuple[int, int]:
        nonlocal issued
        u, v = pairs[issued % len(pairs)]
        issued += 1
        return u, v

    async def one_request(client: _Client, begun: float) -> None:
        nonlocal errors
        u, v = take_pair()
        try:
            status, _ = await client.get(f"/reach?u={u}&v={v}")
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            errors += 1
            await client.close()
            return
        latencies_ms.append(1000 * (time.perf_counter() - begun))
        statuses[str(status)] = statuses.get(str(status), 0) + 1

    if mode == "closed":
        async def worker() -> None:
            client = _Client(host, port)
            try:
                while time.perf_counter() < deadline and issued < quota:
                    await one_request(client, time.perf_counter())
            finally:
                await client.close()

        await asyncio.gather(*(worker() for _ in range(concurrency)))
    elif mode == "open":
        if not rate or rate <= 0:
            raise ValueError("open-loop mode needs rate > 0 requests/second")
        arrivals: asyncio.Queue = asyncio.Queue()
        total = int(duration_s * rate)
        if max_requests is not None:
            total = min(total, max_requests)
        for k in range(total):
            arrivals.put_nowait(started + k / rate)
        for _ in range(concurrency):
            arrivals.put_nowait(None)  # poison pill per worker

        async def worker() -> None:
            client = _Client(host, port)
            try:
                while True:
                    scheduled = await arrivals.get()
                    if scheduled is None:
                        return
                    delay = scheduled - time.perf_counter()
                    if delay > 0:
                        await asyncio.sleep(delay)
                    # Latency from the *scheduled* arrival: client-side
                    # queueing counts (no coordinated omission).
                    await one_request(client, scheduled)
            finally:
                await client.close()

        await asyncio.gather(*(worker() for _ in range(concurrency)))
    else:
        raise ValueError(f"unknown loadgen mode {mode!r}; use closed|open")

    elapsed = max(time.perf_counter() - started, 1e-9)
    metrics_text = ""
    scrape = _Client(host, port)
    try:
        _, body = await scrape.get("/metrics")
        metrics_text = body.decode("utf-8", errors="replace")
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        pass
    finally:
        await scrape.close()
    return _report(
        mode, concurrency, rate, elapsed, latencies_ms, statuses, errors,
        metrics_text, slo_ms,
    )


def _hist_stats(metrics_text: str, name: str) -> dict | None:
    """``{count, sum, mean}`` of a histogram in Prometheus text, or None."""
    total = count = 0.0
    seen = False
    for line in metrics_text.splitlines():
        if line.startswith(f"{name}_sum"):
            total += float(line.rsplit(" ", 1)[1])
            seen = True
        elif line.startswith(f"{name}_count"):
            count += float(line.rsplit(" ", 1)[1])
    if not seen:
        return None
    return {
        "count": count,
        "sum": total,
        "mean": (total / count) if count else 0.0,
    }


def _report(
    mode, concurrency, rate, elapsed, latencies_ms, statuses, errors,
    metrics_text, slo_ms,
) -> dict:
    ordered = sorted(latencies_ms)
    requests = len(ordered)
    report = {
        "mode": mode,
        "concurrency": concurrency,
        "rate_rps": rate,
        "duration_s": round(elapsed, 4),
        "requests": requests,
        "errors": errors,
        "status": statuses,
        "throughput_rps": round(requests / elapsed, 2),
        "latency_ms": {
            "p50": round(percentile(ordered, 0.50), 3),
            "p95": round(percentile(ordered, 0.95), 3),
            "p99": round(percentile(ordered, 0.99), 3),
            "mean": round(sum(ordered) / requests, 3) if requests else 0.0,
            "max": round(ordered[-1], 3) if ordered else 0.0,
        },
        "slo_ms": slo_ms,
        "slo_attainment": (
            round(sum(1 for ms in ordered if ms <= slo_ms) / requests, 4)
            if requests
            else None
        ),
    }
    batch = _hist_stats(metrics_text, "repro_serve_coalesce_batch_size")
    wait = _hist_stats(metrics_text, "repro_serve_queue_wait_seconds")
    report["server"] = {
        "coalesce_batch_size": batch,
        "queue_wait_seconds": wait,
        "histograms_present": batch is not None and wait is not None,
    }
    return report


def run_loadgen(
    target,
    pairs: Sequence[tuple[int, int]],
    *,
    mode: str = "closed",
    concurrency: int = 8,
    rate: float | None = None,
    duration_s: float = 2.0,
    max_requests: int | None = None,
    slo_ms: float = 50.0,
) -> dict:
    """Drive ``target`` with ``pairs`` and return the latency report.

    ``target`` is a running :class:`ReachServer` or a ``host:port`` /
    URL string.  Pairs are issued round-robin (deterministic given the
    list).  The report includes ``slo_attainment`` — the fraction of
    requests at or under ``slo_ms``.
    """
    host, port = _resolve_target(target)
    return asyncio.run(
        _run_async(
            host, port, list(pairs),
            mode=mode, concurrency=concurrency, rate=rate,
            duration_s=duration_s, max_requests=max_requests,
            slo_ms=slo_ms,
        )
    )


def compare_serving(
    oracle,
    pairs: Sequence[tuple[int, int]],
    *,
    config: ServeConfig | None = None,
    mode: str = "closed",
    concurrency: int = 8,
    rate: float | None = None,
    duration_s: float = 2.0,
    max_requests: int | None = None,
    slo_ms: float = 50.0,
    warmup_s: float = 0.3,
) -> dict:
    """Measure the same oracle behind a baseline and a coalesced server.

    Boots two :class:`ReachServer` instances sequentially — ``baseline``
    with coalescing disabled (``max_batch=1``, ``max_wait_ms=0``: one
    engine call per request) and ``coalesced`` with the given config —
    each with its own fresh :class:`MetricsRegistry` so the scraped
    histograms describe exactly one run.  Returns ``{"runs": [...]}``
    with one labeled report per server.
    """
    config = config if config is not None else ServeConfig()
    legs = [
        ("baseline", ServeConfig(
            host=config.host, port=0, max_batch=1, max_wait_ms=0.0,
            max_inflight=config.max_inflight, overload=config.overload,
            budget=config.budget,
        )),
        ("coalesced", ServeConfig(
            host=config.host, port=0, max_batch=config.max_batch,
            max_wait_ms=config.max_wait_ms,
            max_inflight=config.max_inflight, overload=config.overload,
            budget=config.budget,
        )),
    ]
    runs = []
    for label, leg_config in legs:
        registry = MetricsRegistry()
        server = ReachServer(oracle, leg_config, registry=registry)
        server.start()
        try:
            if warmup_s > 0:
                run_loadgen(
                    server, pairs, mode="closed",
                    concurrency=min(concurrency, 4), duration_s=warmup_s,
                    slo_ms=slo_ms,
                )
            report = run_loadgen(
                server, pairs, mode=mode, concurrency=concurrency,
                rate=rate, duration_s=duration_s,
                max_requests=max_requests, slo_ms=slo_ms,
            )
        finally:
            server.stop()
        report["label"] = label
        report["config"] = {
            "max_batch": leg_config.max_batch,
            "max_wait_ms": leg_config.max_wait_ms,
            "max_inflight": leg_config.max_inflight,
            "overload": leg_config.overload,
        }
        runs.append(report)
    return {"runs": runs}
