"""repro.serve — the asyncio serving tier for reachability queries.

Replaces the stdlib-threaded ``ObsServer`` for *query* traffic (that
server remains, metrics-only).  The centerpiece is request coalescing:
concurrent ``GET /reach`` and ``POST /reach_many`` requests arriving
within a configurable window are answered through a single vectorized
``query_many`` call — one numpy cut pass for the whole batch — with
answers bit-identical to issuing each query alone.

Layout:

* :mod:`repro.serve.config` — :class:`ServeConfig`, the one audited knob
  surface (coalescing window, admission control, budgets, drain).
* :mod:`repro.serve.coalescer` — :class:`Coalescer`, the batching core.
* :mod:`repro.serve.server` — :class:`ReachServer`, HTTP/1.1 on asyncio
  streams with admission control, graceful drain, and observability
  endpoints (``/metrics``, ``/healthz``, ``/slow``) folded in.
* :mod:`repro.serve.results` — :class:`ReachResult`, the typed response.
* :mod:`repro.serve.loadgen` — closed/open-loop load generation and the
  baseline-vs-coalesced comparison behind ``repro loadgen``.

See ``docs/SERVING.md`` for the operational guide.
"""

from repro.serve.coalescer import Coalescer, CoalescerClosed
from repro.serve.config import OVERLOAD_POLICIES, ServeConfig
from repro.serve.loadgen import calibrate_ms, compare_serving, run_loadgen
from repro.serve.results import ReachResult, verdict_of
from repro.serve.server import ReachServer

__all__ = [
    "ReachServer",
    "ServeConfig",
    "OVERLOAD_POLICIES",
    "Coalescer",
    "CoalescerClosed",
    "ReachResult",
    "verdict_of",
    "run_loadgen",
    "compare_serving",
    "calibrate_ms",
]
