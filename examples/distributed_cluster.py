"""Scenario: FELINE served by a (simulated) shard cluster.

The paper's conclusion announces a distributed FELINE; this library
simulates one (`repro.core.distributed`): the drawing is cut into
X-rank slabs, each owned by a worker holding only its vertices'
out-edges, while the O(|V|) coordinate arrays are replicated.  A query
runs the usual pruned DFS, hopping shards only when an admissible edge
crosses a slab boundary — and the negative cut never communicates at
all.

Run with::

    python examples/distributed_cluster.py
"""

from repro.core.distributed import SimulatedCluster
from repro.datasets.queries import mixed_workload
from repro.graph.generators import citation_dag

graph = citation_dag(8000, avg_out_degree=4.0, seed=7)
workload = mixed_workload(graph, 5000, positive_fraction=0.3, seed=1)
print(f"graph: {graph!r}, workload: {len(workload)} queries "
      f"(~30% positive)\n")

print(f"{'shards':>6}  {'messages':>8}  {'rounds':>7}  "
      f"{'local-only':>10}  {'positives':>9}")
reference = None
for shards in (1, 2, 4, 8, 16):
    cluster = SimulatedCluster(graph, num_shards=shards)
    answers = [cluster.query(u, v) for u, v in workload.pairs]
    if reference is None:
        reference = answers
    assert answers == reference  # sharding never changes answers
    stats = cluster.stats
    print(f"{shards:>6}  {stats.messages:>8}  {stats.rounds:>7}  "
          f"{stats.local_only_queries / stats.queries:>10.0%}  "
          f"{sum(answers):>9}")

print("\nReading the table:")
print(" * answers are identical at every shard count (asserted above);")
print(" * one shard never sends a message — and even with 16 shards most")
print("   queries stay local, because FELINE's negative cut resolves them")
print("   from the replicated coordinates without touching any adjacency;")
print(" * messages grow with the shard count: that communication cost is")
print("   exactly what a production partitioning strategy would minimise.")
