"""Quickstart: answer reachability queries on any directed graph.

Run with::

    python examples/quickstart.py

Covers the one-class API (:class:`repro.Reachability`), method selection,
and the low-level index API for users who already hold a DAG.
"""

from repro import Reachability, available_methods
from repro.core import FelineIndex
from repro.graph.generators import random_dag

# ---------------------------------------------------------------------------
# 1. The one-class API: hand it edges, ask questions.
# ---------------------------------------------------------------------------
# A small build-dependency graph; note the cycle between 2 and 3 —
# arbitrary digraphs are fine, condensation happens automatically.
edges = [
    (0, 1),  # core -> utils
    (1, 2),  # utils -> parser
    (2, 3),  # parser -> lexer
    (3, 2),  # lexer -> parser (mutual recursion)
    (3, 4),  # lexer -> tokens
    (5, 4),  # docs -> tokens
]
oracle = Reachability(edges)
print("graph:", oracle)

for source, target in [(0, 4), (4, 0), (2, 3), (5, 1)]:
    verdict = "reaches" if oracle.reachable(source, target) else "does NOT reach"
    print(f"  vertex {source} {verdict} vertex {target}")

# ---------------------------------------------------------------------------
# 2. Pick a different method: every index behind one interface.
# ---------------------------------------------------------------------------
print("\nregistered methods:", ", ".join(available_methods()))
grail_oracle = Reachability(edges, method="grail", num_labelings=2)
assert grail_oracle.reachable(0, 4) == oracle.reachable(0, 4)
print("GRAIL agrees with FELINE on r(0, 4):", grail_oracle.reachable(0, 4))

# ---------------------------------------------------------------------------
# 3. The power-user API: a FELINE index straight on a DAG.
# ---------------------------------------------------------------------------
dag = random_dag(10_000, avg_degree=2.0, seed=42)
index = FelineIndex(dag).build()
print(f"\nFELINE on {dag!r}")
print(f"  index size: {index.index_size_bytes():,} bytes")
print(f"  r(0, 9999) = {index.query(0, 9999)}")

# The statistics show *how* queries were answered — most unreachable
# pairs never trigger a search (the paper's constant-time negative cut).
from repro.datasets.queries import random_pairs

index.stats.reset()
index.query_many(random_pairs(dag, 20_000, seed=7))
stats = index.stats.as_dict()
print(f"  20k random queries: {stats['negative_cuts']:,} negative cuts, "
      f"{stats['positive_cuts']:,} positive cuts, "
      f"{stats['searches']:,} searches "
      f"({stats['expanded']:,} vertices expanded)")
