"""Scenario: visualise the FELINE index as a dominance drawing.

FELINE draws a DAG in the plane; reachability becomes "is the target in
my upper-right quadrant?".  This example reproduces the paper's Figure 2/3
walk-through on the exact 8-vertex DAG from the paper, shows the
negative-cut geometry, then renders Figure-12-style density plots of a
citation stand-in and its reversal.

Run with::

    python examples/index_drawing.py
"""

from repro.bench.reporting import render_scatter
from repro.core import build_feline_index, count_false_positives
from repro.datasets.real_stand_ins import load_real_stand_in
from repro.graph.digraph import DiGraph

# ---------------------------------------------------------------------------
# The paper's Figure 2 DAG (vertices a..h).
# ---------------------------------------------------------------------------
names = "abcdefgh"
paper_dag = DiGraph(8, [
    (0, 2), (0, 3),  # a -> c, a -> d
    (2, 4), (3, 4),  # c -> e, d -> e
    (4, 7),          # e -> h
    (1, 5), (1, 6),  # b -> f, b -> g
    (5, 7),          # f -> h
], name="paper-fig2")

coords = build_feline_index(paper_dag)
print("FELINE coordinates of the paper's Figure 2 DAG:")
for v in range(8):
    x, y = coords.coordinate(v)
    print(f"  {names[v]}: ({x}, {y})")

print("\nnegative-cut geometry (Theorem 1):")
for u, v in [(0, 7), (1, 3), (3, 7)]:
    dom = coords.dominates(u, v)
    print(f"  i({names[u]}) ≼ i({names[v]})?  {dom}"
          + ("" if dom else f"  -> r({names[u]}, {names[v]}) is false in O(1)"))

false_pos = count_false_positives(paper_dag, coords)
print(f"\nfalsely implied paths in this drawing: {false_pos}")
print("(d -> h from the paper's Figure 3 discussion is the kind of pair "
      "that may dominate without being reachable)")

# ---------------------------------------------------------------------------
# Figure-12-style plots: normal vs reversed index of a citation graph.
# ---------------------------------------------------------------------------
graph = load_real_stand_in("arxiv", scale=0.25, seed=0)
for direction, g in (("normal", graph), ("reversed", graph.reversed())):
    drawing = build_feline_index(
        g, with_level_filter=False, with_positive_cut=False
    )
    points = [drawing.coordinate(v) for v in range(g.num_vertices)]
    print()
    print(render_scatter(
        points, width=64, height=16,
        title=f"arxiv stand-in, {direction} index "
              f"({count_false_positives(g, drawing)} false positives)",
    ))

print("\nThe two drawings place vertices differently — the observation "
      "behind FELINE-I and the bidirectional FELINE-B (paper §4.3.3).")
