"""Scenario: pick the right index for *your* graph.

Sweeps every practical index over a dataset of your choice (any name from
``repro.datasets``), printing construction time, query time, index size
and how queries were answered — the same measurements as the paper's
Table 3 — then renders a Figure-10-style critical-difference diagram over
a small dataset panel.

Run with::

    python examples/compare_methods.py [dataset] [scale]

e.g. ``python examples/compare_methods.py citeseer 0.5``.
"""

import sys

from repro.bench.harness import MethodSpec, measure_method
from repro.bench.reporting import format_bytes, format_table
from repro.datasets.queries import random_pairs
from repro.datasets.registry import load_dataset
from repro.stats.friedman import friedman_test
from repro.stats.nemenyi import compute_cd_diagram, render_cd_diagram

dataset = sys.argv[1] if len(sys.argv) > 1 else "citeseer"
scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.25

METHODS = [
    MethodSpec("bibfs", "BiBFS (no index)"),
    MethodSpec("grail", "GRAIL d=3", {"num_labelings": 3}),
    MethodSpec("ferrari", "FERRARI k=3", {"max_intervals": 3}),
    MethodSpec("interval", "INTERVAL", {"memory_budget_bytes": 64 << 20}),
    MethodSpec("tf-label", "TF-Label", {"label_budget_entries": 2_000_000}),
    MethodSpec("feline", "FELINE"),
    MethodSpec("feline-b", "FELINE-B"),
    MethodSpec("scarab", "FELINE-SCAR", {"base_method": "feline"}),
]

graph = load_dataset(dataset, scale=scale)
pairs = random_pairs(graph, 5000, seed=0)
print(f"dataset {dataset} at scale {scale}: {graph!r}, "
      f"{len(pairs)} random queries\n")

rows = []
for spec in METHODS:
    result = measure_method(graph, spec, pairs, runs=2)
    rows.append([
        spec.display,
        None if result.construction_ms is None else round(result.construction_ms, 2),
        None if result.query_ms is None else round(result.query_ms, 2),
        format_bytes(result.index_bytes),
        result.positives if result.ok else "-",
    ])
print(format_table(
    ["method", "build (ms)", "5k queries (ms)", "index", "positives"],
    rows,
))

# ---------------------------------------------------------------------------
# Statistical comparison over a panel of datasets (Figure 10 style).
# ---------------------------------------------------------------------------
PANEL = ["arxiv", "yago", "go", "pubmed", "citeseer"]
CONTENDERS = [m for m in METHODS if m.method in ("grail", "ferrari", "feline")]
print(f"\nCritical-difference comparison of query times over {PANEL}:")
table = []
for name in PANEL:
    g = load_dataset(name, scale=0.2)
    p = random_pairs(g, 1500, seed=1)
    table.append([
        measure_method(g, spec, p, runs=2).query_ms for spec in CONTENDERS
    ])
friedman = friedman_test(table)
diagram = compute_cd_diagram(
    [m.display for m in CONTENDERS],
    friedman.average_ranks,
    num_blocks=len(PANEL),
)
print(render_cd_diagram(diagram))
