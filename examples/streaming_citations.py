"""Scenario: a growing citation graph, queried while it grows.

The paper's conclusion announces an *incremental* FELINE; this library
implements it (`repro.core.incremental`).  This example streams a
citation network paper by paper — every new paper cites existing ones —
and answers reachability queries between insertions, something the static
index would need a full rebuild for.

Run with::

    python examples/streaming_citations.py
"""

import time
from random import Random

from repro.core import FelineIndex
from repro.core.incremental import IncrementalFelineIndex
from repro.graph.digraph import DiGraph

rng = Random(2014)

# ---------------------------------------------------------------------------
# Stream: 4000 papers arrive one by one, each citing up to 3 earlier ones.
# ---------------------------------------------------------------------------
index = IncrementalFelineIndex()
edges: list[tuple[int, int]] = []

start = time.perf_counter()
queries_answered = 0
first = index.add_vertex()
for _ in range(1, 4000):
    paper = index.add_vertex()
    for _ in range(rng.randrange(0, 4)):
        cited = rng.randrange(paper)
        index.add_edge(paper, cited)
        edges.append((paper, cited))
    # Interleaved queries: does this paper transitively cite paper 0?
    if paper % 100 == 0:
        index.query(paper, first)
        queries_answered += 1
elapsed = time.perf_counter() - start

print(f"streamed {index.num_vertices} papers, {index.num_edges} citations "
      f"in {elapsed * 1000:.0f} ms "
      f"({index.num_edges / elapsed:,.0f} insertions/s)")
print(f"order repairs triggered: {index.reorders} "
      f"of {index.edges_inserted} insertions")
print(f"interleaved queries answered: {queries_answered}")

# ---------------------------------------------------------------------------
# Sanity: the incremental index agrees with a freshly built static one.
# ---------------------------------------------------------------------------
snapshot = DiGraph(index.num_vertices, edges, name="stream-final")
static = FelineIndex(snapshot).build()
mismatches = 0
for _ in range(5000):
    u = rng.randrange(index.num_vertices)
    v = rng.randrange(index.num_vertices)
    if index.query(u, v) != static.query(u, v):
        mismatches += 1
print(f"agreement with a static rebuild on 5000 random queries: "
      f"{5000 - mismatches}/5000")

# ---------------------------------------------------------------------------
# Why incremental: cost of the alternative (rebuild per batch).
# ---------------------------------------------------------------------------
start = time.perf_counter()
FelineIndex(snapshot).build()
rebuild_ms = 1000 * (time.perf_counter() - start)
print(f"one full static rebuild of the final graph: {rebuild_ms:.1f} ms "
      f"— the incremental index absorbed {index.num_edges} edges for "
      f"{elapsed * 1000:.0f} ms total, staying queryable throughout")
