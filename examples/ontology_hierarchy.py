"""Scenario: is-a queries over a Gene-Ontology-style hierarchy.

The GO dataset is one of the paper's benchmarks: a sparse, deep DAG with
few roots and thousands of leaf terms, where a reachability query answers
"is term A a (transitive) kind of term B?".  This example builds a GO-like
ontology, shows how the positive-cut filter answers tree-path queries in
O(1), and compares FELINE's cut statistics against GRAIL's on the same
workload.

Run with::

    python examples/ontology_hierarchy.py
"""

from repro.baselines.grail import GrailIndex
from repro.core import FelineIndex
from repro.datasets.queries import mixed_workload
from repro.graph.generators import ontology_dag
from repro.graph.levels import compute_levels
from repro.graph.properties import degree_statistics

# A GO-like ontology: 64 upper-level terms, ~1.6 parents per term.
ontology = ontology_dag(6793, num_roots=64, avg_parents=2.0, seed=14)
stats = degree_statistics(ontology)
levels = compute_levels(ontology)
print(f"ontology: {ontology!r}")
print(f"  roots (top-level terms): {stats.num_roots}")
print(f"  leaves (most specific terms): {stats.num_leaves}")
print(f"  depth (max is-a chain): {max(levels)}")

# ---------------------------------------------------------------------------
# Build FELINE and answer a few is-a questions.
# ---------------------------------------------------------------------------
index = FelineIndex(ontology).build()

specific_term = ontology.num_vertices - 1  # a late, specific term
its_parents = list(ontology.predecessors(specific_term))
print(f"\nterm {specific_term} has direct parents {its_parents}")
for ancestor in (0, its_parents[0] if its_parents else 0, specific_term):
    answer = index.query(specific_term, ancestor)
    print(f"  is term {specific_term} a kind of term {ancestor}?  "
          f"{'yes' if answer else 'no'}"
          if ancestor != specific_term
          else f"  term is trivially a kind of itself: {answer}")
# NOTE: edges run ancestor -> descendant here, so "A is-a B" is r(B, A);
# we query both directions to show positive and negative answers.
print(f"  does the root reach term {specific_term}? "
      f"{index.query(0, specific_term)}")

# ---------------------------------------------------------------------------
# Workload comparison: how each method *answers* (cuts vs searches).
# ---------------------------------------------------------------------------
workload = mixed_workload(ontology, 50_000, positive_fraction=0.3, seed=1)
grail = GrailIndex(ontology).build()

measured = {}
for name, idx in (("FELINE", index), ("GRAIL ", grail)):
    idx.stats.reset()
    idx.query_many(workload.pairs)
    s = idx.stats.as_dict()
    measured[name.strip()] = s
    print(f"{name}: {s['negative_cuts']:>6} neg cuts  "
          f"{s['positive_cuts']:>6} pos cuts  "
          f"{s['searches']:>5} searches  "
          f"{s['expanded']:>7} expanded  "
          f"(index {idx.index_size_bytes():,} B)")

print("\nTrade-off on display: FELINE's index is a single coordinate pair "
      "per vertex (less than half of GRAIL's d=3 labels), while GRAIL "
      "buys extra negative cuts with those extra labelings.  Per search, "
      "FELINE's two-dimensional bound prunes branches past the target:")
for name, s in measured.items():
    if s["searches"]:
        print(f"  {name}: {s['expanded'] / s['searches']:.1f} vertices "
              f"expanded per search, {s['pruned']} branches pruned")
