"""Scenario: influence reachability in a social network.

The paper's introduction motivates reachability with social-network
analysis: "whether there is a relationship between two entities, for
security reasons, to provide conditional access to shared resources".
This example builds a follower graph with communities and mutual-follow
cycles, condenses it, and uses FELINE-B (the best query-time variant) to
answer influence questions in bulk.

Run with::

    python examples/social_network.py
"""

from random import Random

from repro import Reachability
from repro.graph.builder import GraphBuilder

rng = Random(20140328)  # EDBT 2014 deadline-ish seed

# ---------------------------------------------------------------------------
# Build a follower graph: 3 communities, intra-community follows (often
# mutual -> cycles), sparse cross-community bridges, a few influencers.
# ---------------------------------------------------------------------------
COMMUNITY_SIZE = 400
NUM_COMMUNITIES = 3
N = COMMUNITY_SIZE * NUM_COMMUNITIES

builder = GraphBuilder(num_vertices=N, dedup=True, drop_self_loops=True)
influencers = []
for c in range(NUM_COMMUNITIES):
    base = c * COMMUNITY_SIZE
    influencer = base  # first member is the community's influencer
    influencers.append(influencer)
    for member in range(base + 1, base + COMMUNITY_SIZE):
        builder.add_edge(member, influencer)  # everyone follows them
        # A few in-community follows; 30% are mutual (a cycle).
        for _ in range(rng.randrange(1, 5)):
            other = base + rng.randrange(COMMUNITY_SIZE)
            if other != member:
                builder.add_edge(member, other)
                if rng.random() < 0.3:
                    builder.add_edge(other, member)
# Influencers follow the next community's influencer (a bridge chain).
for c in range(NUM_COMMUNITIES - 1):
    builder.add_edge(influencers[c], influencers[c + 1])

graph = builder.build(name="social")
print(f"follower graph: {graph!r}")

# ---------------------------------------------------------------------------
# "Can a post by X propagate to Y?" == reachability in the follow-reverse
# direction; our edges already point follower -> followee, so a post by
# the followee reaches the follower: ask r(reader, author) to mean
# "reader sees author's posts" (transitively via re-shares).
# ---------------------------------------------------------------------------
oracle = Reachability(graph, method="feline-b")
print(f"condensed to {oracle.condensation.num_components} "
      f"strongly connected communities-of-mutuals")

author = influencers[-1]          # influencer of the last community
readers = [1, COMMUNITY_SIZE + 1, 2 * COMMUNITY_SIZE + 1]
for reader in readers:
    sees = oracle.reachable(reader, author)
    print(f"  member {reader} {'sees' if sees else 'cannot see'} "
          f"posts by influencer {author}")

# Bulk audit: which fraction of the network can see influencer 0's posts?
# (Conditional-access use case: content restricted to transitively
# connected accounts.)
visible = sum(
    1 for member in range(N) if oracle.reachable(member, influencers[0])
)
print(f"influencer {influencers[0]} is visible to {visible}/{N} members "
      f"({visible / N:.0%})")

stats = oracle.index.stats.as_dict()
print(f"index stats: {stats['negative_cuts']} negative cuts, "
      f"{stats['positive_cuts']} positive cuts, "
      f"{stats['searches']} searches for {stats['queries']} queries")
