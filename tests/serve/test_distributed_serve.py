"""End-to-end distributed tracing through the serving tier.

A traced HTTP request earns an ``X-Trace-Id`` header, its stitched tree
is queryable at ``/trace?trace_id=``, slow-log entries join the same
trace, and ``/healthz`` reports the shard topology when the oracle is a
:class:`~repro.shard.ShardService`.  With tracing off (the default),
none of this exists on the wire.
"""

import json
import multiprocessing
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro import Reachability
from repro.graph.digraph import DiGraph
from repro.graph.generators import crown_graph
from repro.obs.metrics import MetricsRegistry
from repro.obs.slowlog import SlowQueryLog
from repro.obs.spans import parse_trace_id, tracing_enabled
from repro.serve import ReachServer, ServeConfig
from repro.shard import ShardConfig, ShardService

EDGES = [(0, 1), (1, 2), (2, 3)]

CONFIG = ServeConfig(max_batch=16, max_wait_ms=0.5)


def get(url: str):
    with urlopen(url, timeout=5) as response:
        return response.status, dict(response.headers), json.loads(
            response.read().decode("utf-8")
        )


def post(url: str, doc):
    request = Request(
        url,
        data=json.dumps(doc).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urlopen(request, timeout=5) as response:
        return response.status, dict(response.headers), json.loads(
            response.read().decode("utf-8")
        )


class TestTraceIdHeader:
    def test_traced_request_earns_a_parseable_header(self):
        with tracing_enabled():
            with ReachServer(
                Reachability(DiGraph(5, EDGES)), CONFIG,
                registry=MetricsRegistry(),
            ) as srv:
                _, headers, doc = get(srv.url + "/reach?u=0&v=3")
        assert doc["answer"] is True
        raw = headers["X-Trace-Id"]
        assert len(raw) == 16
        assert parse_trace_id(raw) > 0

    def test_batch_requests_are_traced_too(self):
        with tracing_enabled():
            with ReachServer(
                Reachability(DiGraph(5, EDGES)), CONFIG,
                registry=MetricsRegistry(),
            ) as srv:
                _, headers, _ = post(
                    srv.url + "/reach_many", {"pairs": [[0, 3], [3, 0]]}
                )
        assert "X-Trace-Id" in headers

    def test_untraced_default_has_no_header(self):
        with ReachServer(
            Reachability(DiGraph(5, EDGES)), CONFIG,
            registry=MetricsRegistry(),
        ) as srv:
            _, headers, _ = get(srv.url + "/reach?u=0&v=3")
        assert "X-Trace-Id" not in headers


class TestTraceEndpoint:
    def test_listing_then_single_trace_tree(self):
        with tracing_enabled():
            with ReachServer(
                Reachability(DiGraph(5, EDGES)), CONFIG,
                registry=MetricsRegistry(),
            ) as srv:
                _, headers, _ = get(srv.url + "/reach?u=0&v=3")
                wanted = headers["X-Trace-Id"]
                _, _, listing = get(srv.url + "/trace")
                assert listing["enabled"] is True
                assert wanted in {
                    entry["trace_id"] for entry in listing["traces"]
                }
                _, _, payload = get(srv.url + "/trace?trace_id=" + wanted)
        assert payload["trace_id"] == wanted
        assert payload["span_count"] >= 1
        names = set()

        def walk(nodes):
            for node in nodes:
                names.add(node["name"])
                walk(node["children"])

        walk(payload["roots"])
        assert "serve.request" in names

    def test_unparseable_trace_id_400(self):
        with ReachServer(
            Reachability(DiGraph(5, EDGES)), CONFIG,
            registry=MetricsRegistry(),
        ) as srv:
            with pytest.raises(HTTPError) as excinfo:
                get(srv.url + "/trace?trace_id=zzz")
            assert excinfo.value.code == 400

    def test_disabled_listing_says_so(self):
        with ReachServer(
            Reachability(DiGraph(5, EDGES)), CONFIG,
            registry=MetricsRegistry(),
        ) as srv:
            _, _, listing = get(srv.url + "/trace")
        assert listing == {"enabled": False, "traces": []}


class TestSlowLogJoinsTheTrace:
    def test_batched_entries_carry_trace_ids(self):
        with tracing_enabled():
            oracle = Reachability(DiGraph(5, EDGES))
            log = oracle.enable_slow_log(threshold_ms=0.0, capacity=1024)
            with ReachServer(
                oracle, CONFIG, registry=MetricsRegistry(), slow_log=log
            ) as srv:
                _, headers, _ = post(
                    srv.url + "/reach_many",
                    {"pairs": [[0, 3], [3, 0], [1, 2]]},
                )
                _, _, slow = get(srv.url + "/slow")
        traced = [
            record for record in slow["records"] if "trace_id" in record
        ]
        assert traced, "no slow-log record joined a trace"
        assert headers["X-Trace-Id"] in {r["trace_id"] for r in traced}


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="shard workers need the fork start method",
)
class TestShardBackedServer:
    def test_healthz_reports_topology_and_trace_spans_processes(self):
        graph = crown_graph(6)
        with tracing_enabled():
            config = ShardConfig(num_shards=2, supervise=False)
            with ShardService(graph, config) as service:
                log = service.attach_slow_log(
                    SlowQueryLog(capacity=4096, threshold_ns=0)
                )
                with ReachServer(
                    service, CONFIG, registry=MetricsRegistry(),
                    slow_log=log,
                ) as srv:
                    _, _, health = get(srv.url + "/healthz")
                    assert health["status"] == "ok"
                    assert health["tracing"] is True
                    assert health["shards"] == 2
                    assert health["workers_alive"] == 2
                    n = graph.num_vertices
                    pairs = [
                        [u, v] for u in range(n) for v in range(n)
                    ]
                    _, headers, _ = post(
                        srv.url + "/reach_many", {"pairs": pairs}
                    )
                    wanted = headers["X-Trace-Id"]
                    _, _, payload = get(
                        srv.url + "/trace?trace_id=" + wanted
                    )
                    _, _, slow = get(srv.url + "/slow")
        # The one stitched trace covers the HTTP edge AND the forked
        # workers: at least two distinct pids under a single trace id.
        assert len(payload["pids"]) >= 2
        routed = [r for r in slow["records"] if "shard" in r]
        assert routed, "no slow-log record named its shard"
        assert any(r.get("trace_id") == wanted for r in slow["records"])
