"""Serve-tier deadlines (deadline_ms → QueryBudget → wire policy) and
fault paths: injected engine faults must yield structured errors and a
drained coalescer, never a hang or a poisoned sibling."""

import json
import threading
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro import Reachability
from repro.graph.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.resilience import UNKNOWN, chaos
from repro.serve import ReachServer, ServeConfig

EDGES = [(0, 1), (1, 2), (2, 3)]


def make_oracle():
    return Reachability(DiGraph(5, EDGES))


def get_json(url: str):
    with urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_json(url: str, doc):
    request = Request(
        url,
        data=json.dumps(doc).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class _Graph:
    def __init__(self, num_vertices):
        self.num_vertices = num_vertices


class DeadlineSensitiveOracle:
    """Quacks like Reachability; degrades iff a deadline budget arrives.

    Lets the tests pin the wire policy without depending on how long a
    real search takes on the test machine.
    """

    def __init__(self, num_vertices=5, unknown_pairs=None):
        self.graph = _Graph(num_vertices)
        self.unknown_pairs = unknown_pairs  # None = every pair degrades
        self.seen_budgets = []

    def reachable_many(self, pairs, budget=None):
        self.seen_budgets.append(budget)
        if budget is None or budget.deadline_s is None:
            return [True for _ in pairs]
        return [
            UNKNOWN
            if self.unknown_pairs is None or tuple(pair) in self.unknown_pairs
            else True
            for pair in pairs
        ]


def serve(oracle, **config_kwargs):
    kwargs = {"max_batch": 16, "max_wait_ms": 0.5}
    kwargs.update(config_kwargs)
    return ReachServer(
        oracle, ServeConfig(**kwargs), registry=MetricsRegistry()
    )


class TestDeadlineParameter:
    def test_deadline_becomes_a_budget(self):
        oracle = DeadlineSensitiveOracle()
        with serve(oracle) as srv:
            status, doc = get_json(srv.url + "/reach?u=0&v=3&deadline_ms=50")
            assert status == 200
            assert doc["verdict"] == "unknown"
            assert doc["answer"] is None
        budget = next(b for b in oracle.seen_budgets if b is not None)
        assert budget.deadline_s == pytest.approx(0.05)
        assert budget.policy == "unknown"

    def test_no_deadline_means_no_budget(self):
        oracle = DeadlineSensitiveOracle()
        with serve(oracle) as srv:
            _, doc = get_json(srv.url + "/reach?u=0&v=3")
            assert doc["answer"] is True
        assert oracle.seen_budgets == [None]

    @pytest.mark.parametrize("bad", ["0", "-5", "nan", "inf", "soon"])
    def test_bad_deadline_rejected_400(self, bad):
        with serve(make_oracle()) as srv:
            with pytest.raises(HTTPError) as excinfo:
                get_json(srv.url + f"/reach?u=0&v=3&deadline_ms={bad}")
            assert excinfo.value.code == 400
            body = json.loads(excinfo.value.read())
            assert body["error"] == "bad-request"
            assert "deadline_ms" in body["detail"]

    def test_generous_deadline_on_real_oracle_stays_exact(self):
        with serve(make_oracle()) as srv:
            _, doc = get_json(srv.url + "/reach?u=0&v=3&deadline_ms=5000")
            assert doc["answer"] is True
            _, doc = get_json(srv.url + "/reach?u=3&v=0&deadline_ms=5000")
            assert doc["answer"] is False

    def test_reach_many_deadline_applies_to_the_batch(self):
        oracle = DeadlineSensitiveOracle()
        with serve(oracle) as srv:
            _, doc = post_json(
                srv.url + "/reach_many",
                {"pairs": [[0, 1], [1, 2]], "deadline_ms": 50},
            )
            assert [r["verdict"] for r in doc["results"]] == [
                "unknown", "unknown"
            ]


class TestGatewayTimeoutPolicy:
    def test_single_query_504_is_structured(self):
        oracle = DeadlineSensitiveOracle()
        with serve(oracle, on_deadline="gateway-timeout") as srv:
            with pytest.raises(HTTPError) as excinfo:
                get_json(srv.url + "/reach?u=0&v=3&deadline_ms=25")
            assert excinfo.value.code == 504
            body = json.loads(excinfo.value.read())
            assert body == {
                "error": "deadline-exceeded", "u": 0, "v": 3,
                "deadline_ms": 25.0,
            }

    def test_unknown_policy_returns_200_unknown(self):
        oracle = DeadlineSensitiveOracle()
        with serve(oracle, on_deadline="unknown") as srv:
            status, doc = get_json(srv.url + "/reach?u=0&v=3&deadline_ms=25")
            assert status == 200
            assert doc["verdict"] == "unknown"

    def test_undeadlined_unknown_never_504s(self):
        # The 504 belongs to the deadline contract: an UNKNOWN from
        # other degradation (overload, server budget) stays a 200.
        oracle = DeadlineSensitiveOracle()
        config_budget_oracle = serve(oracle, on_deadline="gateway-timeout")
        with config_budget_oracle as srv:
            status, doc = get_json(srv.url + "/reach?u=0&v=3")
            assert status == 200

    def test_batch_504_only_when_every_answer_unknown(self):
        partial = DeadlineSensitiveOracle(unknown_pairs={(0, 3)})
        with serve(partial, on_deadline="gateway-timeout") as srv:
            # Mixed batch: the answered pairs must not be discarded.
            status, doc = post_json(
                srv.url + "/reach_many",
                {"pairs": [[0, 3], [1, 2]], "deadline_ms": 25},
            )
            assert status == 200
            assert doc["results"][0]["verdict"] == "unknown"
            assert doc["results"][1]["verdict"] == "reachable"
        total = DeadlineSensitiveOracle()
        with serve(total, on_deadline="gateway-timeout") as srv:
            with pytest.raises(HTTPError) as excinfo:
                post_json(
                    srv.url + "/reach_many",
                    {"pairs": [[0, 3], [1, 2]], "deadline_ms": 25},
                )
            assert excinfo.value.code == 504
            body = json.loads(excinfo.value.read())
            assert body["error"] == "deadline-exceeded"
            assert body["pairs"] == 2


class TestEngineFaultPaths:
    """Satellite contract: a fault inside ``query_many`` surfaces as a
    structured 500 and the coalescer batch drains — no hanging siblings,
    no silently inherited errors."""

    def test_persistent_fault_gives_structured_500(self):
        with serve(make_oracle()) as srv:
            with chaos.injected("index.query_many"):
                with pytest.raises(HTTPError) as excinfo:
                    get_json(srv.url + "/reach?u=0&v=3")
                assert excinfo.value.code == 500
                body = json.loads(excinfo.value.read())
                assert body["error"] == "internal"
                assert "InjectedFault" in body["detail"]
            # The fault was per-request, not per-server: next query is
            # answered exactly.
            _, doc = get_json(srv.url + "/reach?u=0&v=3")
            assert doc["answer"] is True

    def test_coalesced_siblings_all_drain_under_persistent_fault(self):
        # Pile concurrent requests into one coalescer batch, then fail
        # the batch: every caller must get a response (a structured 500),
        # within the timeout — nobody hangs on an abandoned future.
        with serve(make_oracle(), max_wait_ms=20.0) as srv:
            statuses = []
            lock = threading.Lock()

            def client(u, v):
                try:
                    status, _ = get_json(
                        srv.url + f"/reach?u={u}&v={v}"
                    )
                except HTTPError as error:
                    status = error.code
                    json.loads(error.read())  # still structured JSON
                with lock:
                    statuses.append(status)

            with chaos.injected("index.query_many"):
                threads = [
                    threading.Thread(target=client, args=(u, 3))
                    for u in range(4)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=10)
            assert len(statuses) == 4
            assert all(status == 500 for status in statuses)

    def test_one_shot_fault_isolated_and_siblings_answered(self):
        # The fault kills only the first (batched) call; the coalescer
        # must retry each pair alone, so every sibling gets its real
        # answer and the isolation counter records the incident.
        fired = {"count": 0}

        def fail_first(**context):
            fired["count"] += 1
            if fired["count"] == 1:
                raise chaos.InjectedFault(
                    "chaos: first batch dies", point="index.query_many"
                )

        registry = MetricsRegistry()
        srv = ReachServer(
            make_oracle(),
            ServeConfig(max_batch=16, max_wait_ms=20.0),
            registry=registry,
        )
        with srv:
            answers = {}
            lock = threading.Lock()

            def client(u):
                _, doc = get_json(srv.url + f"/reach?u={u}&v=3")
                with lock:
                    answers[u] = doc["answer"]

            with chaos.injected("index.query_many", fail_first):
                threads = [
                    threading.Thread(target=client, args=(u,))
                    for u in (0, 1, 2, 4)  # vertex 4 is isolated
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=10)
            assert answers == {0: True, 1: True, 2: True, 4: False}
        assert fired["count"] >= 2  # the batch, then isolated retries
        counters = registry.snapshot()["counters"]
        if any(
            key.startswith("repro_serve_coalesce_batch_size")
            for key in registry.snapshot()["histograms"]
        ):
            assert any(
                key.startswith("repro_serve_batch_isolation_total")
                for key in counters
            ), sorted(counters)
