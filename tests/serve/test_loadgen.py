"""Tests for the load generator and the baseline-vs-coalesced harness."""

import pytest

from repro import Reachability
from repro.graph.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.serve import ReachServer, ServeConfig, compare_serving, run_loadgen
from repro.serve.loadgen import _hist_stats, percentile


def make_oracle(n=50):
    return Reachability(DiGraph(n, [(i, i + 1) for i in range(n - 1)]))


PAIRS = [(i % 25, (i * 7) % 50) for i in range(32)]


class TestPercentile:
    def test_empty(self):
        assert percentile([], 0.5) == 0.0

    def test_single(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolation(self):
        values = [0.0, 10.0]
        assert percentile(values, 0.5) == 5.0
        assert percentile(values, 0.0) == 0.0
        assert percentile(values, 1.0) == 10.0

    def test_p50_of_odd_run(self):
        assert percentile([1.0, 2.0, 3.0, 4.0, 5.0], 0.5) == 3.0


class TestHistStats:
    TEXT = (
        "# TYPE repro_serve_coalesce_batch_size histogram\n"
        "repro_serve_coalesce_batch_size_bucket{le=\"1\"} 2\n"
        "repro_serve_coalesce_batch_size_sum 24\n"
        "repro_serve_coalesce_batch_size_count 6\n"
    )

    def test_parses_sum_and_count(self):
        stats = _hist_stats(self.TEXT, "repro_serve_coalesce_batch_size")
        assert stats == {"count": 6.0, "sum": 24.0, "mean": 4.0}

    def test_missing_histogram_is_none(self):
        assert _hist_stats(self.TEXT, "repro_absent") is None


class TestClosedLoop:
    def test_report_shape_and_histograms(self):
        srv = ReachServer(
            make_oracle(),
            ServeConfig(max_batch=16, max_wait_ms=0.0),
            registry=MetricsRegistry(),
        )
        with srv:
            report = run_loadgen(
                srv, PAIRS, mode="closed", concurrency=4,
                duration_s=0.4, slo_ms=100.0,
            )
        assert report["mode"] == "closed"
        assert report["requests"] > 0
        assert report["errors"] == 0
        assert report["status"] == {"200": report["requests"]}
        assert report["throughput_rps"] > 0
        latency = report["latency_ms"]
        assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"]
        assert report["slo_ms"] == 100.0
        assert 0 <= report["slo_attainment"] <= 1
        assert report["server"]["histograms_present"]
        assert report["server"]["coalesce_batch_size"]["count"] > 0
        assert report["server"]["queue_wait_seconds"]["count"] > 0

    def test_max_requests_caps_the_run(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        with srv:
            report = run_loadgen(
                srv, PAIRS, mode="closed", concurrency=2,
                duration_s=5.0, max_requests=20,
            )
        # Workers race the quota check, so allow a whisker of overshoot.
        assert 1 <= report["requests"] <= 20 + 2


class TestOpenLoop:
    def test_scheduled_arrivals(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        with srv:
            report = run_loadgen(
                srv, PAIRS, mode="open", concurrency=4, rate=200.0,
                duration_s=0.5,
            )
        assert report["mode"] == "open"
        # 0.5 s at 200/s schedules 100 arrivals.
        assert report["requests"] == 100
        assert report["errors"] == 0

    def test_open_mode_requires_rate(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        with srv:
            with pytest.raises(ValueError):
                run_loadgen(srv, PAIRS, mode="open", duration_s=0.2)

    def test_unknown_mode_rejected(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        with srv:
            with pytest.raises(ValueError):
                run_loadgen(srv, PAIRS, mode="sideways", duration_s=0.2)


class TestCompare:
    def test_compare_produces_labeled_runs(self):
        doc = compare_serving(
            make_oracle(), PAIRS,
            config=ServeConfig(max_batch=32, max_wait_ms=0.0),
            mode="closed", concurrency=4, duration_s=0.4, warmup_s=0.1,
        )
        labels = [run["label"] for run in doc["runs"]]
        assert labels == ["baseline", "coalesced"]
        base, coal = doc["runs"]
        assert base["config"]["max_batch"] == 1
        assert coal["config"]["max_batch"] == 32
        # The baseline leg must truly not coalesce.
        assert base["server"]["coalesce_batch_size"]["mean"] == 1.0
        for run in doc["runs"]:
            assert run["requests"] > 0
            assert run["errors"] == 0
