"""Unit tests for the request coalescer, in isolation from HTTP."""

import asyncio
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.serve.coalescer import Coalescer, CoalescerClosed


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def executor():
    pool = ThreadPoolExecutor(max_workers=1)
    yield pool
    pool.shutdown(wait=False)


def make_answerer(calls):
    def answer_batch(pairs, budget=None):
        calls.append(list(pairs))
        return [u <= v for u, v in pairs]

    return answer_batch


class TestBatching:
    def test_single_submission_answers(self, executor):
        calls = []

        async def scenario():
            c = Coalescer(
                make_answerer(calls), max_batch=8, max_wait_s=0,
                executor=executor,
            )
            return await c.submit(1, 2)

        assert run(scenario()) is True
        assert calls == [[(1, 2)]]

    def test_concurrent_submissions_share_a_batch(self, executor):
        calls = []

        async def scenario():
            c = Coalescer(
                make_answerer(calls), max_batch=64, max_wait_s=0.05,
                executor=executor,
            )
            answers = await asyncio.gather(
                *(c.submit(i, 10 - i) for i in range(10))
            )
            return answers

        answers = run(scenario())
        assert answers == [i <= 10 - i for i in range(10)]
        assert len(calls) == 1  # one engine call for all ten requests
        assert sorted(calls[0]) == sorted((i, 10 - i) for i in range(10))

    def test_max_batch_forces_flush(self, executor):
        calls = []

        async def scenario():
            c = Coalescer(
                make_answerer(calls), max_batch=4, max_wait_s=10.0,
                executor=executor,
            )
            # max_wait is effectively infinite: only the size threshold
            # can flush, so 8 pairs must split into two batches of 4.
            return await c.submit_many([(i, i) for i in range(8)])

        answers = run(scenario())
        assert answers == [True] * 8
        assert [len(batch) for batch in calls] == [4, 4]

    def test_submit_many_joins_pending_batch(self, executor):
        calls = []

        async def scenario():
            c = Coalescer(
                make_answerer(calls), max_batch=64, max_wait_s=0.05,
                executor=executor,
            )
            single, many = await asyncio.gather(
                c.submit(0, 1), c.submit_many([(2, 3), (5, 4)])
            )
            return single, many

        single, many = run(scenario())
        assert single is True
        assert many == [True, False]
        assert len(calls) == 1

    def test_answers_align_with_submission_order(self, executor):
        async def scenario():
            c = Coalescer(
                lambda pairs, budget=None: [u * 100 + v for u, v in pairs],
                max_batch=64, max_wait_s=0.01, executor=executor,
            )
            return await asyncio.gather(
                *(c.submit(i, i + 1) for i in range(20))
            )

        assert run(scenario()) == [i * 100 + i + 1 for i in range(20)]


class TestFailure:
    def test_engine_error_reaches_every_waiter(self, executor):
        async def scenario():
            def explode(pairs, budget=None):
                raise ValueError("engine down")

            c = Coalescer(
                explode, max_batch=64, max_wait_s=0.01, executor=executor
            )
            results = await asyncio.gather(
                *(c.submit(i, i) for i in range(3)), return_exceptions=True
            )
            return results

        results = run(scenario())
        assert len(results) == 3
        assert all(isinstance(r, ValueError) for r in results)


class TestShutdown:
    def test_submit_after_close_raises(self, executor):
        async def scenario():
            c = Coalescer(
                make_answerer([]), max_batch=8, max_wait_s=0,
                executor=executor,
            )
            c.close()
            with pytest.raises(CoalescerClosed):
                await c.submit(0, 0)

        run(scenario())

    def test_drain_answers_queued_pairs(self, executor):
        calls = []

        async def scenario():
            c = Coalescer(
                make_answerer(calls), max_batch=64, max_wait_s=30.0,
                executor=executor,
            )
            # The window is far longer than the test: without the drain
            # these submissions would sit queued forever.
            waiters = [
                asyncio.ensure_future(c.submit(i, i + 1)) for i in range(5)
            ]
            await asyncio.sleep(0)  # let submissions enqueue
            assert c.pending == 5
            await c.drain()
            assert c.closed
            return await asyncio.gather(*waiters)

        assert run(scenario()) == [True] * 5
        assert len(calls) == 1

    def test_counters(self, executor):
        async def scenario():
            c = Coalescer(
                make_answerer([]), max_batch=64, max_wait_s=0.01,
                executor=executor,
            )
            await asyncio.gather(*(c.submit(i, i) for i in range(6)))
            return c.batches, c.coalesced_pairs

        batches, pairs = run(scenario())
        assert pairs == 6
        assert 1 <= batches <= 6
