"""Integration tests for the asyncio serving tier (ReachServer)."""

import http.client
import json
import threading
import time
from urllib.error import HTTPError
from urllib.request import Request, urlopen

import pytest

from repro import Reachability
from repro.exceptions import ReproError
from repro.graph.digraph import DiGraph
from repro.obs.metrics import MetricsRegistry
from repro.resilience import QueryBudget
from repro.serve import ReachServer, ServeConfig

# 0 -> 1 -> 2 -> 3, plus 4 isolated.
EDGES = [(0, 1), (1, 2), (2, 3)]


def make_oracle():
    return Reachability(DiGraph(5, EDGES))


def get_json(url: str):
    with urlopen(url, timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


def post_json(url: str, doc) -> tuple[int, dict]:
    request = Request(
        url,
        data=json.dumps(doc).encode("utf-8"),
        method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urlopen(request, timeout=5) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


@pytest.fixture
def server():
    srv = ReachServer(
        make_oracle(),
        ServeConfig(max_batch=16, max_wait_ms=0.5),
        registry=MetricsRegistry(),
    )
    with srv:
        yield srv


class TestReach:
    def test_reachable_pair(self, server):
        status, doc = get_json(server.url + "/reach?u=0&v=3")
        assert status == 200
        assert doc == {
            "u": 0, "v": 3, "answer": True, "verdict": "reachable"
        }

    def test_unreachable_pair(self, server):
        _, doc = get_json(server.url + "/reach?u=3&v=0")
        assert doc["answer"] is False
        assert doc["verdict"] == "unreachable"

    def test_reflexive(self, server):
        _, doc = get_json(server.url + "/reach?u=4&v=4")
        assert doc["answer"] is True

    def test_missing_parameter_400(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get_json(server.url + "/reach?u=0")
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"] == "bad-request"

    def test_out_of_range_vertex_400(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get_json(server.url + "/reach?u=0&v=99")
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"] == "invalid-vertex"
        assert body["vertex"] == 99
        assert body["num_vertices"] == 5

    def test_non_integer_vertex_400(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get_json(server.url + "/reach?u=zero&v=1")
        assert excinfo.value.code == 400

    def test_post_to_reach_405(self, server):
        with pytest.raises(HTTPError) as excinfo:
            post_json(server.url + "/reach", {})
        assert excinfo.value.code == 405
        assert json.loads(excinfo.value.read())["error"] == "method-not-allowed"


class TestReachMany:
    def test_batch_answers_aligned(self, server):
        pairs = [[0, 3], [3, 0], [4, 4], [1, 2]]
        status, doc = post_json(server.url + "/reach_many", {"pairs": pairs})
        assert status == 200
        assert doc["count"] == 4
        assert [r["answer"] for r in doc["results"]] == [
            True, False, True, True
        ]
        assert [(r["u"], r["v"]) for r in doc["results"]] == [
            (0, 3), (3, 0), (4, 4), (1, 2)
        ]

    def test_empty_batch(self, server):
        _, doc = post_json(server.url + "/reach_many", {"pairs": []})
        assert doc == {"results": [], "count": 0}

    def test_malformed_body_400(self, server):
        request = Request(
            server.url + "/reach_many", data=b"not json", method="POST"
        )
        with pytest.raises(HTTPError) as excinfo:
            urlopen(request, timeout=5)
        assert excinfo.value.code == 400

    def test_bad_pair_shape_400(self, server):
        with pytest.raises(HTTPError) as excinfo:
            post_json(server.url + "/reach_many", {"pairs": [[1, 2, 3]]})
        assert excinfo.value.code == 400

    def test_invalid_vertex_rejected_before_batching(self, server):
        # A bad vertex must 400 this request alone, not poison a batch.
        with pytest.raises(HTTPError) as excinfo:
            post_json(server.url + "/reach_many", {"pairs": [[0, 1], [0, 50]]})
        assert excinfo.value.code == 400
        _, doc = post_json(server.url + "/reach_many", {"pairs": [[0, 1]]})
        assert doc["results"][0]["answer"] is True

    def test_get_to_reach_many_405(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get_json(server.url + "/reach_many")
        assert excinfo.value.code == 405


class TestObsEndpoints:
    def test_healthz(self, server):
        with urlopen(server.url + "/healthz", timeout=5) as response:
            assert response.status == 200
            doc = json.loads(response.read())
        assert doc["status"] == "ok"
        assert doc["version"]
        assert doc["index"]
        assert doc["tracing"] is False

    def test_metrics_exposes_serving_histograms(self, server):
        get_json(server.url + "/reach?u=0&v=3")
        post_json(server.url + "/reach_many", {"pairs": [[0, 1], [1, 0]]})
        with urlopen(server.url + "/metrics", timeout=5) as response:
            text = response.read().decode("utf-8")
        assert "repro_serve_coalesce_batch_size" in text
        assert "repro_serve_queue_wait_seconds" in text
        assert "repro_serve_requests_total" in text
        assert "repro_serve_request_seconds" in text

    def test_slow_endpoint(self, server):
        status, doc = get_json(server.url + "/slow")
        assert status == 200
        assert doc == {"records": [], "observed": 0}

    def test_unknown_path_404(self, server):
        with pytest.raises(HTTPError) as excinfo:
            get_json(server.url + "/nope")
        assert excinfo.value.code == 404
        assert json.loads(excinfo.value.read())["error"] == "not-found"


class TestKeepAlive:
    def test_connection_reuse(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=5)
        try:
            for _ in range(3):
                conn.request("GET", "/reach?u=0&v=3")
                response = conn.getresponse()
                doc = json.loads(response.read())
                assert doc["answer"] is True
        finally:
            conn.close()


class TestAdmissionControl:
    def test_shed_returns_structured_503_with_retry_after(self):
        registry = MetricsRegistry()
        srv = ReachServer(
            make_oracle(),
            ServeConfig(max_inflight=1, overload="shed", retry_after_ms=250),
            registry=registry,
        )
        with srv:
            # Hold the single inflight slot hostage so a probe trips the
            # cap deterministically.
            srv._inflight = 1
            try:
                with pytest.raises(HTTPError) as excinfo:
                    get_json(srv.url + "/reach?u=0&v=1")
                assert excinfo.value.code == 503
                assert excinfo.value.headers["Retry-After"] == "1"
                body = json.loads(excinfo.value.read())
                assert body["error"] == "overloaded"
                assert body["max_inflight"] == 1
                assert body["retry_after_ms"] == 250
            finally:
                srv._inflight = 0
        shed = registry.counter("repro_serve_shed_total", policy="shed")
        assert shed.value == 1

    def test_unknown_policy_degrades_to_unknown_verdict(self):
        srv = ReachServer(
            make_oracle(),
            ServeConfig(max_inflight=1, overload="unknown"),
            registry=MetricsRegistry(),
        )
        with srv:
            srv._inflight = 1
            try:
                status, doc = get_json(srv.url + "/reach?u=0&v=1")
                assert status == 200
                assert doc["answer"] is None
                assert doc["verdict"] == "unknown"
                assert doc["stats"] == {"degraded": "overload"}
            finally:
                srv._inflight = 0

    def test_reach_many_counts_whole_batch(self):
        srv = ReachServer(
            make_oracle(),
            ServeConfig(max_inflight=2, overload="shed"),
            registry=MetricsRegistry(),
        )
        with srv:
            with pytest.raises(HTTPError) as excinfo:
                post_json(
                    srv.url + "/reach_many",
                    {"pairs": [[0, 1], [1, 2], [2, 3]]},
                )
            assert excinfo.value.code == 503

    def test_budgeted_server_degrades_not_lies(self):
        budget = QueryBudget(max_steps=1, policy="unknown")
        srv = ReachServer(
            make_oracle(),
            ServeConfig(budget=budget),
            registry=MetricsRegistry(),
        )
        with srv:
            _, doc = get_json(srv.url + "/reach?u=3&v=0")
            # Cut-decided pairs never consume budget: still exact.
            assert doc["answer"] is False


class TestLifecycle:
    def test_double_start_rejected(self, server):
        with pytest.raises(RuntimeError):
            server.start()

    def test_stop_is_idempotent(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry()).start()
        srv.stop()
        srv.stop()

    def test_restart_after_stop(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        srv.start()
        srv.stop()
        assert not srv.running
        srv.start()
        try:
            assert srv.running
            _, doc = get_json(srv.url + "/reach?u=0&v=3")
            assert doc["answer"] is True
        finally:
            srv.stop()

    def test_port_before_start_raises(self):
        srv = ReachServer(make_oracle())
        with pytest.raises(RuntimeError):
            srv.port

    def test_invalid_config_rejected(self):
        with pytest.raises(ReproError):
            ServeConfig(max_batch=0)
        with pytest.raises(ReproError):
            ServeConfig(overload="panic")
        with pytest.raises(ReproError):
            ServeConfig(max_wait_ms=-1)


class TestDrain:
    def test_queued_requests_answered_on_stop(self):
        """Shutdown drains: every admitted request gets its real answer.

        The coalescer window is far longer than the test, so submitted
        requests sit queued until stop() flushes them.
        """
        srv = ReachServer(
            make_oracle(),
            ServeConfig(max_batch=64, max_wait_ms=30_000, drain_timeout_s=10),
            registry=MetricsRegistry(),
        )
        srv.start()
        results = []
        errors = []

        def client(u, v):
            try:
                results.append((u, v, get_json(
                    f"{srv.url}/reach?u={u}&v={v}")[1]["answer"]))
            except Exception as exc:  # noqa: BLE001 — recorded for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=client, args=(u, v))
            for u, v in [(0, 3), (3, 0), (1, 2), (4, 4)]
        ]
        for thread in threads:
            thread.start()
        # Wait until all four pairs are queued in the coalescer.
        deadline = time.time() + 5
        while time.time() < deadline:
            coalescer = srv.coalescer
            if coalescer is not None and coalescer.pending == 4:
                break
            time.sleep(0.01)
        assert srv.coalescer.pending == 4
        srv.stop()  # drain must flush and answer them
        for thread in threads:
            thread.join(timeout=10)
        assert errors == []
        assert sorted(results) == [
            (0, 3, True), (1, 2, True), (3, 0, False), (4, 4, True)
        ]

    def test_requests_during_drain_get_structured_503(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        srv.start()
        url = srv.url
        srv._draining = True  # simulate the drain window
        try:
            with pytest.raises(HTTPError) as excinfo:
                get_json(url + "/reach?u=0&v=1")
            assert excinfo.value.code == 503
            assert json.loads(excinfo.value.read())["error"] == "draining"
        finally:
            srv._draining = False
            srv.stop()

    def test_healthz_reports_draining(self):
        srv = ReachServer(make_oracle(), registry=MetricsRegistry())
        srv.start()
        srv._draining = True
        try:
            with pytest.raises(HTTPError) as excinfo:
                urlopen(srv.url + "/healthz", timeout=5)
            assert excinfo.value.code == 503
        finally:
            srv._draining = False
            srv.stop()
