"""Unit tests for query workload generation."""

import pytest

from repro.datasets.queries import (
    equal_pairs,
    mixed_workload,
    negative_pairs,
    positive_pairs,
    random_pairs,
)
from repro.exceptions import WorkloadError
from repro.graph.digraph import DiGraph
from repro.graph.generators import complete_dag, random_dag
from repro.graph.traversal import dfs_reachable


@pytest.fixture
def medium_dag():
    return random_dag(120, avg_degree=2.0, seed=0)


class TestRandomPairs:
    def test_count_and_range(self, medium_dag):
        pairs = random_pairs(medium_dag, 500, seed=1)
        assert len(pairs) == 500
        assert all(0 <= u < 120 and 0 <= v < 120 for u, v in pairs)

    def test_deterministic(self, medium_dag):
        assert random_pairs(medium_dag, 50, seed=2) == random_pairs(
            medium_dag, 50, seed=2
        )

    def test_empty_graph_rejected(self):
        with pytest.raises(WorkloadError):
            random_pairs(DiGraph(0, []), 1)

    def test_zero_count_on_empty_graph_ok(self):
        assert random_pairs(DiGraph(0, []), 0) == []


class TestPositivePairs:
    def test_all_pairs_reachable(self, medium_dag):
        for u, v in positive_pairs(medium_dag, 100, seed=3):
            assert dfs_reachable(medium_dag, u, v)

    def test_pairs_are_not_reflexive(self, medium_dag):
        assert all(u != v for u, v in positive_pairs(medium_dag, 100, seed=4))

    def test_edgeless_graph_rejected(self):
        with pytest.raises(WorkloadError):
            positive_pairs(DiGraph(5, []), 1)


class TestNegativePairs:
    def test_all_pairs_unreachable(self, medium_dag):
        for u, v in negative_pairs(medium_dag, 60, seed=5):
            assert not dfs_reachable(medium_dag, u, v)

    def test_attempt_budget_enforced(self):
        # Asking for more negatives than the attempt budget can find
        # must fail loudly instead of looping forever.
        g = complete_dag(2)
        with pytest.raises(WorkloadError):
            negative_pairs(g, 1000, seed=6, max_attempts_factor=1)

    def test_too_small_graph_rejected(self):
        with pytest.raises(WorkloadError):
            negative_pairs(DiGraph(1, []), 1)


class TestEqualPairs:
    def test_reflexive(self, medium_dag):
        assert all(u == v for u, v in equal_pairs(medium_dag, 30, seed=7))

    def test_empty_graph_rejected(self):
        with pytest.raises(WorkloadError):
            equal_pairs(DiGraph(0, []), 1)


class TestMixedWorkload:
    def test_positive_fraction_realised(self, medium_dag):
        workload = mixed_workload(
            medium_dag, 200, positive_fraction=0.4, seed=8
        )
        assert len(workload) == 200
        positives = sum(
            1 for u, v in workload.pairs if dfs_reachable(medium_dag, u, v)
        )
        assert positives >= 80  # at least the guaranteed share

    def test_name_mentions_fraction(self, medium_dag):
        workload = mixed_workload(medium_dag, 10, positive_fraction=0.5, seed=9)
        assert workload.name == "mixed-50%"


class TestPairPersistence:
    def test_round_trip(self, medium_dag, tmp_path):
        from repro.datasets.queries import load_pairs, save_pairs

        pairs = random_pairs(medium_dag, 200, seed=1)
        path = tmp_path / "workload.pairs"
        save_pairs(pairs, path, comment="test workload")
        assert load_pairs(path) == pairs

    def test_comment_written_and_skipped(self, tmp_path):
        from repro.datasets.queries import load_pairs, save_pairs

        path = tmp_path / "w.pairs"
        save_pairs([(1, 2)], path, comment="hello")
        assert path.read_text().startswith("# hello\n")
        assert load_pairs(path) == [(1, 2)]

    def test_malformed_line_rejected(self, tmp_path):
        from repro.datasets.queries import load_pairs

        path = tmp_path / "bad.pairs"
        path.write_text("1 2 3\n")
        with pytest.raises(WorkloadError, match="expected 'u v'"):
            load_pairs(path)

    def test_empty_file(self, tmp_path):
        from repro.datasets.queries import load_pairs

        path = tmp_path / "empty.pairs"
        path.write_text("")
        assert load_pairs(path) == []
